//! Incremental maintenance of standing (subscribed) queries.
//!
//! A standing query keeps its materialised result up to date across
//! mutation batches without re-running the full plan. The machinery
//! rests on one ordering theorem about the match stage:
//! [`Pattern::find`]'s emission order equals the lexicographic order of
//! a canonical, data-independent [`MatchKey`] per emission (see the key
//! docs in `hygraph-graph`). [`IncState`] therefore stores every match
//! in a `BTreeMap` keyed by `(pattern index, MatchKey)` — iterating the
//! map *is* re-running the Match operator — together with the
//! filter/projection outcome per match. A mutation batch then only has
//! to (a) discover matches involving newly added vertices/edges via the
//! pinned searches ([`Pattern::find_keyed_with_vertex`] /
//! `find_keyed_with_edge`), (b) re-evaluate entries whose series inputs
//! received appended points, and (c) walk the map once to emit
//! positional [`DeltaOp`]s against the previous result.
//!
//! Supported plan shapes are the flat pipeline (Match → Filter →
//! Project, series aggregates allowed anywhere). Grouped plans
//! (row aggregates / HAVING), DISTINCT, ORDER BY and LIMIT fall back to
//! re-execution plus [`diff_rows`] — the subscription layer decides,
//! via [`support`], which path a plan takes; EXPLAIN output carries the
//! decision so it is visible to users.
//!
//! Deltas are positional edit scripts: applying the ops of a [`Delta`]
//! in order to the previous row vector yields the new row vector,
//! byte-identical to a from-scratch [`execute_planned`] run.
//!
//! [`Pattern::find`]: hygraph_graph::Pattern::find
//! [`Pattern::find_keyed_with_vertex`]: hygraph_graph::Pattern::find_keyed_with_vertex
//! [`execute_planned`]: crate::execute_planned

use crate::ast::{Expr, ReturnItem, SeriesRef};
use crate::exec::{EvalCtx, LocalAggCache, QueryResult, Row};
use crate::physical::PlannedQuery;
use crate::plan::LogicalPlan;
use hygraph_core::{ElementRef, HyGraph};
use hygraph_graph::pattern::{Binding, MatchKey};
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{EdgeId, HyGraphError, Result, SeriesId, VertexId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One positional edit against the previous result rows. Positions are
/// interpreted sequentially: each op applies to the vector produced by
/// the ops before it.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp {
    /// Insert `row` so that it ends up at index `at`.
    Insert {
        /// Target index after insertion.
        at: usize,
        /// The new row.
        row: Row,
    },
    /// Replace the row at index `at`.
    Update {
        /// Index of the replaced row.
        at: usize,
        /// The replacement row.
        row: Row,
    },
    /// Remove the row at index `at`.
    Remove {
        /// Index of the removed row.
        at: usize,
    },
}

/// An ordered edit script transforming one result-row vector into the
/// next. Empty deltas are never pushed to subscribers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta {
    /// The edits, in application order.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// Whether the delta carries no edits.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Encodes the delta with the workspace binary codecs (op tag, then
    /// position, then the row for Insert/Update).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.len_of(self.ops.len());
        for op in &self.ops {
            match op {
                DeltaOp::Insert { at, row } => {
                    w.u8(0);
                    w.len_of(*at);
                    encode_row(w, row);
                }
                DeltaOp::Update { at, row } => {
                    w.u8(1);
                    w.len_of(*at);
                    encode_row(w, row);
                }
                DeltaOp::Remove { at } => {
                    w.u8(2);
                    w.len_of(*at);
                }
            }
        }
    }

    /// Decodes a delta written by [`Delta::encode`]. Input is untrusted:
    /// declared counts are checked against the bytes remaining so a
    /// hostile frame cannot drive a huge allocation loop.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let n = r.len_of()?;
        check_count(r, n, "delta op")?;
        let mut ops = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let tag = r.u8()?;
            let at = r.len_of()?;
            ops.push(match tag {
                0 => DeltaOp::Insert {
                    at,
                    row: decode_row(r)?,
                },
                1 => DeltaOp::Update {
                    at,
                    row: decode_row(r)?,
                },
                2 => DeltaOp::Remove { at },
                t => {
                    return Err(HyGraphError::Corrupt {
                        offset: r.position(),
                        message: format!("unknown delta op tag {t}"),
                    })
                }
            });
        }
        Ok(Self { ops })
    }
}

fn encode_row(w: &mut ByteWriter, row: &Row) {
    w.len_of(row.len());
    for v in row {
        w.value(v);
    }
}

fn decode_row(r: &mut ByteReader<'_>) -> Result<Row> {
    let n = r.len_of()?;
    check_count(r, n, "cell")?;
    let mut row = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        row.push(r.value()?);
    }
    Ok(row)
}

fn check_count(r: &ByteReader<'_>, n: usize, what: &str) -> Result<()> {
    if n > r.remaining() {
        return Err(HyGraphError::Corrupt {
            offset: r.position(),
            message: format!(
                "declared {what} count {n} exceeds {} bytes remaining",
                r.remaining()
            ),
        });
    }
    Ok(())
}

/// Applies a delta to a locally held result snapshot (the client side
/// of a subscription). Positions out of range error instead of
/// panicking — a desynchronised stream must surface, not abort.
pub fn apply_delta(res: &mut QueryResult, delta: &Delta) -> Result<()> {
    for op in &delta.ops {
        match op {
            DeltaOp::Insert { at, row } => {
                if *at > res.rows.len() {
                    return Err(HyGraphError::query(format!(
                        "delta insert at {at} beyond {} rows",
                        res.rows.len()
                    )));
                }
                res.rows.insert(*at, row.clone());
            }
            DeltaOp::Update { at, row } => match res.rows.get_mut(*at) {
                Some(slot) => *slot = row.clone(),
                None => {
                    return Err(HyGraphError::query(format!(
                        "delta update at {at} beyond {} rows",
                        res.rows.len()
                    )))
                }
            },
            DeltaOp::Remove { at } => {
                if *at >= res.rows.len() {
                    return Err(HyGraphError::query(format!(
                        "delta remove at {at} beyond {} rows",
                        res.rows.len()
                    )));
                }
                res.rows.remove(*at);
            }
        }
    }
    Ok(())
}

/// Positional diff between two row vectors (the fallback path): trims
/// the byte-identical common prefix and suffix, removes the remaining
/// old middle and inserts the new one. Minimal for the common cases
/// (append, single change) and always correct.
pub fn diff_rows(old: &[Row], new: &[Row]) -> Delta {
    let eq = |a: &Row, b: &Row| row_bytes(a) == row_bytes(b);
    let mut p = 0usize;
    while p < old.len() && p < new.len() && eq(&old[p], &new[p]) {
        p += 1;
    }
    let mut s = 0usize;
    while s < old.len() - p
        && s < new.len() - p
        && eq(&old[old.len() - 1 - s], &new[new.len() - 1 - s])
    {
        s += 1;
    }
    let mut ops = Vec::new();
    for _ in p..old.len() - s {
        ops.push(DeltaOp::Remove { at: p });
    }
    for (at, row) in new.iter().enumerate().take(new.len() - s).skip(p) {
        ops.push(DeltaOp::Insert {
            at,
            row: row.clone(),
        });
    }
    Delta { ops }
}

fn row_bytes(row: &Row) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_row(&mut w, row);
    w.into_bytes()
}

/// Whether a plan is incrementally maintainable; `Err` carries the
/// human-readable reason shown in EXPLAIN output (`Subscribe: rerun
/// (<reason>)`) and in operator-facing docs.
pub fn support(plan: &LogicalPlan) -> std::result::Result<(), String> {
    let q = &plan.query;
    if q.temporal.is_some() {
        return Err("temporal bound (AS OF / BETWEEN)".to_string());
    }
    if plan.grouped {
        return Err("row aggregates / HAVING need the grouped operator".to_string());
    }
    if q.distinct {
        return Err("DISTINCT".to_string());
    }
    if !q.order_by.is_empty() {
        return Err("ORDER BY".to_string());
    }
    if q.limit.is_some() {
        return Err("LIMIT".to_string());
    }
    Ok(())
}

/// Whether the plan reads any series aggregate — if not, `Append`
/// mutations can never affect it and the subscription layer routes
/// appends past it entirely.
pub fn uses_series(plan: &LogicalPlan) -> bool {
    fn walk(e: &Expr) -> bool {
        match e {
            Expr::Agg { .. } => true,
            Expr::Not(i) => walk(i),
            Expr::Binary { lhs, rhs, .. } => walk(lhs) || walk(rhs),
            Expr::RowAgg { arg, .. } => arg.as_deref().is_some_and(walk),
            _ => false,
        }
    }
    let q = &plan.query;
    q.filter.as_ref().is_some_and(walk)
        || q.returns.iter().any(|r| walk(&r.expr))
        || q.having.as_ref().is_some_and(walk)
}

/// One stored match: its variable bindings and, if the filter passed,
/// the projected row.
#[derive(Clone, Debug)]
struct Entry {
    binding: Binding,
    row: Option<Row>,
}

/// Stable identifier of a stored match: pattern index (variable-length
/// expansions enumerate pattern-major) plus the canonical match key.
type EntryKey = (u32, MatchKey);

/// Incrementally maintained state of one standing query: every match
/// with its evaluation outcome, ordered exactly as `execute_planned`
/// would emit them, plus an inverted index from series ids to the
/// entries whose values depend on them.
#[derive(Clone, Debug)]
pub struct IncState {
    planned: PlannedQuery,
    entries: BTreeMap<EntryKey, Entry>,
    by_series: HashMap<SeriesId, HashSet<EntryKey>>,
}

impl IncState {
    /// Builds the initial state and materialised snapshot. Errors if
    /// the plan shape is unsupported (see [`support`]) or evaluation
    /// fails — both mirror what `execute_planned` would report.
    pub fn new(planned: &PlannedQuery, hg: &HyGraph) -> Result<(Self, QueryResult)> {
        support(&planned.plan).map_err(HyGraphError::query)?;
        let mut st = Self {
            planned: planned.clone(),
            entries: BTreeMap::new(),
            by_series: HashMap::new(),
        };
        st.entries = st.full_entries(hg)?;
        st.reindex_series(hg);
        let snapshot = st.snapshot();
        Ok((st, snapshot))
    }

    /// The plan this state maintains.
    pub fn planned(&self) -> &PlannedQuery {
        &self.planned
    }

    /// The current materialised result, in `execute_planned` order.
    pub fn snapshot(&self) -> QueryResult {
        QueryResult {
            columns: self
                .planned
                .plan
                .query
                .returns
                .iter()
                .map(|r| r.alias.clone())
                .collect(),
            rows: self
                .entries
                .values()
                .filter_map(|e| e.row.clone())
                .collect(),
        }
    }

    /// Number of stored matches (passing or not) — exposed for tests
    /// and capacity accounting.
    pub fn match_count(&self) -> usize {
        self.entries.len()
    }

    /// Advances the state across one committed mutation batch and
    /// returns the edit script against the previous snapshot.
    ///
    /// `new_vertices` / `new_edges` are the ids created by the batch,
    /// `appended` the series that received points. `rebuild` forces a
    /// from-scratch recomputation (required after property updates,
    /// validity closes, or a partially applied batch, where touched
    /// matches cannot be enumerated locally); it stays correct for any
    /// batch.
    pub fn apply_batch(
        &mut self,
        hg: &HyGraph,
        new_vertices: &[VertexId],
        new_edges: &[EdgeId],
        appended: &[SeriesId],
        rebuild: bool,
    ) -> Result<Delta> {
        if rebuild {
            return self.rebuild(hg);
        }

        // old row (None = absent/not passing) of every touched entry
        let mut changed: BTreeMap<EntryKey, Option<Row>> = BTreeMap::new();

        // (a) matches involving newly added elements, via pinned search
        let topo = hg.topology();
        for (pi, pattern) in self.planned.patterns.iter().enumerate() {
            let mut found: BTreeMap<MatchKey, Binding> = BTreeMap::new();
            for &v in new_vertices {
                pattern.find_keyed_with_vertex(topo, v, &mut found);
            }
            for &e in new_edges {
                pattern.find_keyed_with_edge(topo, e, &mut found);
            }
            for (key, binding) in found {
                let k = (pi as u32, key);
                if self.entries.contains_key(&k) {
                    continue; // impossible for pure additions, but harmless
                }
                changed.insert(k.clone(), None);
                self.entries.insert(k, Entry { binding, row: None });
            }
        }

        // (b) entries whose series inputs changed
        for sid in appended {
            if let Some(keys) = self.by_series.get(sid) {
                for k in keys {
                    changed
                        .entry(k.clone())
                        .or_insert_with(|| self.entries[k].row.clone());
                }
            }
        }

        if changed.is_empty() {
            return Ok(Delta::default());
        }

        // (c) re-evaluate every touched entry against the new instance
        for k in changed.keys() {
            let entry = self.entries.get(k).expect("touched entry exists");
            let row = eval_binding(&self.planned, hg, &entry.binding)?;
            let deps = series_deps(&self.planned, hg, &entry.binding);
            for sid in deps {
                self.by_series.entry(sid).or_default().insert(k.clone());
            }
            self.entries.get_mut(k).expect("touched entry exists").row = row;
        }

        // (d) one ordered walk emits the positional edit script
        let mut ops = Vec::new();
        let mut pos = 0usize;
        for (k, entry) in &self.entries {
            match changed.get(k) {
                None => {
                    if entry.row.is_some() {
                        pos += 1;
                    }
                }
                Some(old) => emit_op(&mut ops, &mut pos, old.as_ref(), entry.row.as_ref()),
            }
        }
        Ok(Delta { ops })
    }

    /// Full recomputation plus an ordered merge-diff against the old
    /// entries — the correctness anchor for mutations the incremental
    /// path cannot localise.
    fn rebuild(&mut self, hg: &HyGraph) -> Result<Delta> {
        let new_entries = self.full_entries(hg)?;
        let keys: BTreeSet<&EntryKey> = self.entries.keys().chain(new_entries.keys()).collect();
        let mut ops = Vec::new();
        let mut pos = 0usize;
        for k in keys {
            let old = self.entries.get(k).and_then(|e| e.row.as_ref());
            let new = new_entries.get(k).and_then(|e| e.row.as_ref());
            emit_op(&mut ops, &mut pos, old, new);
        }
        self.entries = new_entries;
        self.reindex_series(hg);
        Ok(Delta { ops })
    }

    /// Enumerates and evaluates every match from scratch.
    fn full_entries(&self, hg: &HyGraph) -> Result<BTreeMap<EntryKey, Entry>> {
        let mut entries = BTreeMap::new();
        for (pi, pattern) in self.planned.patterns.iter().enumerate() {
            for (key, binding) in pattern.find_keyed(hg.topology()) {
                let row = eval_binding(&self.planned, hg, &binding)?;
                entries.insert((pi as u32, key), Entry { binding, row });
            }
        }
        Ok(entries)
    }

    fn reindex_series(&mut self, hg: &HyGraph) {
        self.by_series.clear();
        for (k, entry) in &self.entries {
            for sid in series_deps(&self.planned, hg, &entry.binding) {
                self.by_series.entry(sid).or_default().insert(k.clone());
            }
        }
    }
}

/// Extends the edit script for one entry transition, tracking the
/// cursor into the partially rewritten row vector. Both old and new row
/// sequences share the entry-key order, which is what makes this single
/// cursor sufficient.
fn emit_op(ops: &mut Vec<DeltaOp>, pos: &mut usize, old: Option<&Row>, new: Option<&Row>) {
    match (old, new) {
        (None, None) => {}
        (None, Some(row)) => {
            ops.push(DeltaOp::Insert {
                at: *pos,
                row: row.clone(),
            });
            *pos += 1;
        }
        (Some(_), None) => ops.push(DeltaOp::Remove { at: *pos }),
        (Some(o), Some(n)) => {
            if row_bytes(o) != row_bytes(n) {
                ops.push(DeltaOp::Update {
                    at: *pos,
                    row: n.clone(),
                });
            }
            *pos += 1;
        }
    }
}

/// Filter + project one binding — the exact per-binding recipe of the
/// flat physical path (`filter_stage` then `project`), so stored rows
/// are byte-identical to `execute_planned`'s.
fn eval_binding(planned: &PlannedQuery, hg: &HyGraph, binding: &Binding) -> Result<Option<Row>> {
    let q = &planned.plan.query;
    let local = LocalAggCache::default();
    let ctx = EvalCtx {
        hg,
        binding,
        agg_cache: None,
        local_agg: Some(&local),
    };
    if let Some(filter) = &q.filter {
        if ctx.eval(filter)?.as_bool() != Some(true) {
            return Ok(None);
        }
    }
    let mut row = Vec::with_capacity(q.returns.len());
    for ReturnItem { expr, .. } in &q.returns {
        row.push(ctx.eval(expr)?);
    }
    Ok(Some(row))
}

/// Resolves the series ids this binding's evaluation reads (through
/// `DELTA(var)` and series-valued properties), mirroring `eval_agg`'s
/// resolution rules. Unresolvable references contribute nothing — their
/// evaluation is Null regardless of appended points.
fn series_deps(planned: &PlannedQuery, hg: &HyGraph, binding: &Binding) -> Vec<SeriesId> {
    fn element(binding: &Binding, var: &str) -> Option<ElementRef> {
        if let Some(&v) = binding.vertices.get(var) {
            Some(ElementRef::Vertex(v))
        } else {
            binding.edges.get(var).map(|&e| ElementRef::Edge(e))
        }
    }
    fn walk(e: &Expr, hg: &HyGraph, binding: &Binding, out: &mut Vec<SeriesId>) {
        match e {
            Expr::Agg { series, .. } => {
                let sid = match series {
                    SeriesRef::Delta(var) => {
                        element(binding, var).and_then(|el| hg.delta_id(el).ok())
                    }
                    SeriesRef::Property { var, key } => element(binding, var)
                        .and_then(|el| hg.props(el).ok())
                        .and_then(|p| p.series_value(key)),
                };
                if let Some(sid) = sid {
                    out.push(sid);
                }
            }
            Expr::Not(i) => walk(i, hg, binding, out),
            Expr::Binary { lhs, rhs, .. } => {
                walk(lhs, hg, binding, out);
                walk(rhs, hg, binding, out);
            }
            Expr::RowAgg { arg: Some(a), .. } => walk(a, hg, binding, out),
            _ => {}
        }
    }
    let q = &planned.plan.query;
    let mut out = Vec::new();
    if let Some(f) = &q.filter {
        walk(f, hg, binding, &mut out);
    }
    for r in &q.returns {
        walk(&r.expr, hg, binding, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::physical::{execute_planned, plan_query};
    use hygraph_core::HyGraphBuilder;
    use hygraph_ts::TimeSeries;
    use hygraph_types::parallel::ExecMode;
    use hygraph_types::{props, Duration, Timestamp};

    fn instance() -> HyGraph {
        let hot = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 50, |i| {
            (i % 17) as f64
        });
        HyGraphBuilder::new()
            .univariate("hot", &hot)
            .pg_vertex(
                "alice",
                ["User"],
                props! {"name" => "alice", "age" => 34i64},
            )
            .pg_vertex("bob", ["User"], props! {"name" => "bob", "age" => 19i64})
            .ts_vertex("c1", ["Card"], "hot")
            .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
            .pg_edge(None, "alice", "c1", ["USES"], props! {})
            .pg_edge(Some("t1"), "c1", "m1", ["TX"], props! {"amount" => 120.0})
            .build()
            .unwrap()
            .hygraph
    }

    fn encoded(r: &QueryResult) -> Vec<u8> {
        let mut w = ByteWriter::new();
        r.encode(&mut w);
        w.into_bytes()
    }

    /// Drives a state across a mutation step and checks the applied
    /// delta reproduces a from-scratch run byte-for-byte.
    fn step_and_check(
        st: &mut IncState,
        local: &mut QueryResult,
        hg: &HyGraph,
        new_v: &[VertexId],
        new_e: &[EdgeId],
        appended: &[SeriesId],
    ) {
        let delta = st.apply_batch(hg, new_v, new_e, appended, false).unwrap();
        apply_delta(local, &delta).unwrap();
        let fresh = execute_planned(hg, st.planned(), ExecMode::Sequential).unwrap();
        assert_eq!(encoded(local), encoded(&fresh));
        assert_eq!(encoded(&st.snapshot()), encoded(&fresh));
    }

    #[test]
    fn initial_snapshot_matches_execute_planned() {
        let hg = instance();
        for text in [
            "MATCH (u:User) RETURN u.name AS name",
            "MATCH (u:User)-[:USES]->(c:Card) WHERE u.age > 20 RETURN u.name AS who",
            "MATCH (u:User)-[:USES]->(c:Card)-[t:TX]->(m:Merchant) \
             RETURN u.name AS who, t.amount AS amt, MEAN(DELTA(c) IN [0, 500)) AS m",
        ] {
            let planned = plan_query(&parse(text).unwrap()).unwrap();
            let (_, snap) = IncState::new(&planned, &hg).unwrap();
            let fresh = execute_planned(&hg, &planned, ExecMode::Sequential).unwrap();
            assert_eq!(encoded(&snap), encoded(&fresh), "{text}");
        }
    }

    #[test]
    fn incremental_additions_and_appends() {
        let mut hg = instance();
        let planned = plan_query(
            &parse(
                "MATCH (u:User)-[:USES]->(c:Card) \
                 WHERE SUM(DELTA(c) IN [0, 1000)) > 10 RETURN u.name AS who",
            )
            .unwrap(),
        )
        .unwrap();
        let (mut st, mut local) = IncState::new(&planned, &hg).unwrap();

        // new user + new USES edge to the existing card
        let v0 = hg.topology().vertex_capacity();
        let e0 = hg.topology().edge_capacity();
        let u3 = hg.add_pg_vertex(["User"], props! {"name" => "carol", "age" => 40i64});
        let card = hg.topology().vertices_with_label("Card").next().unwrap().id;
        let e = hg.add_pg_edge(u3, card, ["USES"], props! {}).unwrap();
        let new_v: Vec<VertexId> = (v0..hg.topology().vertex_capacity())
            .map(VertexId::from)
            .collect();
        let new_e: Vec<EdgeId> = (e0..hg.topology().edge_capacity())
            .map(EdgeId::from)
            .collect();
        assert_eq!(new_v, vec![u3]);
        assert_eq!(new_e, vec![e]);
        step_and_check(&mut st, &mut local, &hg, &new_v, &new_e, &[]);

        // append to the card's series: rows flip as the SUM crosses 10
        let sid = hg.delta_id(ElementRef::Vertex(card)).unwrap();
        hg.append(sid, Timestamp::from_millis(600), &[500.0])
            .unwrap();
        step_and_check(&mut st, &mut local, &hg, &[], &[], &[sid]);
    }

    #[test]
    fn rebuild_handles_property_updates() {
        let mut hg = instance();
        let planned = plan_query(
            &parse("MATCH (u:User) WHERE u.age > 20 RETURN u.name AS who, u.age AS age").unwrap(),
        )
        .unwrap();
        let (mut st, mut local) = IncState::new(&planned, &hg).unwrap();
        let alice = hg.topology().vertices_with_label("User").next().unwrap().id;
        hg.set_property(
            ElementRef::Vertex(alice),
            "age".to_string(),
            hygraph_types::PropertyValue::Static(18i64.into()),
        )
        .unwrap();
        let delta = st.apply_batch(&hg, &[], &[], &[], true).unwrap();
        apply_delta(&mut local, &delta).unwrap();
        let fresh = execute_planned(&hg, st.planned(), ExecMode::Sequential).unwrap();
        assert_eq!(encoded(&local), encoded(&fresh));
    }

    #[test]
    fn unsupported_shapes_are_rejected_with_reasons() {
        for (text, needle) in [
            ("MATCH (u:User) RETURN COUNT(*) AS n", "grouped"),
            ("MATCH (u:User) RETURN DISTINCT u.name AS n", "DISTINCT"),
            ("MATCH (u:User) RETURN u.name AS n ORDER BY n", "ORDER BY"),
            ("MATCH (u:User) RETURN u.name AS n LIMIT 1", "LIMIT"),
        ] {
            let planned = plan_query(&parse(text).unwrap()).unwrap();
            let reason = support(&planned.plan).unwrap_err();
            assert!(reason.contains(needle), "{text}: {reason}");
        }
    }

    #[test]
    fn delta_codec_roundtrip_and_hostile_input() {
        let d = Delta {
            ops: vec![
                DeltaOp::Insert {
                    at: 0,
                    row: vec![Value::Int(1), Value::Str("x".into())],
                },
                DeltaOp::Update {
                    at: 3,
                    row: vec![Value::Float(2.5)],
                },
                DeltaOp::Remove { at: 1 },
            ],
        };
        let mut w = ByteWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(Delta::decode(&mut r).unwrap(), d);
        // hostile: huge declared count must be rejected, not allocated
        let mut w = ByteWriter::new();
        w.len_of(usize::MAX >> 1);
        let hostile = w.into_bytes();
        let mut r = ByteReader::new(&hostile);
        assert!(Delta::decode(&mut r).is_err());
    }

    use hygraph_types::Value;

    #[test]
    fn diff_rows_prefix_suffix() {
        let r = |i: i64| vec![Value::Int(i)];
        let old = vec![r(1), r(2), r(3), r(4)];
        let new = vec![r(1), r(9), r(8), r(3), r(4)];
        let d = diff_rows(&old, &new);
        let mut res = QueryResult {
            columns: vec!["x".into()],
            rows: old,
        };
        apply_delta(&mut res, &d).unwrap();
        assert_eq!(res.rows, new);
        assert!(diff_rows(&res.rows, &res.rows).is_empty());
    }
}
