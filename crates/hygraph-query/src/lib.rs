//! HyQL — the hybrid declarative query engine over HyGraph instances.
//!
//! HyQL is a small Cypher-flavoured language whose predicates and
//! projections range over *both* worlds: static graph properties and
//! time-series aggregates. A query like
//!
//! ```text
//! MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
//! WHERE t.amount > 1000 AND MEAN(DELTA(c) IN [0, 86400000)) > 500
//! RETURN u.name AS user, t.amount
//! ORDER BY user LIMIT 10
//! ```
//!
//! pattern-matches the topology (pg- and ts-elements uniformly), and the
//! `MEAN(DELTA(c) IN …)` term aggregates the series δ(c) of the matched
//! ts-vertex — the unified capability the paper's §4 calls for.
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`plan`] (logical
//! plan + fingerprint) → [`optimize`] (rule-based rewrites: constant
//! folding, predicate pushdown into pattern matching, redundant-stage
//! elimination, series-aggregate memoization) → [`physical`] (operator
//! pipeline with per-operator metrics) against a
//! [`hygraph_core::HyGraph`]. The legacy one-pass interpreter survives
//! as [`exec::execute_interpreted`], the reference the planner is
//! validated against (`tests/plan_equivalence.rs`). Prefix a query with
//! `EXPLAIN` to get the optimized plan rendering instead of rows. The
//! roadmap's four *hybrid operators* (Q1 hybrid matching, Q2 hybrid
//! aggregation, Q3 correlation reachability, Q4 segmentation snapshots)
//! have first-class programmatic APIs in [`hybrid`].
//!
//! # Language reference
//!
//! ```text
//! query  := MATCH path (',' path)*
//!           [WHERE expr]                 -- per-row filter (no row aggregates)
//!           [VALID AT <millis>]          -- ρ-aware matching at an instant
//!           [AS OF <millis> | AS OF NOW() | BETWEEN <millis> AND <millis>]
//!                                        -- transaction-time travel over
//!                                        -- the store's commit history
//!           RETURN [DISTINCT] item (',' item)*
//!           [HAVING expr]                -- per-group filter (row aggregates ok)
//!           [ORDER BY col [ASC|DESC] (',' ...)*]
//!           [LIMIT n]
//!
//! path   := node (edge node)*
//! node   := '(' [var] (':' Label)* ['{' key ':' literal (',' ...)* '}'] ')'
//! edge   := '-[' [var] (':' Label)* ['*' min '..' max] ']->'   -- outgoing
//!         | '<-[' ... ']-'                                     -- incoming
//!         | '-[' ... ']-'                                      -- undirected
//! ```
//!
//! **Expressions** combine, with the usual precedence
//! (`OR` < `AND` < `NOT` < comparisons < `+ -` < `* /`):
//!
//! * literals: `42`, `3.5`, `-7`, `'text'` (doubled `''` escapes), `TRUE`,
//!   `FALSE`, `NULL`;
//! * property access `var.key` (static properties; `NULL` if absent or
//!   series-valued);
//! * **series aggregates** `MEAN|SUM|MIN|MAX|COUNT '(' series IN
//!   '[' t1 ',' t2 ')' ')'` where `series` is `DELTA(var)` (the δ series
//!   of a ts-element) or `var.key` (a series-valued property) — evaluated
//!   per matched row over the half-open epoch-millisecond range;
//! * **row aggregates** `COUNT(*)`, `COUNT([DISTINCT] expr)`,
//!   `SUM|AVG|MIN|MAX(expr)` — Cypher-style implicit grouping by the
//!   aggregate-free RETURN items; usable in RETURN and HAVING only.
//!
//! Comparisons use SQL three-valued logic: `NULL` never matches.
//!
//! ```
//! use hygraph_core::HyGraphBuilder;
//! use hygraph_ts::TimeSeries;
//! use hygraph_types::{props, Duration, Timestamp, Value};
//!
//! let spend = TimeSeries::generate(Timestamp::ZERO, Duration::from_hours(1), 24, |h| {
//!     if h == 12 { 900.0 } else { 25.0 }
//! });
//! let built = HyGraphBuilder::new()
//!     .univariate("spend", &spend)
//!     .pg_vertex("u", ["User"], props! {"name" => "ada"})
//!     .ts_vertex("c", ["Card"], "spend")
//!     .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
//!     .pg_vertex("m2", ["Merchant"], props! {"name" => "m2"})
//!     .pg_edge(None, "u", "c", ["USES"], props! {})
//!     .pg_edge(None, "c", "m1", ["TX"], props! {"amount" => 900.0})
//!     .pg_edge(None, "c", "m2", ["TX"], props! {"amount" => 25.0})
//!     .build()
//!     .unwrap();
//!
//! // pattern + inline props + series aggregate + row aggregate + HAVING
//! let r = hygraph_query::query(
//!     &built.hygraph,
//!     "MATCH (u:User {name: 'ada'})-[:USES]->(c:Card)-[t:TX]->(m:Merchant) \
//!      WHERE MAX(DELTA(c) IN [0, 86400000)) > 500 \
//!      RETURN u.name AS who, COUNT(t) AS txs, SUM(t.amount) AS total \
//!      HAVING COUNT(t) > 1",
//! )
//! .unwrap();
//! assert_eq!(r.rows[0][0], Value::Str("ada".into()));
//! assert_eq!(r.rows[0][1], Value::Int(2));
//! assert_eq!(r.rows[0][2], Value::Float(925.0));
//!
//! // variable-length traversal: everything within 2 hops of the user
//! let r = hygraph_query::query(
//!     &built.hygraph,
//!     "MATCH (u:User)-[*1..2]->(x) RETURN COUNT(x) AS reach",
//! )
//! .unwrap();
//! assert_eq!(r.rows[0][0], Value::Int(3)); // card + 2 merchants
//! ```

pub mod ast;
pub mod exec;
pub mod hybrid;
pub mod incremental;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod physical;
pub mod plan;
pub mod scatter;

pub use ast::{Query, TemporalBound};
pub use exec::{
    execute, execute_interpreted, execute_interpreted_mode, execute_mode, QueryResult, Row,
};
pub use incremental::{apply_delta, diff_rows, Delta, DeltaOp, IncState};
pub use physical::{execute_planned, plan_query, PlannedQuery};
pub use plan::{LogicalPlan, PushedPred};
pub use scatter::execute_planned_sharded;

use hygraph_core::HyGraph;
use hygraph_metrics::OpClass;
use hygraph_types::parallel::ExecMode;
use hygraph_types::shard::ShardRouter;
use hygraph_types::Result;
use std::sync::Arc;

/// Classifies a parsed query into the paper's Table 2 operator
/// taxonomy — the key space for per-class execution metrics.
///
/// Precedence (a query showing several traits takes the first match):
/// `VALID AT` anchors and `AS OF`/`BETWEEN` time travel are snapshot
/// retrieval (Q4), variable-length edges are traversal (Q3), any
/// aggregate (series, row, or `HAVING`) is aggregation (Q2), and
/// everything else is plain pattern matching (Q1).
pub fn classify(q: &Query) -> OpClass {
    if q.valid_at.is_some() || q.temporal.is_some() {
        return OpClass::Q4Snapshot;
    }
    let traverses = q
        .patterns
        .iter()
        .flat_map(|p| p.hops.iter())
        .any(|(e, _)| e.hops != (1, 1));
    if traverses {
        return OpClass::Q3Traverse;
    }
    fn has_agg(e: &ast::Expr) -> bool {
        match e {
            ast::Expr::Agg { .. } | ast::Expr::RowAgg { .. } => true,
            ast::Expr::Not(inner) => has_agg(inner),
            ast::Expr::Binary { lhs, rhs, .. } => has_agg(lhs) || has_agg(rhs),
            ast::Expr::Literal(_) | ast::Expr::Prop { .. } | ast::Expr::Var(_) => false,
        }
    }
    let aggregates = q.having.is_some()
        || q.filter.as_ref().is_some_and(has_agg)
        || q.returns.iter().any(|r| has_agg(&r.expr));
    if aggregates {
        return OpClass::Q2Aggregate;
    }
    OpClass::Q1Match
}

/// A pluggable plan cache keyed by [`plan::fingerprint`]. The serving
/// layer implements this over a bounded LRU; anything stored must be
/// data-independent, which [`PlannedQuery`] is by construction.
pub trait PlanCacheHook: Send + Sync {
    /// Looks up a cached plan.
    fn get(&self, fingerprint: u64) -> Option<Arc<PlannedQuery>>;
    /// Stores a freshly built plan.
    fn put(&self, fingerprint: u64, plan: Arc<PlannedQuery>);
}

/// What a [`TemporalResolver`] resolved a [`TemporalBound`] to: the
/// graph state(s) the query must execute against.
#[derive(Clone, Debug)]
pub enum ResolvedStates {
    /// The live (current) graph — `AS OF NOW()` or a bound at or past
    /// the latest commit watermark.
    Live,
    /// One reconstructed historical state (`AS OF t`).
    At(Arc<HyGraph>),
    /// Successive states for `BETWEEN t1 AND t2`, oldest first; the
    /// query runs at each epoch and the rows are unioned.
    Epochs(Vec<Arc<HyGraph>>),
}

/// Resolves transaction-time bounds to historical graph states. The
/// history subsystem (`hygraph-temporal`) implements this over its
/// commit log; the query layer stays ignorant of how snapshots are
/// reconstructed.
pub trait TemporalResolver {
    /// Resolves `bound` to the state(s) to execute against. Errors when
    /// the bound precedes the retained history horizon.
    fn resolve(&mut self, bound: &TemporalBound) -> Result<ResolvedStates>;
}

/// Executes a planned query at each epoch state in order and unions the
/// result rows, dropping rows already produced by an earlier epoch
/// (first-seen order, exact value equality). This is the `BETWEEN`
/// execution strategy: "everything the query ever returned while the
/// store passed through `[t1, t2]`".
pub fn execute_epochs(
    states: &[Arc<HyGraph>],
    planned: &PlannedQuery,
    mode: ExecMode,
) -> Result<QueryResult> {
    execute_epochs_inner(states, planned, mode, None)
}

fn execute_epochs_inner(
    states: &[Arc<HyGraph>],
    planned: &PlannedQuery,
    mode: ExecMode,
    router: Option<ShardRouter>,
) -> Result<QueryResult> {
    let columns: Vec<String> = planned
        .plan
        .query
        .returns
        .iter()
        .map(|r| r.alias.clone())
        .collect();
    let mut rows: Vec<Row> = Vec::new();
    for g in states {
        let r = run_one(g, planned, mode, router)?;
        for row in r.rows {
            if !rows.iter().any(|seen| exec::rows_equal(seen, &row)) {
                rows.push(row);
            }
        }
    }
    Ok(QueryResult { columns, rows })
}

/// Executes one state through the scatter-gather path when a
/// multi-shard router is supplied, the single-pass path otherwise.
fn run_one(
    hg: &HyGraph,
    planned: &PlannedQuery,
    mode: ExecMode,
    router: Option<ShardRouter>,
) -> Result<QueryResult> {
    match router {
        Some(r) if !r.is_single() => scatter::execute_planned_sharded(hg, planned, mode, r),
        _ => physical::execute_planned(hg, planned, mode),
    }
}

/// Parses and executes `text` against `hg` in one call (no plan cache).
///
/// This is the instrumented entry point: executions are counted and
/// timed per [`OpClass`], parse failures bump a dedicated counter, and
/// queries slower than the `HYGRAPH_SLOW_QUERY_MS` threshold are
/// captured (text, duration, row count, plan fingerprint) in the
/// global slow-query ring.
pub fn query(hg: &HyGraph, text: &str) -> Result<QueryResult> {
    run_instrumented(hg, text, None)
}

/// [`query`] with an optional plan cache: on a fingerprint hit the
/// cached [`PlannedQuery`] is executed directly (skipping lowering,
/// optimization, and pattern compilation); on a miss the fresh plan is
/// stored. Hits and misses bump the `plan_cache_hits`/`_misses`
/// counters; misses are only counted when a cache is actually present.
pub fn run_instrumented(
    hg: &HyGraph,
    text: &str,
    cache: Option<&dyn PlanCacheHook>,
) -> Result<QueryResult> {
    run_instrumented_temporal(hg, text, cache, None)
}

/// [`run_instrumented`] with an optional [`TemporalResolver`]: queries
/// carrying an `AS OF`/`BETWEEN` bound execute against the historical
/// state(s) the resolver reconstructs instead of `hg`. Without a
/// resolver, `AS OF NOW()` degrades gracefully to the live graph (the
/// two are equivalent by definition) and any other bound is a typed
/// error — time travel needs a history store behind it.
pub fn run_instrumented_temporal(
    hg: &HyGraph,
    text: &str,
    cache: Option<&dyn PlanCacheHook>,
    resolver: Option<&mut dyn TemporalResolver>,
) -> Result<QueryResult> {
    run_instrumented_bound(hg, text, cache, resolver, None)
}

/// [`run_instrumented_temporal`] with an optional *injected* temporal
/// bound: when `bound` is `Some`, the query executes as if its text
/// carried that `AS OF`/`BETWEEN` clause. This backs structured wire
/// requests (a client pins a timestamp without splicing it into HyQL
/// text). A query that already carries its own bound rejects the
/// injection — silently overriding either one would be a correctness
/// trap. The bound participates in the plan fingerprint exactly as a
/// textual bound would, so cached plans never cross epochs.
pub fn run_instrumented_bound(
    hg: &HyGraph,
    text: &str,
    cache: Option<&dyn PlanCacheHook>,
    resolver: Option<&mut dyn TemporalResolver>,
    bound: Option<TemporalBound>,
) -> Result<QueryResult> {
    run_instrumented_sharded(hg, text, cache, resolver, bound, None)
}

/// [`run_instrumented_bound`] with an optional shard router: when a
/// multi-shard `router` is supplied, every resolved state executes
/// through the scatter-gather physical path ([`scatter`]) — bindings
/// partitioned by anchor shard, evaluated per shard, merged at the
/// coordinator in binding order. Results are byte-identical to the
/// single-pass executor; only the work distribution changes. The
/// sharded engine passes its router here so query parallelism follows
/// the same partitioning as the storage plane.
pub fn run_instrumented_sharded(
    hg: &HyGraph,
    text: &str,
    cache: Option<&dyn PlanCacheHook>,
    mut resolver: Option<&mut dyn TemporalResolver>,
    bound: Option<TemporalBound>,
    router: Option<ShardRouter>,
) -> Result<QueryResult> {
    let start = hygraph_metrics::enabled().then(std::time::Instant::now);
    let mut q = match parser::parse(text) {
        Ok(q) => q,
        Err(e) => {
            if let Some(m) = hygraph_metrics::get() {
                m.query.parse_errors.inc();
            }
            return Err(e);
        }
    };
    if let Some(b) = bound {
        if q.temporal.is_some() {
            return Err(hygraph_types::HyGraphError::query(
                "query text already carries an AS OF / BETWEEN bound; \
                 drop the clause or the structured timestamp",
            ));
        }
        q.temporal = Some(b);
    }
    let fp = plan::fingerprint(&q);
    let res = (|| {
        let planned = match cache.and_then(|c| c.get(fp)) {
            Some(p) => {
                if let Some(m) = hygraph_metrics::get() {
                    m.query.plan_cache_hits.inc();
                }
                p
            }
            None => {
                let p = Arc::new(physical::plan_query(&q)?);
                if let Some(c) = cache {
                    if let Some(m) = hygraph_metrics::get() {
                        m.query.plan_cache_misses.inc();
                    }
                    c.put(fp, Arc::clone(&p));
                }
                p
            }
        };
        if q.explain {
            return Ok(plan::explain_result(&planned));
        }
        let states = match (&q.temporal, resolver.as_deref_mut()) {
            (None, _) | (Some(TemporalBound::AsOfNow), None) => ResolvedStates::Live,
            (Some(bound), Some(r)) => r.resolve(bound)?,
            (Some(_), None) => {
                return Err(hygraph_types::HyGraphError::query(
                    "AS OF / BETWEEN requires a history-enabled engine \
                     (serve with HYGRAPH_HISTORY=1)",
                ))
            }
        };
        match states {
            ResolvedStates::Live => run_one(hg, &planned, ExecMode::Auto, router),
            ResolvedStates::At(g) => run_one(&g, &planned, ExecMode::Auto, router),
            ResolvedStates::Epochs(gs) => {
                execute_epochs_inner(&gs, &planned, ExecMode::Auto, router)
            }
        }
    })();
    if let (Some(m), Some(s)) = (hygraph_metrics::get(), start) {
        let elapsed = s.elapsed();
        let om = m.query.class(classify(&q));
        om.count.inc();
        om.time_us.observe_duration(elapsed);
        if res.is_err() {
            om.errors.inc();
        }
        let rows = res.as_ref().map_or(0, |r| r.rows.len() as u64);
        m.slow.record(
            text,
            elapsed,
            rows,
            fp,
            hygraph_metrics::slow_query_threshold(),
        );
    }
    res
}
