//! Recursive-descent parser for HyQL.
//!
//! Grammar (EBNF, informal):
//!
//! ```text
//! query      := [EXPLAIN] MATCH path (',' path)* [WHERE expr] [VALID AT int]
//!               [AS OF (int | NOW '(' ')') | BETWEEN int AND int]
//!               RETURN [DISTINCT] item (',' item)* [HAVING expr]
//!               [ORDER BY order (',' order)*] [LIMIT int]
//! path       := node (edge node)*
//! node       := '(' [ident] (':' ident)* ')'
//! edge       := '-' '[' [ident] (':' ident)* ['*' int '..' int] ']' ('->' | '-')
//!             | '<-' '[' [ident] (':' ident)* ['*' int '..' int] ']' '-'
//! expr       := or
//! or         := and (OR and)*
//! and        := not (AND not)*
//! not        := NOT not | cmp
//! cmp        := add [cmp_op add]
//! add        := mul (('+'|'-') mul)*
//! mul        := atom (('*'|'/') atom)*
//! atom       := literal | agg | ident ['.' ident] | '(' expr ')'
//! agg        := FUNC '(' series IN '[' int ',' int ')' ')'   (series agg)
//!             | FUNC '(' '*' ')'                              (COUNT(*))
//!             | FUNC '(' [DISTINCT] expr ')'                  (row agg)
//! series     := DELTA '(' ident ')' | ident '.' ident
//! ```

use crate::ast::*;
use crate::lexer::{tokenize, Keyword, Token, TokenKind};
use hygraph_types::{HyGraphError, Result, Timestamp, Value};

/// Parses a HyQL query.
pub fn parse(src: &str) -> Result<Query> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        anon: 0,
    };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    anon: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&self, msg: impl Into<String>) -> HyGraphError {
        HyGraphError::Parse {
            offset: self.offset(),
            message: msg.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(HyGraphError::Parse {
                offset: self.tokens[self.pos.saturating_sub(1)].offset,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn int(&mut self, what: &str) -> Result<i64> {
        match self.bump() {
            TokenKind::Int(i) => Ok(i),
            other => Err(HyGraphError::Parse {
                offset: self.tokens[self.pos.saturating_sub(1)].offset,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn fresh_var(&mut self, prefix: &str) -> String {
        self.anon += 1;
        format!("_{prefix}{}", self.anon)
    }

    // ---- clauses -----------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let explain = self.eat_kw(Keyword::Explain);
        if !self.eat_kw(Keyword::Match) {
            return Err(self.error("query must start with MATCH"));
        }
        let mut patterns = vec![self.path()?];
        while self.eat(&TokenKind::Comma) {
            patterns.push(self.path()?);
        }
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let valid_at = if self.eat_kw(Keyword::ValidAt) {
            Some(Timestamp::from_millis(
                self.int("timestamp after VALID AT")?,
            ))
        } else {
            None
        };
        let temporal = if self.eat_kw(Keyword::AsOf) {
            match self.peek().clone() {
                TokenKind::Int(t) => {
                    self.bump();
                    Some(TemporalBound::AsOf(Timestamp::from_millis(t)))
                }
                TokenKind::Ident(id) if id.eq_ignore_ascii_case("now") => {
                    self.bump();
                    self.expect(&TokenKind::LParen, "'(' in NOW()")?;
                    self.expect(&TokenKind::RParen, "')' in NOW()")?;
                    Some(TemporalBound::AsOfNow)
                }
                _ => return Err(self.error("expected a timestamp or NOW() after AS OF")),
            }
        } else if self.eat_kw(Keyword::Between) {
            let t1 = self.int("timestamp after BETWEEN")?;
            if !self.eat_kw(Keyword::And) {
                return Err(self.error("expected AND between BETWEEN bounds"));
            }
            let t2 = self.int("timestamp closing BETWEEN .. AND ..")?;
            if t2 < t1 {
                return Err(self.error("BETWEEN bounds must satisfy t1 <= t2"));
            }
            Some(TemporalBound::Between(
                Timestamp::from_millis(t1),
                Timestamp::from_millis(t2),
            ))
        } else {
            None
        };
        if !self.eat_kw(Keyword::Return) {
            return Err(self.error("expected RETURN clause"));
        }
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut returns = vec![self.return_item()?];
        while self.eat(&TokenKind::Comma) {
            returns.push(self.return_item()?);
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::OrderBy) {
            loop {
                let column = self.ident("column name in ORDER BY")?;
                let descending = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderItem { column, descending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            let n = self.int("count after LIMIT")?;
            if n < 0 {
                return Err(self.error("LIMIT must be non-negative"));
            }
            Some(n as usize)
        } else {
            None
        };
        Ok(Query {
            patterns,
            filter,
            valid_at,
            temporal,
            returns,
            distinct,
            order_by,
            limit,
            having,
            explain,
        })
    }

    fn path(&mut self) -> Result<PathPattern> {
        let start = self.node()?;
        let mut hops = Vec::new();
        while let TokenKind::Dash | TokenKind::ArrowLeft = self.peek() {
            let edge = self.edge()?;
            let node = self.node()?;
            hops.push((edge, node));
        }
        Ok(PathPattern { start, hops })
    }

    fn node(&mut self) -> Result<NodePattern> {
        self.expect(&TokenKind::LParen, "'(' starting a node pattern")?;
        let var = match self.peek() {
            TokenKind::Ident(_) => self.ident("node variable")?,
            _ => self.fresh_var("v"),
        };
        let mut labels = Vec::new();
        while self.eat(&TokenKind::Colon) {
            labels.push(self.ident("label after ':'")?);
        }
        let mut props = Vec::new();
        if self.eat(&TokenKind::LBrace) {
            loop {
                let key = self.ident("property key in node map")?;
                self.expect(&TokenKind::Colon, "':' after property key")?;
                let value = self.literal("literal value in node map")?;
                props.push((key, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RBrace, "'}' closing the property map")?;
        }
        self.expect(&TokenKind::RParen, "')' closing the node pattern")?;
        Ok(NodePattern { var, labels, props })
    }

    fn literal(&mut self, what: &str) -> Result<hygraph_types::Value> {
        use hygraph_types::Value;
        match self.bump() {
            TokenKind::Int(i) => Ok(Value::Int(i)),
            TokenKind::Float(f) => Ok(Value::Float(f)),
            TokenKind::Str(s) => Ok(Value::Str(s)),
            TokenKind::Keyword(Keyword::True) => Ok(Value::Bool(true)),
            TokenKind::Keyword(Keyword::False) => Ok(Value::Bool(false)),
            TokenKind::Keyword(Keyword::Null) => Ok(Value::Null),
            other => Err(HyGraphError::Parse {
                offset: self.tokens[self.pos.saturating_sub(1)].offset,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn edge(&mut self) -> Result<EdgePattern> {
        // '<-[' .. ']-'   or   '-[' .. ']->'   or   '-[' .. ']-'
        let leading_left = self.eat(&TokenKind::ArrowLeft);
        if !leading_left {
            self.expect(&TokenKind::Dash, "'-' starting an edge pattern")?;
        }
        self.expect(&TokenKind::LBracket, "'[' in edge pattern")?;
        let var = match self.peek() {
            TokenKind::Ident(_) => self.ident("edge variable")?,
            _ => self.fresh_var("e"),
        };
        let mut labels = Vec::new();
        while self.eat(&TokenKind::Colon) {
            labels.push(self.ident("label after ':'")?);
        }
        let hops = if self.eat(&TokenKind::Star) {
            if !var.starts_with('_') {
                return Err(self.error(
                    "variable-length edges cannot bind a variable (remove the edge variable)",
                ));
            }
            let lo = self.int("minimum hop count after '*'")?;
            self.expect(&TokenKind::Dot, "'..' in hop range")?;
            self.expect(&TokenKind::Dot, "'..' in hop range")?;
            let hi = self.int("maximum hop count")?;
            if lo < 1 || hi < lo {
                return Err(self.error("hop range must satisfy 1 <= min <= max"));
            }
            if hi > 8 {
                return Err(self.error("hop range maximum is capped at 8"));
            }
            (lo as usize, hi as usize)
        } else {
            (1, 1)
        };
        self.expect(&TokenKind::RBracket, "']' in edge pattern")?;
        let dir = if leading_left {
            self.expect(&TokenKind::Dash, "'-' ending '<-[..]-'")?;
            EdgeDir::Left
        } else if self.eat(&TokenKind::ArrowRight) {
            EdgeDir::Right
        } else {
            self.expect(&TokenKind::Dash, "'-' or '->' ending the edge pattern")?;
            EdgeDir::Undirected
        };
        Ok(EdgePattern {
            var,
            labels,
            dir,
            hops,
        })
    }

    fn return_item(&mut self) -> Result<ReturnItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            self.ident("alias after AS")?
        } else {
            default_alias(&expr)
        };
        Ok(ReturnItem { expr, alias })
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Dash => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.atom()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Keyword(kw)
                if matches!(
                    kw,
                    Keyword::Mean | Keyword::Sum | Keyword::Min | Keyword::Max | Keyword::Count
                ) =>
            {
                self.bump();
                // series aggregate and row aggregate share the function
                // names; try the series form first, then backtrack
                let mark = self.pos;
                match self.agg(kw) {
                    Ok(e) => Ok(e),
                    Err(_) => {
                        self.pos = mark;
                        self.row_agg(kw)
                    }
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')' closing the expression")?;
                Ok(e)
            }
            TokenKind::Ident(_) => {
                let var = self.ident("identifier")?;
                if self.eat(&TokenKind::Dot) {
                    let key = self.ident("property key after '.'")?;
                    Ok(Expr::Prop { var, key })
                } else {
                    Ok(Expr::Var(var))
                }
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }

    /// `FUNC '(' series IN '[' int ',' int ')' ')'`
    fn agg(&mut self, kw: Keyword) -> Result<Expr> {
        let func = match kw {
            Keyword::Mean => AggFunc::Mean,
            Keyword::Sum => AggFunc::Sum,
            Keyword::Min => AggFunc::Min,
            Keyword::Max => AggFunc::Max,
            Keyword::Count => AggFunc::Count,
            _ => unreachable!("caller checked"),
        };
        self.expect(&TokenKind::LParen, "'(' after aggregate function")?;
        let series = if self.eat_kw(Keyword::Delta) {
            self.expect(&TokenKind::LParen, "'(' after DELTA")?;
            let var = self.ident("variable inside DELTA(..)")?;
            self.expect(&TokenKind::RParen, "')' closing DELTA(..)")?;
            SeriesRef::Delta(var)
        } else {
            let var = self.ident("series reference")?;
            self.expect(&TokenKind::Dot, "'.' in series property reference")?;
            let key = self.ident("property key")?;
            SeriesRef::Property { var, key }
        };
        if !self.eat_kw(Keyword::In) {
            return Err(self.error("expected IN before the aggregate range"));
        }
        self.expect(&TokenKind::LBracket, "'[' starting the range")?;
        let from = self.int("range start")?;
        self.expect(&TokenKind::Comma, "',' between range bounds")?;
        let to = self.int("range end")?;
        self.expect(&TokenKind::RParen, "')' closing the half-open range")?;
        self.expect(&TokenKind::RParen, "')' closing the aggregate")?;
        Ok(Expr::Agg {
            func,
            series,
            from,
            to,
        })
    }

    /// `FUNC '(' ('*' | [DISTINCT] expr) ')'` — Cypher-style row
    /// aggregate with implicit grouping.
    fn row_agg(&mut self, kw: Keyword) -> Result<Expr> {
        let func = match kw {
            Keyword::Mean => RowAggFunc::Avg,
            Keyword::Sum => RowAggFunc::Sum,
            Keyword::Min => RowAggFunc::Min,
            Keyword::Max => RowAggFunc::Max,
            Keyword::Count => RowAggFunc::Count,
            _ => unreachable!("caller checked"),
        };
        self.expect(&TokenKind::LParen, "'(' after aggregate function")?;
        if self.eat(&TokenKind::Star) {
            if func != RowAggFunc::Count {
                return Err(self.error("'*' is only valid in COUNT(*)"));
            }
            self.expect(&TokenKind::RParen, "')' closing COUNT(*)")?;
            return Ok(Expr::RowAgg {
                func,
                arg: None,
                distinct: false,
            });
        }
        let distinct = self.eat_kw(Keyword::Distinct);
        let arg = self.expr()?;
        self.expect(&TokenKind::RParen, "')' closing the aggregate")?;
        Ok(Expr::RowAgg {
            func,
            arg: Some(Box::new(arg)),
            distinct,
        })
    }
}

fn default_alias(expr: &Expr) -> String {
    match expr {
        Expr::Var(v) => v.clone(),
        Expr::Prop { var, key } => format!("{var}.{key}"),
        Expr::Agg { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => "expr".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("MATCH (u:User) RETURN u").unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].start.var, "u");
        assert_eq!(q.patterns[0].start.labels, vec!["User"]);
        assert!(q.filter.is_none());
        assert_eq!(q.returns[0].alias, "u");
    }

    #[test]
    fn path_with_hops_and_directions() {
        let q = parse("MATCH (u:User)-[t:TX]->(m:Merchant)<-[s:TX]-(v) RETURN u").unwrap();
        let p = &q.patterns[0];
        assert_eq!(p.hops.len(), 2);
        assert_eq!(p.hops[0].0.dir, EdgeDir::Right);
        assert_eq!(p.hops[0].0.var, "t");
        assert_eq!(p.hops[1].0.dir, EdgeDir::Left);
        assert_eq!(p.hops[1].1.var, "v");
    }

    #[test]
    fn undirected_edge() {
        let q = parse("MATCH (a)-[e:SIMILAR]-(b) RETURN a").unwrap();
        assert_eq!(q.patterns[0].hops[0].0.dir, EdgeDir::Undirected);
    }

    #[test]
    fn anonymous_nodes_and_edges_get_fresh_vars() {
        let q = parse("MATCH ()-[:USES]->() RETURN 1").unwrap();
        let p = &q.patterns[0];
        assert!(p.start.var.starts_with("_v"));
        assert!(p.hops[0].0.var.starts_with("_e"));
        assert_ne!(p.start.var, p.hops[0].1.var);
    }

    #[test]
    fn where_precedence() {
        let q = parse("MATCH (a) WHERE a.x > 1 AND a.y < 2 OR NOT a.z = 3 RETURN a").unwrap();
        // ((x>1 AND y<2) OR (NOT z=3))
        let Some(Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        }) = q.filter
        else {
            panic!("expected OR at the top");
        };
        assert!(matches!(*lhs, Expr::Binary { op: BinOp::And, .. }));
        assert!(matches!(*rhs, Expr::Not(_)));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("MATCH (a) WHERE a.x + 2 * 3 = 7 RETURN a").unwrap();
        let Some(Expr::Binary {
            op: BinOp::Eq, lhs, ..
        }) = q.filter
        else {
            panic!("expected =");
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = *lhs
        else {
            panic!("expected + under =");
        };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn aggregate_expression() {
        let q = parse("MATCH (c:Card) WHERE MEAN(DELTA(c) IN [0, 1000)) > 50.5 RETURN c").unwrap();
        let Some(Expr::Binary { lhs, .. }) = q.filter else {
            panic!()
        };
        assert_eq!(
            *lhs,
            Expr::Agg {
                func: AggFunc::Mean,
                series: SeriesRef::Delta("c".into()),
                from: 0,
                to: 1000
            }
        );
    }

    #[test]
    fn aggregate_over_series_property() {
        let q = parse("MATCH (s:Station) RETURN MAX(s.availability IN [0, 500)) AS peak").unwrap();
        assert_eq!(q.returns[0].alias, "peak");
        assert!(matches!(
            q.returns[0].expr,
            Expr::Agg {
                func: AggFunc::Max,
                series: SeriesRef::Property { .. },
                ..
            }
        ));
    }

    #[test]
    fn valid_at_order_limit_distinct() {
        let q =
            parse("MATCH (a:N) VALID AT 500 RETURN DISTINCT a.name AS n ORDER BY n DESC LIMIT 3")
                .unwrap();
        assert_eq!(q.valid_at, Some(Timestamp::from_millis(500)));
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].descending);
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn temporal_clauses() {
        let q = parse("MATCH (a:N) AS OF 1234 RETURN a").unwrap();
        assert_eq!(
            q.temporal,
            Some(TemporalBound::AsOf(Timestamp::from_millis(1234)))
        );
        let q = parse("MATCH (a:N) AS OF NOW() RETURN a").unwrap();
        assert_eq!(q.temporal, Some(TemporalBound::AsOfNow));
        let q = parse("MATCH (a:N) as of now() RETURN a").unwrap();
        assert_eq!(q.temporal, Some(TemporalBound::AsOfNow));
        let q = parse("MATCH (a:N) BETWEEN 10 AND 20 RETURN a").unwrap();
        assert_eq!(
            q.temporal,
            Some(TemporalBound::Between(
                Timestamp::from_millis(10),
                Timestamp::from_millis(20)
            ))
        );
        // VALID AT and AS OF coexist (element validity vs store history)
        let q = parse("MATCH (a:N) VALID AT 5 AS OF 99 RETURN a").unwrap();
        assert_eq!(q.valid_at, Some(Timestamp::from_millis(5)));
        assert_eq!(
            q.temporal,
            Some(TemporalBound::AsOf(Timestamp::from_millis(99)))
        );
        assert!(parse("MATCH (a) RETURN a").unwrap().temporal.is_none());
        // malformed bounds
        assert!(parse("MATCH (a) AS OF RETURN a").is_err());
        assert!(parse("MATCH (a) AS OF NOW RETURN a").is_err());
        assert!(parse("MATCH (a) BETWEEN 5 RETURN a").is_err());
        assert!(parse("MATCH (a) BETWEEN 20 AND 10 RETURN a").is_err());
        // aliases are unaffected by the AS OF keyword
        let q = parse("MATCH (a) RETURN a.x AS y").unwrap();
        assert_eq!(q.returns[0].alias, "y");
    }

    #[test]
    fn multiple_patterns() {
        let q = parse("MATCH (a:X)-[:E]->(b), (b)-[:F]->(c) RETURN c").unwrap();
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.patterns[1].start.var, "b");
    }

    #[test]
    fn inline_property_map() {
        let q = parse("MATCH (u:User {name: 'alice', vip: true, age: 30}) RETURN u").unwrap();
        let n = &q.patterns[0].start;
        assert_eq!(n.props.len(), 3);
        assert_eq!(n.props[0], ("name".to_owned(), Value::Str("alice".into())));
        assert_eq!(n.props[1], ("vip".to_owned(), Value::Bool(true)));
        assert_eq!(n.props[2], ("age".to_owned(), Value::Int(30)));
        // empty map is a parse error (must hold at least one pair)
        assert!(parse("MATCH (u {}) RETURN u").is_err());
        // missing colon
        assert!(parse("MATCH (u {name 'x'}) RETURN u").is_err());
    }

    #[test]
    fn parse_errors_have_positions() {
        for bad in [
            "RETURN 1",
            "MATCH (a RETURN a",
            "MATCH (a) RETURN",
            "MATCH (a) WHERE RETURN a",
            "MATCH (a) RETURN a LIMIT -1",
            "MATCH (a)-[e]>(b) RETURN a",
            "MATCH (a) WHERE MEAN(DELTA(a) IN [0 100)) > 1 RETURN a",
            "MATCH (a) RETURN a extra_token",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(
                matches!(err, HyGraphError::Parse { .. }),
                "expected parse error for {bad:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn explain_prefix() {
        let q = parse("EXPLAIN MATCH (u:User) RETURN u").unwrap();
        assert!(q.explain);
        let q = parse("explain MATCH (u:User) RETURN u").unwrap();
        assert!(q.explain, "keyword is case-insensitive");
        assert!(!parse("MATCH (u:User) RETURN u").unwrap().explain);
        // EXPLAIN must be followed by a full query
        assert!(parse("EXPLAIN").is_err());
        assert!(parse("EXPLAIN RETURN 1").is_err());
    }

    #[test]
    fn negative_literals_in_comparison() {
        let q = parse("MATCH (a) WHERE a.x > -5 RETURN a").unwrap();
        let Some(Expr::Binary { rhs, .. }) = q.filter else {
            panic!()
        };
        assert_eq!(*rhs, Expr::Literal(Value::Int(-5)));
    }

    #[test]
    fn string_literal_predicates() {
        let q = parse("MATCH (u:User) WHERE u.name = 'User 1' RETURN u.name").unwrap();
        let Some(Expr::Binary { rhs, .. }) = q.filter else {
            panic!()
        };
        assert_eq!(*rhs, Expr::Literal(Value::Str("User 1".into())));
        assert_eq!(q.returns[0].alias, "u.name");
    }
}
