//! Logical query plans: lowering from the AST, canonical fingerprints
//! for plan caching, and the stable `EXPLAIN` rendering.
//!
//! A [`LogicalPlan`] is the optimizer's working representation: the
//! residual [`Query`] (the AST minus whatever the rewrite rules moved
//! elsewhere), the predicates pushed into pattern matching, and a
//! record of which rules fired. The [fingerprint] is a
//! stable 64-bit hash of the *input* query's canonical binary encoding
//! — two textually different query strings that parse to the same AST
//! share a fingerprint, and therefore a plan-cache entry. The
//! `explain` flag is excluded from the hash so `EXPLAIN q` and `q`
//! share one cached plan.

use crate::ast::{
    AggFunc, BinOp, EdgeDir, Expr, OrderItem, PathPattern, Query, ReturnItem, RowAggFunc,
    SeriesRef, TemporalBound,
};
use crate::exec::{contains_rowagg, QueryResult};
use hygraph_graph::pattern::{CmpOp, PropPredicate};
use hygraph_metrics::PlanOp;
use hygraph_types::bytes::ByteWriter;
use hygraph_types::Value;

/// A WHERE conjunct the optimizer moved into pattern matching: the
/// predicate is enforced while enumerating candidate elements for
/// `var` instead of after a full binding is materialised.
#[derive(Clone, Debug, PartialEq)]
pub struct PushedPred {
    /// Pattern variable the predicate constrains.
    pub var: String,
    /// The property predicate, in the graph layer's vocabulary.
    pub pred: PropPredicate,
}

/// The logical plan for one query: residual AST + rewrite products.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicalPlan {
    /// The residual query: the input AST with pushed/eliminated parts
    /// removed. Executing this with `pushed` applied to the patterns is
    /// equivalent to interpreting the original AST.
    pub query: Query,
    /// WHERE conjuncts pushed into pattern matching.
    pub pushed: Vec<PushedPred>,
    /// Whether execution goes through the grouped (row-aggregate) path.
    pub grouped: bool,
    /// Canonical fingerprint of the *input* query (pre-optimization,
    /// `explain` excluded) — the plan-cache key.
    pub fingerprint: u64,
    /// Whether series aggregates should be memoized across bindings
    /// during execution (set by the `ts-agg-memoize` rule).
    pub memoize_aggs: bool,
    /// Names of the rewrite rules that fired, in application order.
    pub rules: Vec<String>,
}

/// Lowers a parsed query into an unoptimized logical plan.
pub fn lower(q: &Query) -> LogicalPlan {
    LogicalPlan {
        query: q.clone(),
        pushed: Vec::new(),
        grouped: q.having.is_some() || q.returns.iter().any(|r| contains_rowagg(&r.expr)),
        fingerprint: fingerprint(q),
        memoize_aggs: false,
        rules: Vec::new(),
    }
}

/// Canonical fingerprint of a query: FNV-1a 64 over a canonical binary
/// encoding of every semantic field. `explain` is deliberately
/// excluded so an EXPLAIN and its executable twin share a cache entry.
pub fn fingerprint(q: &Query) -> u64 {
    let mut w = ByteWriter::new();
    encode_query(&mut w, q);
    fnv1a(w.as_bytes())
}

/// The exact set of property keys this plan can read: `var.key`
/// accesses and series-property aggregates in the residual filter,
/// projections, and HAVING; inline node property maps; and predicates
/// pushed into pattern matching. HyQL has no dynamic property access
/// (a bare variable evaluates to the element's id only), so the
/// footprint is exact: a property write on a key outside it cannot
/// change the plan's result — which is what lets the subscription
/// layer skip re-running standing queries on untouched keys.
pub fn property_footprint(plan: &LogicalPlan) -> std::collections::BTreeSet<String> {
    fn walk(e: &Expr, out: &mut std::collections::BTreeSet<String>) {
        match e {
            Expr::Prop { key, .. } => {
                out.insert(key.clone());
            }
            Expr::Agg { series, .. } => {
                if let SeriesRef::Property { key, .. } = series {
                    out.insert(key.clone());
                }
            }
            Expr::RowAgg { arg, .. } => {
                if let Some(a) = arg {
                    walk(a, out);
                }
            }
            Expr::Not(inner) => walk(inner, out),
            Expr::Binary { lhs, rhs, .. } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            Expr::Literal(_) | Expr::Var(_) => {}
        }
    }
    let mut out = std::collections::BTreeSet::new();
    let q = &plan.query;
    if let Some(f) = &q.filter {
        walk(f, &mut out);
    }
    if let Some(h) = &q.having {
        walk(h, &mut out);
    }
    for r in &q.returns {
        walk(&r.expr, &mut out);
    }
    for p in &q.patterns {
        for (k, _) in &p.start.props {
            out.insert(k.clone());
        }
        for (_, n) in &p.hops {
            for (k, _) in &n.props {
                out.insert(k.clone());
            }
        }
    }
    for p in &plan.pushed {
        out.insert(p.pred.key.clone());
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_query(w: &mut ByteWriter, q: &Query) {
    w.len_of(q.patterns.len());
    for p in &q.patterns {
        encode_path(w, p);
    }
    w.bool(q.filter.is_some());
    if let Some(f) = &q.filter {
        encode_expr(w, f);
    }
    w.bool(q.valid_at.is_some());
    if let Some(t) = q.valid_at {
        w.timestamp(t);
    }
    w.len_of(q.returns.len());
    for ReturnItem { expr, alias } in &q.returns {
        encode_expr(w, expr);
        w.str(alias);
    }
    w.bool(q.distinct);
    w.len_of(q.order_by.len());
    for OrderItem { column, descending } in &q.order_by {
        w.str(column);
        w.bool(*descending);
    }
    w.bool(q.limit.is_some());
    if let Some(n) = q.limit {
        w.len_of(n);
    }
    w.bool(q.having.is_some());
    if let Some(h) = &q.having {
        encode_expr(w, h);
    }
    // The temporal bound is encoded only when present: a bound-free
    // query's canonical bytes (and therefore its fingerprint and cache
    // entry) are identical to what they were before `AS OF` existed,
    // while two queries differing only in the bound hash apart — the
    // plan cache can never serve one epoch's plan for another.
    match &q.temporal {
        None => {}
        Some(TemporalBound::AsOfNow) => w.u8(1),
        Some(TemporalBound::AsOf(t)) => {
            w.u8(2);
            w.timestamp(*t);
        }
        Some(TemporalBound::Between(t1, t2)) => {
            w.u8(3);
            w.timestamp(*t1);
            w.timestamp(*t2);
        }
    }
}

fn encode_path(w: &mut ByteWriter, p: &PathPattern) {
    w.str(&p.start.var);
    w.len_of(p.start.labels.len());
    for l in &p.start.labels {
        w.str(l);
    }
    w.len_of(p.start.props.len());
    for (k, v) in &p.start.props {
        w.str(k);
        w.value(v);
    }
    w.len_of(p.hops.len());
    for (e, n) in &p.hops {
        w.str(&e.var);
        w.len_of(e.labels.len());
        for l in &e.labels {
            w.str(l);
        }
        w.u8(match e.dir {
            EdgeDir::Right => 0,
            EdgeDir::Left => 1,
            EdgeDir::Undirected => 2,
        });
        w.len_of(e.hops.0);
        w.len_of(e.hops.1);
        w.str(&n.var);
        w.len_of(n.labels.len());
        for l in &n.labels {
            w.str(l);
        }
        w.len_of(n.props.len());
        for (k, v) in &n.props {
            w.str(k);
            w.value(v);
        }
    }
}

fn encode_expr(w: &mut ByteWriter, e: &Expr) {
    match e {
        Expr::Literal(v) => {
            w.u8(0);
            w.value(v);
        }
        Expr::Prop { var, key } => {
            w.u8(1);
            w.str(var);
            w.str(key);
        }
        Expr::Var(v) => {
            w.u8(2);
            w.str(v);
        }
        Expr::Agg {
            func,
            series,
            from,
            to,
        } => {
            w.u8(3);
            w.u8(match func {
                AggFunc::Mean => 0,
                AggFunc::Sum => 1,
                AggFunc::Min => 2,
                AggFunc::Max => 3,
                AggFunc::Count => 4,
            });
            match series {
                SeriesRef::Delta(var) => {
                    w.u8(0);
                    w.str(var);
                }
                SeriesRef::Property { var, key } => {
                    w.u8(1);
                    w.str(var);
                    w.str(key);
                }
            }
            w.i64(*from);
            w.i64(*to);
        }
        Expr::RowAgg {
            func,
            arg,
            distinct,
        } => {
            w.u8(4);
            w.u8(match func {
                RowAggFunc::Count => 0,
                RowAggFunc::Sum => 1,
                RowAggFunc::Avg => 2,
                RowAggFunc::Min => 3,
                RowAggFunc::Max => 4,
            });
            w.bool(*distinct);
            w.bool(arg.is_some());
            if let Some(a) = arg {
                encode_expr(w, a);
            }
        }
        Expr::Not(inner) => {
            w.u8(5);
            encode_expr(w, inner);
        }
        Expr::Binary { op, lhs, rhs } => {
            w.u8(6);
            w.u8(*op as u8);
            encode_expr(w, lhs);
            encode_expr(w, rhs);
        }
    }
}

/// One operator in the rendered plan pipeline (root-first order).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanNode {
    /// Which physical operator this corresponds to (the metrics key).
    pub op: PlanOp,
    /// Human-readable operator detail.
    pub detail: String,
}

impl LogicalPlan {
    /// The operator pipeline, root (output side) first: Limit, Sort,
    /// Distinct, Aggregate|Project, Filter, Match — nodes that would be
    /// no-ops for this query are omitted.
    pub fn nodes(&self) -> Vec<PlanNode> {
        let q = &self.query;
        let mut out = Vec::new();
        if let Some(n) = q.limit {
            out.push(PlanNode {
                op: PlanOp::Limit,
                detail: n.to_string(),
            });
        }
        if !q.order_by.is_empty() {
            let keys: Vec<String> = q
                .order_by
                .iter()
                .map(|o| format!("{} {}", o.column, if o.descending { "DESC" } else { "ASC" }))
                .collect();
            out.push(PlanNode {
                op: PlanOp::Sort,
                detail: keys.join(", "),
            });
        }
        if q.distinct {
            out.push(PlanNode {
                op: PlanOp::Distinct,
                detail: String::new(),
            });
        }
        let items: Vec<String> = q
            .returns
            .iter()
            .map(|r| format!("{} := {}", r.alias, render_expr(&r.expr)))
            .collect();
        if self.grouped {
            let keys: Vec<String> = q
                .returns
                .iter()
                .filter(|r| !contains_rowagg(&r.expr))
                .map(|r| r.alias.clone())
                .collect();
            let mut detail = format!("group=[{}] out=[{}]", keys.join(", "), items.join(", "));
            if let Some(h) = &q.having {
                detail.push_str(&format!(" having={}", render_expr(h)));
            }
            out.push(PlanNode {
                op: PlanOp::Aggregate,
                detail,
            });
        } else {
            out.push(PlanNode {
                op: PlanOp::Project,
                detail: items.join(", "),
            });
        }
        if let Some(f) = &q.filter {
            out.push(PlanNode {
                op: PlanOp::Filter,
                detail: render_expr(f),
            });
        }
        let mut match_detail = q
            .patterns
            .iter()
            .map(render_path)
            .collect::<Vec<_>>()
            .join(", ");
        if !self.pushed.is_empty() {
            let preds: Vec<String> = self.pushed.iter().map(render_pushed).collect();
            match_detail.push_str(&format!(" pushed=[{}]", preds.join(", ")));
        }
        if let Some(t) = q.valid_at {
            match_detail.push_str(&format!(" valid_at={}ms", t.millis()));
        }
        match &q.temporal {
            None => {}
            Some(TemporalBound::AsOfNow) => match_detail.push_str(" as_of=now"),
            Some(TemporalBound::AsOf(t)) => {
                match_detail.push_str(&format!(" as_of={}ms", t.millis()));
            }
            Some(TemporalBound::Between(t1, t2)) => {
                match_detail.push_str(&format!(" between=[{}ms, {}ms]", t1.millis(), t2.millis()));
            }
        }
        out.push(PlanNode {
            op: PlanOp::Match,
            detail: match_detail,
        });
        out
    }

    /// Stable multi-line rendering: a fingerprint/rules header followed
    /// by the operator pipeline, indented by depth. This is the text
    /// `EXPLAIN` returns, so its shape is part of the wire contract —
    /// covered by tests, change with care.
    pub fn render(&self) -> Vec<String> {
        let mut lines = vec![format!("Plan fingerprint=0x{:016x}", self.fingerprint)];
        if self.rules.is_empty() {
            lines.push("rules: (none)".to_string());
        } else {
            lines.push(format!("rules: {}", self.rules.join(", ")));
        }
        for (depth, node) in self.nodes().into_iter().enumerate() {
            let indent = "  ".repeat(depth);
            if node.detail.is_empty() {
                lines.push(format!("{indent}{}", op_title(node.op)));
            } else {
                lines.push(format!("{indent}{} {}", op_title(node.op), node.detail));
            }
        }
        lines.push(match crate::incremental::support(self) {
            Ok(()) => "Subscribe: incremental".to_string(),
            Err(reason) => format!("Subscribe: rerun ({reason})"),
        });
        lines
    }
}

fn op_title(op: PlanOp) -> &'static str {
    match op {
        PlanOp::Match => "Match",
        PlanOp::Filter => "Filter",
        PlanOp::Project => "Project",
        PlanOp::Aggregate => "Aggregate",
        PlanOp::Distinct => "Distinct",
        PlanOp::Sort => "Sort",
        PlanOp::Limit => "Limit",
    }
}

/// Renders an optimized plan as a [`QueryResult`]: one `plan` column,
/// one row per rendered line. This is what an `EXPLAIN`-prefixed query
/// returns instead of executing, locally and over the wire.
pub fn explain_result(planned: &crate::physical::PlannedQuery) -> QueryResult {
    QueryResult {
        columns: vec!["plan".to_string()],
        rows: planned
            .plan
            .render()
            .into_iter()
            .map(|l| vec![Value::Str(l)])
            .collect(),
    }
}

fn render_pushed(p: &PushedPred) -> String {
    format!(
        "{}.{} {} {}",
        p.var,
        p.pred.key,
        cmp_symbol(p.pred.op),
        render_value(&p.pred.value)
    )
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{s}'"),
        other => other.to_string(),
    }
}

fn render_path(p: &PathPattern) -> String {
    use std::fmt::Write;
    fn node(out: &mut String, n: &crate::ast::NodePattern) {
        let _ = write!(out, "({}", n.var);
        for l in &n.labels {
            let _ = write!(out, ":{l}");
        }
        if !n.props.is_empty() {
            let props: Vec<String> = n
                .props
                .iter()
                .map(|(k, v)| format!("{k}: {}", render_value(v)))
                .collect();
            let _ = write!(out, " {{{}}}", props.join(", "));
        }
        out.push(')');
    }
    let mut out = String::new();
    node(&mut out, &p.start);
    for (e, n) in &p.hops {
        let mut body = e.var.clone();
        for l in &e.labels {
            let _ = write!(body, ":{l}");
        }
        if e.hops != (1, 1) {
            let _ = write!(body, "*{}..{}", e.hops.0, e.hops.1);
        }
        match e.dir {
            EdgeDir::Right => {
                let _ = write!(out, "-[{body}]->");
            }
            EdgeDir::Left => {
                let _ = write!(out, "<-[{body}]-");
            }
            EdgeDir::Undirected => {
                let _ = write!(out, "-[{body}]-");
            }
        }
        node(&mut out, n);
    }
    out
}

/// Renders an expression in HyQL-ish surface syntax (parenthesised
/// binaries — precedence-exact round-tripping is not a goal; stability
/// is).
pub(crate) fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => render_value(v),
        Expr::Prop { var, key } => format!("{var}.{key}"),
        Expr::Var(v) => v.clone(),
        Expr::Agg {
            func,
            series,
            from,
            to,
        } => {
            let f = match func {
                AggFunc::Mean => "MEAN",
                AggFunc::Sum => "SUM",
                AggFunc::Min => "MIN",
                AggFunc::Max => "MAX",
                AggFunc::Count => "COUNT",
            };
            let s = match series {
                SeriesRef::Delta(var) => format!("DELTA({var})"),
                SeriesRef::Property { var, key } => format!("{var}.{key}"),
            };
            format!("{f}({s} IN [{from}, {to}))")
        }
        Expr::RowAgg {
            func,
            arg,
            distinct,
        } => {
            let f = match func {
                RowAggFunc::Count => "COUNT",
                RowAggFunc::Sum => "SUM",
                RowAggFunc::Avg => "AVG",
                RowAggFunc::Min => "MIN",
                RowAggFunc::Max => "MAX",
            };
            match arg {
                None => format!("{f}(*)"),
                Some(a) => format!(
                    "{f}({}{})",
                    if *distinct { "DISTINCT " } else { "" },
                    render_expr(a)
                ),
            }
        }
        Expr::Not(inner) => format!("NOT ({})", render_expr(inner)),
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinOp::Or => "OR",
                BinOp::And => "AND",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {} {})", render_expr(lhs), sym, render_expr(rhs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn fingerprint_is_text_insensitive_and_semantic_sensitive() {
        let a = parse("MATCH (u:User) WHERE u.age > 18 RETURN u.name AS n").unwrap();
        let b = parse("MATCH  (u:User)  WHERE u.age > 18  RETURN u.name AS n").unwrap();
        let c = parse("MATCH (u:User) WHERE u.age > 19 RETURN u.name AS n").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "whitespace is ignored");
        assert_ne!(fingerprint(&a), fingerprint(&c), "literals are hashed");
    }

    #[test]
    fn fingerprint_ignores_explain_flag() {
        let plain = parse("MATCH (u:User) RETURN u.name AS n").unwrap();
        let explained = parse("EXPLAIN MATCH (u:User) RETURN u.name AS n").unwrap();
        assert!(explained.explain && !plain.explain);
        assert_eq!(fingerprint(&plain), fingerprint(&explained));
    }

    #[test]
    fn fingerprint_distinguishes_temporal_bounds() {
        let plain = parse("MATCH (u:User) RETURN u.name AS n").unwrap();
        let now = parse("MATCH (u:User) AS OF NOW() RETURN u.name AS n").unwrap();
        let t1 = parse("MATCH (u:User) AS OF 100 RETURN u.name AS n").unwrap();
        let t2 = parse("MATCH (u:User) AS OF 200 RETURN u.name AS n").unwrap();
        let bw = parse("MATCH (u:User) BETWEEN 100 AND 200 RETURN u.name AS n").unwrap();
        let fps = [
            fingerprint(&plain),
            fingerprint(&now),
            fingerprint(&t1),
            fingerprint(&t2),
            fingerprint(&bw),
        ];
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "bounds {i} and {j} must hash apart");
            }
        }
    }

    /// Pinned pre-change fingerprints: adding the temporal clause must
    /// not move the canonical encoding of bound-free queries, or every
    /// deployed plan-cache key (and EXPLAIN header) would silently
    /// change. Captured from the code base immediately before the
    /// `AS OF` machinery landed.
    #[test]
    fn fingerprint_of_bound_free_queries_is_stable_across_the_temporal_change() {
        for (text, expected) in [
            (
                "MATCH (u:User) WHERE u.age > 18 RETURN u.name AS n",
                0x2ebdea5024577a3au64,
            ),
            (
                "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
                 WHERE t.amount > 1000 RETURN u.name AS who, t.amount AS amt",
                0xb97de6603ac011e8,
            ),
            ("MATCH (s:Station) RETURN COUNT(s) AS n", 0xd0323f9abe1fe245),
        ] {
            let q = parse(text).unwrap();
            assert_eq!(
                fingerprint(&q),
                expected,
                "canonical encoding moved for: {text}"
            );
        }
    }

    #[test]
    fn render_includes_temporal_bound() {
        let q = parse("MATCH (u:User) AS OF 1234 RETURN u").unwrap();
        let text = lower(&q).render().join("\n");
        assert!(text.contains("Match (u:User) as_of=1234ms"), "{text}");
        let q = parse("MATCH (u:User) AS OF NOW() RETURN u").unwrap();
        let text = lower(&q).render().join("\n");
        assert!(text.contains("Match (u:User) as_of=now"), "{text}");
        let q = parse("MATCH (u:User) BETWEEN 10 AND 20 RETURN u").unwrap();
        let text = lower(&q).render().join("\n");
        assert!(
            text.contains("Match (u:User) between=[10ms, 20ms]"),
            "{text}"
        );
    }

    #[test]
    fn property_footprint_is_exact() {
        let q = parse(
            "MATCH (u:User {city: 'ut'})-[t:TX]->(m) WHERE u.age > 18 \
             RETURN u.name AS n, COUNT(t.amount) AS c, MAX(m.load IN [0, 10)) AS pk \
             HAVING COUNT(t.amount) > 1",
        )
        .unwrap();
        let mut plan = lower(&q);
        let fp = property_footprint(&plan);
        let want: Vec<&str> = vec!["age", "amount", "city", "load", "name"];
        assert_eq!(fp.iter().map(String::as_str).collect::<Vec<_>>(), want);
        // a predicate moved from WHERE into the pushed set stays visible
        plan.query.filter = None;
        plan.pushed.push(PushedPred {
            var: "u".into(),
            pred: PropPredicate::new("age", CmpOp::Gt, Value::Int(18)),
        });
        let fp = property_footprint(&plan);
        assert!(fp.contains("age"));
        // bare variables read no properties
        let q = parse("MATCH (u:User) RETURN u, COUNT(*) AS n").unwrap();
        assert!(property_footprint(&lower(&q)).is_empty());
    }

    #[test]
    fn lower_detects_grouping() {
        let q = parse("MATCH (u:User) RETURN COUNT(*) AS n").unwrap();
        assert!(lower(&q).grouped);
        let q = parse("MATCH (u:User) RETURN u.name AS n").unwrap();
        assert!(!lower(&q).grouped);
    }

    #[test]
    fn render_pipeline_shape() {
        let q = parse(
            "MATCH (u:User)-[t:TX]->(m) WHERE t.amount > 10 \
             RETURN DISTINCT u.name AS n ORDER BY n DESC LIMIT 3",
        )
        .unwrap();
        let lines = lower(&q).render();
        assert!(lines[0].starts_with("Plan fingerprint=0x"));
        assert_eq!(lines[1], "rules: (none)");
        assert_eq!(lines[2], "Limit 3");
        assert_eq!(lines[3], "  Sort n DESC");
        assert_eq!(lines[4], "    Distinct");
        assert_eq!(lines[5], "      Project n := u.name");
        assert_eq!(lines[6], "        Filter (t.amount > 10)");
        assert_eq!(lines[7], "          Match (u:User)-[t:TX]->(m)");
    }

    #[test]
    fn render_grouped_and_pushed() {
        let q = parse(
            "MATCH (u:User) WHERE u.age > 18 RETURN u.name AS who, COUNT(*) AS n \
             HAVING COUNT(*) > 1",
        )
        .unwrap();
        let mut plan = lower(&q);
        plan.pushed.push(PushedPred {
            var: "u".into(),
            pred: PropPredicate::new("age", CmpOp::Gt, Value::Int(18)),
        });
        plan.query.filter = None;
        plan.rules.push("predicate-pushdown(1)".into());
        let text = plan.render().join("\n");
        assert!(text.contains("rules: predicate-pushdown(1)"));
        assert!(text.contains(
            "Aggregate group=[who] out=[who := u.name, n := COUNT(*)] having=(COUNT(*) > 1)"
        ));
        assert!(text.contains("Match (u:User) pushed=[u.age > 18]"));
        assert!(!text.contains("Filter"));
    }
}
