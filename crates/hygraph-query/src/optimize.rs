//! Rule-based logical-plan rewrites.
//!
//! Every rule preserves *bit-identical* results and error behaviour
//! versus the reference interpreter — the equivalence arguments live
//! next to each rule and are exercised end-to-end by the
//! `plan_equivalence` proptest. Rules that fired are recorded on the
//! plan and surface in `EXPLAIN` output.

use crate::ast::{BinOp, Expr, Query};
use crate::exec::apply_binop;
use crate::plan::{LogicalPlan, PushedPred};
use hygraph_graph::pattern::{CmpOp, PropPredicate};
use hygraph_types::Value;
use std::collections::HashSet;

/// Runs the rewrite pipeline over a lowered plan.
pub fn optimize(mut plan: LogicalPlan) -> LogicalPlan {
    constant_fold(&mut plan);
    eliminate_trivial_filter(&mut plan);
    push_predicates(&mut plan);
    eliminate_redundant_distinct(&mut plan);
    prune_duplicate_sort_keys(&mut plan);
    memoize_series_aggs(&mut plan);
    plan
}

/// Folds subtrees whose operands are all literals. Evaluating a
/// literal never errors and [`apply_binop`] / `NOT` are total and
/// deterministic, so replacing the subtree with its value is exact.
/// Deliberately *not* done: short-circuit simplifications like
/// `false AND x -> false` — the interpreter always evaluates both
/// operands, and `x` could error on some binding.
fn constant_fold(plan: &mut LogicalPlan) {
    fn fold(e: &mut Expr) -> bool {
        match e {
            Expr::Not(inner) => {
                let changed = fold(inner);
                if let Expr::Literal(v) = &**inner {
                    let folded = match v.as_bool() {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    };
                    *e = Expr::Literal(folded);
                    true
                } else {
                    changed
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let changed = fold(lhs) | fold(rhs);
                if let (Expr::Literal(l), Expr::Literal(r)) = (&**lhs, &**rhs) {
                    *e = Expr::Literal(apply_binop(*op, l, r));
                    true
                } else {
                    changed
                }
            }
            _ => false,
        }
    }
    let mut changed = false;
    if let Some(f) = &mut plan.query.filter {
        changed |= fold(f);
    }
    for r in &mut plan.query.returns {
        changed |= fold(&mut r.expr);
    }
    if let Some(h) = &mut plan.query.having {
        changed |= fold(h);
    }
    if changed {
        plan.rules.push("const-fold".to_string());
    }
}

/// Drops a WHERE clause that folded to the literal `TRUE`: it passes
/// every binding and cannot error.
fn eliminate_trivial_filter(plan: &mut LogicalPlan) {
    if plan.query.filter == Some(Expr::Literal(Value::Bool(true))) {
        plan.query.filter = None;
        plan.rules.push("filter-elim".to_string());
    }
}

/// The variables a compiled pattern binds: every node var, plus the
/// vars of plain (single-hop) edges. Variable-length edge vars are
/// compiler-generated `__vle*` names at match time, so the surface var
/// is *not* bound — referencing it evaluates to an "unbound variable"
/// error per binding, which the infallibility gate must treat as
/// fallible.
fn pattern_vars(q: &Query) -> HashSet<&str> {
    let mut vars = HashSet::new();
    for p in &q.patterns {
        vars.insert(p.start.var.as_str());
        for (e, n) in &p.hops {
            vars.insert(n.var.as_str());
            if e.hops == (1, 1) {
                vars.insert(e.var.as_str());
            }
        }
    }
    vars
}

/// Whether evaluating `e` can error for *some* binding. Property and
/// variable reads on pattern-bound vars always succeed (ts-elements
/// yield `Null` for static reads, never an error); series aggregates
/// are fallible (reversed ranges, delta on pg-elements) and row
/// aggregates are rejected in WHERE outright.
fn infallible(e: &Expr, vars: &HashSet<&str>) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Prop { var, .. } | Expr::Var(var) => vars.contains(var.as_str()),
        Expr::Agg { .. } | Expr::RowAgg { .. } => false,
        Expr::Not(inner) => infallible(inner, vars),
        Expr::Binary { lhs, rhs, .. } => infallible(lhs, vars) && infallible(rhs, vars),
    }
}

fn split_and(e: Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        lhs,
        rhs,
    } = e
    {
        split_and(*lhs, out);
        split_and(*rhs, out);
    } else {
        out.push(e);
    }
}

fn to_cmp(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::Ne => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        _ => None,
    }
}

/// Mirrors a comparison across swapped operands: `lit op prop` becomes
/// `prop flip(op) lit`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// `prop op literal` (either operand order) as a pushable predicate.
fn as_pushable(e: &Expr) -> Option<PushedPred> {
    let Expr::Binary { op, lhs, rhs } = e else {
        return None;
    };
    let cmp = to_cmp(*op)?;
    match (&**lhs, &**rhs) {
        (Expr::Prop { var, key }, Expr::Literal(v)) => Some(PushedPred {
            var: var.clone(),
            pred: PropPredicate::new(key.clone(), cmp, v.clone()),
        }),
        (Expr::Literal(v), Expr::Prop { var, key }) => Some(PushedPred {
            var: var.clone(),
            pred: PropPredicate::new(key.clone(), flip(cmp), v.clone()),
        }),
        _ => None,
    }
}

/// Predicate pushdown: moves `var.key op literal` top-level AND
/// conjuncts of WHERE into pattern matching.
///
/// Soundness: only applied when the *entire* WHERE is statically
/// infallible (see [`infallible`]) — otherwise pruning a binding early
/// could skip an evaluation error the interpreter would have reported.
/// Given that gate, for a pushable conjunct `P`:
///
/// * `P` is an AND conjunct, so `WHERE` true ⇒ `P` true: every row the
///   interpreter keeps satisfies `P`, and enforcing `P` during matching
///   removes no kept row.
/// * `P` not-true (missing property, `Null` value, failed comparison —
///   exactly the cases where the matcher's `holds()` is false) ⇒ the
///   interpreter filters the binding anyway, so early pruning removes
///   only rows the interpreter would drop. Comparison semantics match:
///   both sides use `total_cmp`/`sql_eq` with null-never-matches.
/// * The residual AND-chain of the remaining conjuncts evaluates
///   identically on surviving bindings: pushed conjuncts evaluate to
///   `TRUE` there, and `x AND TRUE ≡ x` under the engine's
///   three-valued logic.
///
/// Pushed predicates are excluded from the matcher's selectivity
/// ordering, so binding enumeration order is an order-preserving
/// subsequence of the un-pushed order — grouped folds and DISTINCT
/// stay bit-identical.
fn push_predicates(plan: &mut LogicalPlan) {
    let Some(filter) = &plan.query.filter else {
        return;
    };
    let vars = pattern_vars(&plan.query);
    if !infallible(filter, &vars) {
        return;
    }
    let mut conjuncts = Vec::new();
    split_and(filter.clone(), &mut conjuncts);
    let mut residual = Vec::new();
    let mut pushed = Vec::new();
    for c in conjuncts {
        match as_pushable(&c) {
            // the infallibility gate already guarantees the var is
            // pattern-bound
            Some(p) => pushed.push(p),
            None => residual.push(c),
        }
    }
    if pushed.is_empty() {
        return;
    }
    plan.rules
        .push(format!("predicate-pushdown({})", pushed.len()));
    plan.pushed.extend(pushed);
    plan.query.filter = residual.into_iter().reduce(|acc, e| Expr::Binary {
        op: BinOp::And,
        lhs: Box::new(acc),
        rhs: Box::new(e),
    });
    if plan.query.filter.is_none() {
        plan.rules.push("filter-elim".to_string());
    }
}

/// `RETURN DISTINCT` on a grouped query is redundant: every group key
/// appears in the output row, and groups are partitioned by the same
/// row equality DISTINCT uses, so grouped rows are already pairwise
/// distinct.
fn eliminate_redundant_distinct(plan: &mut LogicalPlan) {
    if plan.query.distinct && plan.grouped {
        plan.query.distinct = false;
        plan.rules.push("distinct-elim".to_string());
    }
}

/// Drops ORDER BY items that repeat an earlier item's column: once a
/// column compares equal, comparing it again (either direction) is
/// still equal, so later duplicates never affect the order. The first
/// occurrence keeps the unknown-column error behaviour.
fn prune_duplicate_sort_keys(plan: &mut LogicalPlan) {
    let mut seen: HashSet<String> = HashSet::new();
    let before = plan.query.order_by.len();
    plan.query
        .order_by
        .retain(|o| seen.insert(o.column.clone()));
    if plan.query.order_by.len() < before {
        plan.rules.push("orderby-prune".to_string());
    }
}

/// Enables the shared (cross-binding) memoization table for
/// series-aggregate summaries — but only when the same `(series, range)`
/// key can actually recur across bindings, i.e. when the pattern can
/// bind one element into many rows: ≥ 2 hops on a path, or multiple
/// paths. On a 1-hop pattern every binding carries a distinct element,
/// every probe of the shared `Mutex`-guarded map is a guaranteed miss,
/// and the table is pure overhead, so the rule stays off there.
/// (Intra-binding reuse — `MAX(DELTA(c) IN R)` and `SUM(DELTA(c) IN R)`
/// in one row — is handled unconditionally by the lock-free single-entry
/// cache in the physical executor and needs no rule.) The cached summary
/// is the exact `Copy` value the kernel computes, so cached and uncached
/// execution are bit-identical.
fn memoize_series_aggs(plan: &mut LogicalPlan) {
    fn has_series_agg(e: &Expr) -> bool {
        match e {
            Expr::Agg { .. } => true,
            Expr::Not(inner) => has_series_agg(inner),
            Expr::Binary { lhs, rhs, .. } => has_series_agg(lhs) || has_series_agg(rhs),
            Expr::RowAgg { arg, .. } => arg.as_deref().is_some_and(has_series_agg),
            _ => false,
        }
    }
    let q = &plan.query;
    let any = q.filter.as_ref().is_some_and(has_series_agg)
        || q.having.as_ref().is_some_and(has_series_agg)
        || q.returns.iter().any(|r| has_series_agg(&r.expr));
    let fan_out = q.patterns.len() > 1 || q.patterns.iter().any(|p| p.hops.len() >= 2);
    if any && fan_out {
        plan.memoize_aggs = true;
        plan.rules.push("ts-agg-memoize".to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::lower;

    fn optimized(text: &str) -> LogicalPlan {
        optimize(lower(&parse(text).unwrap()))
    }

    #[test]
    fn folds_literal_arithmetic() {
        let p = optimized("MATCH (u:User) RETURN 2 * 3 + 1 AS x");
        assert_eq!(p.query.returns[0].expr, Expr::Literal(Value::Int(7)));
        assert!(p.rules.contains(&"const-fold".to_string()));
    }

    #[test]
    fn does_not_shortcircuit_fallible_operands() {
        // FALSE AND <agg> must stay: the interpreter evaluates both
        // operands, and the aggregate errors on its reversed range
        let p = optimized("MATCH (c:Card) WHERE FALSE AND MEAN(DELTA(c) IN [100, 0)) > 1 RETURN c");
        assert!(p.query.filter.is_some());
        assert!(p.pushed.is_empty(), "fallible WHERE blocks pushdown");
    }

    #[test]
    fn pushes_simple_prop_comparisons() {
        let p =
            optimized("MATCH (u:User)-[t:TX]->(m) WHERE u.age > 18 AND 100 < t.amount RETURN u");
        assert_eq!(p.pushed.len(), 2);
        assert_eq!(p.pushed[0].var, "u");
        assert_eq!(
            p.pushed[0].pred,
            PropPredicate::new("age", CmpOp::Gt, Value::Int(18))
        );
        // literal-first comparison is flipped
        assert_eq!(p.pushed[1].var, "t");
        assert_eq!(
            p.pushed[1].pred,
            PropPredicate::new("amount", CmpOp::Gt, Value::Int(100))
        );
        assert!(p.query.filter.is_none(), "both conjuncts consumed");
        assert!(p.rules.iter().any(|r| r == "predicate-pushdown(2)"));
    }

    #[test]
    fn keeps_residual_conjuncts() {
        let p =
            optimized("MATCH (u:User) WHERE u.age > 18 AND u.name <> u.nick RETURN u.name AS n");
        assert_eq!(p.pushed.len(), 1);
        let residual = p.query.filter.expect("prop-prop comparison stays");
        assert!(matches!(residual, Expr::Binary { op: BinOp::Ne, .. }));
    }

    #[test]
    fn unbound_var_blocks_pushdown() {
        // `z` is not pattern-bound: evaluation errors per binding, so
        // the whole WHERE is fallible and nothing may be pushed
        let p = optimized("MATCH (u:User) WHERE u.age > 18 AND z.x = 1 RETURN u");
        assert!(p.pushed.is_empty());
        assert!(p.query.filter.is_some());
    }

    #[test]
    fn or_is_not_split() {
        let p = optimized("MATCH (u:User) WHERE u.age > 18 OR u.age < 3 RETURN u");
        assert!(p.pushed.is_empty(), "OR is not a conjunction");
        assert!(p.query.filter.is_some());
    }

    #[test]
    fn distinct_elim_on_grouped() {
        let p = optimized("MATCH (u:User) RETURN DISTINCT u.name AS n, COUNT(*) AS c");
        assert!(!p.query.distinct);
        assert!(p.rules.contains(&"distinct-elim".to_string()));
        // non-grouped DISTINCT stays
        let p = optimized("MATCH (u:User) RETURN DISTINCT u.name AS n");
        assert!(p.query.distinct);
    }

    #[test]
    fn duplicate_sort_keys_pruned() {
        let p = optimized("MATCH (u:User) RETURN u.name AS n, u.age AS a ORDER BY n, a, n DESC");
        let cols: Vec<&str> = p.query.order_by.iter().map(|o| o.column.as_str()).collect();
        assert_eq!(cols, vec!["n", "a"]);
        assert!(p.rules.contains(&"orderby-prune".to_string()));
    }

    #[test]
    fn series_aggs_enable_memoization_only_on_fanout() {
        // single-node / 1-hop patterns bind each element into exactly
        // one row: the shared table would never hit, so it stays off
        let p = optimized("MATCH (c:Card) RETURN MEAN(DELTA(c) IN [0, 100)) AS m");
        assert!(!p.memoize_aggs);
        let p = optimized(
            "MATCH (u:User)-[:USES]->(c:Card) \
             RETURN MAX(DELTA(c) IN [0, 100)) AS hi, SUM(DELTA(c) IN [0, 100)) AS s",
        );
        assert!(!p.memoize_aggs);
        // ≥2 hops: the ts-element can fan out into many bindings
        let p = optimized(
            "MATCH (u:User)-[:USES]->(c:Card)-[t:TX]->(m:Merchant) \
             RETURN SUM(DELTA(c) IN [0, 100)) AS s",
        );
        assert!(p.memoize_aggs);
        assert!(p.rules.contains(&"ts-agg-memoize".to_string()));
        // multiple paths also fan out
        let p = optimized("MATCH (c:Card), (d:Card) RETURN SUM(DELTA(c) IN [0, 100)) AS s");
        assert!(p.memoize_aggs);
        // fan-out without any aggregate: nothing to memoize
        let p =
            optimized("MATCH (u:User)-[:USES]->(c:Card)-[t:TX]->(m:Merchant) RETURN u.name AS n");
        assert!(!p.memoize_aggs);
    }

    #[test]
    fn true_filter_eliminated() {
        let p = optimized("MATCH (u:User) WHERE 1 < 2 RETURN u");
        assert!(p.query.filter.is_none());
        assert!(p.rules.contains(&"filter-elim".to_string()));
        // a filter folding to FALSE is kept (it must still drop rows)
        let p = optimized("MATCH (u:User) WHERE 1 > 2 RETURN u");
        assert_eq!(p.query.filter, Some(Expr::Literal(Value::Bool(false))));
    }
}
