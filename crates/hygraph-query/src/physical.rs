//! Physical execution of optimized logical plans.
//!
//! A [`PlannedQuery`] bundles the optimized [`LogicalPlan`] with its
//! compiled match [`Pattern`]s — everything about it is a function of
//! the query text alone (no data dependence), which is what makes
//! server-side plan caching sound. [`execute_planned`] runs the
//! operator pipeline (Match → Filter → Project|Aggregate → Distinct →
//! Sort → Limit) with per-operator metrics, preserving the reference
//! interpreter's semantics exactly: rows, row order, and the first
//! error in binding order.

use crate::ast::{Query, ReturnItem};
use crate::exec::{
    collect_rowaggs, compile_patterns, contains_rowagg, rows_equal, sort_rows, AggCache, AggState,
    EvalCtx, LocalAggCache, QueryResult, Row, RowAggSpec,
};
use crate::optimize::optimize;
use crate::plan::{lower, LogicalPlan};
use hygraph_core::HyGraph;
use hygraph_graph::pattern::Binding;
use hygraph_graph::Pattern;
use hygraph_metrics::PlanOp;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::{HyGraphError, Result, Value};
use rayon::prelude::*;
use std::time::Instant;

/// An optimized, compiled, data-independent execution plan — the unit
/// the server-side plan cache stores.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// The optimized logical plan.
    pub plan: LogicalPlan,
    /// Compiled match patterns (one per variable-length expansion).
    pub patterns: Vec<Pattern>,
}

/// Plans a parsed query: validates, lowers, optimizes, and compiles
/// the patterns. Error cases (row aggregate in WHERE, variable-length
/// expansion cap) match the interpreter's, in the same order.
pub fn plan_query(q: &Query) -> Result<PlannedQuery> {
    if let Some(filter) = &q.filter {
        if contains_rowagg(filter) {
            return Err(HyGraphError::query(
                "row aggregates are not allowed in WHERE; use HAVING",
            ));
        }
    }
    let plan = optimize(lower(q));
    let patterns = compile_patterns(&plan.query, &plan.pushed)?;
    Ok(PlannedQuery { plan, patterns })
}

pub(crate) fn op_start() -> Option<Instant> {
    hygraph_metrics::enabled().then(Instant::now)
}

pub(crate) fn record_op(op: PlanOp, start: Option<Instant>, rows: usize) {
    if let (Some(m), Some(s)) = (hygraph_metrics::get(), start) {
        let om = m.query.operator(op);
        om.invocations.inc();
        om.rows_out.add(rows as u64);
        om.time_us.observe_duration(s.elapsed());
    }
}

/// Executes a planned query. Parallelism follows the same
/// `should_parallelize` decision as the interpreter; results are
/// assembled in binding order so parallel and sequential execution are
/// byte-identical.
pub fn execute_planned(
    hg: &HyGraph,
    planned: &PlannedQuery,
    mode: ExecMode,
) -> Result<QueryResult> {
    let plan = &planned.plan;
    let q = &plan.query;

    let t = op_start();
    let bindings: Vec<Binding> = planned
        .patterns
        .iter()
        .flat_map(|p| p.find_all(hg.topology()))
        .collect();
    record_op(PlanOp::Match, t, bindings.len());

    let columns: Vec<String> = q.returns.iter().map(|r| r.alias.clone()).collect();
    let cache = plan.memoize_aggs.then(AggCache::default);
    let mut rows = if plan.grouped {
        run_grouped(hg, q, &bindings, mode, cache.as_ref())?
    } else {
        run_flat(hg, q, &bindings, mode, cache.as_ref())?
    };

    finish_rows(q, &columns, &mut rows)?;
    Ok(QueryResult { columns, rows })
}

/// The tail of the operator pipeline — Distinct → Sort → Limit — shared
/// by the single-pass and scatter-gather executors (the coordinator
/// always runs these after the merge, since all three need the full row
/// set).
pub(crate) fn finish_rows(q: &Query, columns: &[String], rows: &mut Vec<Row>) -> Result<()> {
    if q.distinct {
        let t = op_start();
        let mut seen: Vec<Row> = Vec::new();
        rows.retain(|r| {
            if seen.iter().any(|s| rows_equal(s, r)) {
                false
            } else {
                seen.push(r.clone());
                true
            }
        });
        record_op(PlanOp::Distinct, t, rows.len());
    }
    if !q.order_by.is_empty() {
        let t = op_start();
        sort_rows(rows, columns, &q.order_by)?;
        record_op(PlanOp::Sort, t, rows.len());
    }
    if let Some(limit) = q.limit {
        let t = op_start();
        rows.truncate(limit);
        record_op(PlanOp::Limit, t, rows.len());
    }
    Ok(())
}

/// Evaluates the residual filter over every binding, returning one
/// `Result<bool>` per binding (aligned by index). All bindings are
/// evaluated — no short-circuit — matching the interpreter, which
/// collects every per-binding result before scanning for the first
/// error.
pub(crate) fn filter_stage(
    hg: &HyGraph,
    q: &Query,
    bindings: &[Binding],
    par: bool,
    cache: Option<&AggCache>,
) -> Vec<Result<bool>> {
    match &q.filter {
        None => (0..bindings.len()).map(|_| Ok(true)).collect(),
        Some(_) => {
            let t = op_start();
            let eval = |binding: &Binding| -> Result<bool> { eval_filter(hg, q, cache, binding) };
            let results: Vec<Result<bool>> = if par {
                bindings.par_iter().map(eval).collect()
            } else {
                bindings.iter().map(eval).collect()
            };
            let passed = results.iter().filter(|r| matches!(r, Ok(true))).count();
            record_op(PlanOp::Filter, t, passed);
            results
        }
    }
}

/// Evaluates the residual WHERE filter for one binding — the per-row
/// unit of the Filter operator, shared with the scatter-gather
/// executor. Callers guarantee `q.filter` is `Some`.
pub(crate) fn eval_filter(
    hg: &HyGraph,
    q: &Query,
    cache: Option<&AggCache>,
    binding: &Binding,
) -> Result<bool> {
    let filter = q.filter.as_ref().expect("caller checked q.filter");
    let local = LocalAggCache::default();
    let ctx = EvalCtx {
        hg,
        binding,
        agg_cache: cache,
        local_agg: Some(&local),
    };
    Ok(ctx.eval(filter)?.as_bool() == Some(true))
}

/// Evaluates the RETURN projection for one binding — the per-row unit
/// of the Project operator, shared with the scatter-gather executor.
pub(crate) fn project_row(
    hg: &HyGraph,
    q: &Query,
    cache: Option<&AggCache>,
    binding: &Binding,
) -> Result<Row> {
    let local = LocalAggCache::default();
    let ctx = EvalCtx {
        hg,
        binding,
        agg_cache: cache,
        local_agg: Some(&local),
    };
    q.returns
        .iter()
        .map(|ReturnItem { expr, .. }| ctx.eval(expr))
        .collect()
}

fn run_flat(
    hg: &HyGraph,
    q: &Query,
    bindings: &[Binding],
    mode: ExecMode,
    cache: Option<&AggCache>,
) -> Result<Vec<Row>> {
    let par = should_parallelize(mode, bindings.len());
    let filter_pass = filter_stage(hg, q, bindings, par, cache);

    let t = op_start();
    let passing: Vec<&Binding> = bindings
        .iter()
        .zip(&filter_pass)
        .filter(|(_, r)| matches!(r, Ok(true)))
        .map(|(b, _)| b)
        .collect();
    let project = |binding: &&Binding| -> Result<Row> { project_row(hg, q, cache, binding) };
    let projected: Vec<Result<Row>> = if par {
        passing.par_iter().map(project).collect()
    } else {
        passing.iter().map(project).collect()
    };
    record_op(
        PlanOp::Project,
        t,
        projected.iter().filter(|r| r.is_ok()).count(),
    );

    // assemble in binding order, interleaving the filter and project
    // result streams: a filter error at binding i surfaces before any
    // project error at j > i, exactly as the interpreter reports it
    let mut rows = Vec::with_capacity(passing.len());
    let mut proj = projected.into_iter();
    for fr in filter_pass {
        if fr? {
            rows.push(proj.next().expect("aligned with filter passes")?);
        }
    }
    Ok(rows)
}

/// The data-independent shape of a grouped query: which RETURN items
/// are grouping keys and the deterministic aggregate-spec order.
pub(crate) struct GroupingLayout {
    /// Indices of aggregate-free RETURN items (the grouping keys).
    pub(crate) key_items: Vec<usize>,
    /// Aggregate specs: RETURN items first, then HAVING.
    pub(crate) specs: Vec<RowAggSpec>,
}

pub(crate) fn grouping_layout(q: &Query) -> GroupingLayout {
    // grouping keys: the aggregate-free RETURN items
    let key_items: Vec<usize> = q
        .returns
        .iter()
        .enumerate()
        .filter(|(_, r)| !contains_rowagg(&r.expr))
        .map(|(i, _)| i)
        .collect();
    // aggregate specs in deterministic order: RETURN items, then HAVING
    let mut specs: Vec<RowAggSpec> = Vec::new();
    for r in &q.returns {
        collect_rowaggs(&r.expr, &mut specs);
    }
    if let Some(h) = &q.having {
        collect_rowaggs(h, &mut specs);
    }
    GroupingLayout { key_items, specs }
}

/// Evaluates one binding's grouping keys + aggregate arguments — the
/// parallelisable pure work of the Aggregate operator; keys before
/// args, matching the interpreter's per-binding order.
pub(crate) fn eval_key_args(
    hg: &HyGraph,
    q: &Query,
    layout: &GroupingLayout,
    cache: Option<&AggCache>,
    binding: &Binding,
) -> Result<(Row, Vec<Value>)> {
    let local = LocalAggCache::default();
    let ctx = EvalCtx {
        hg,
        binding,
        agg_cache: cache,
        local_agg: Some(&local),
    };
    let mut key = Vec::with_capacity(layout.key_items.len());
    for &i in &layout.key_items {
        key.push(ctx.eval(&q.returns[i].expr)?);
    }
    let mut args = Vec::with_capacity(layout.specs.len());
    for spec in &layout.specs {
        args.push(match &spec.arg {
            None => Value::Int(1), // COUNT(*)
            Some(arg) => ctx.eval(arg)?,
        });
    }
    Ok((key, args))
}

/// The coordinator-side merge of a grouped query: a sequential fold in
/// global binding order (group creation order and aggregate update
/// order stay deterministic, and error precedence interleaves filter
/// and key/arg errors exactly like the interpreter's single per-binding
/// pass), then per-group finalize + HAVING. `evaluated` must align with
/// the `Ok(true)` entries of `filter_pass`, in the same order.
pub(crate) fn fold_groups(
    q: &Query,
    layout: &GroupingLayout,
    filter_pass: Vec<Result<bool>>,
    evaluated: Vec<Result<(Row, Vec<Value>)>>,
) -> Result<Vec<Row>> {
    let GroupingLayout { key_items, specs } = layout;
    struct Group {
        key: Row,
        states: Vec<AggState>,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut ka = evaluated.into_iter();
    for fr in filter_pass {
        if !fr? {
            continue;
        }
        let (key, args) = ka.next().expect("aligned with filter passes")?;
        let group = match groups.iter_mut().find(|g| rows_equal(&g.key, &key)) {
            Some(g) => g,
            None => {
                groups.push(Group {
                    key,
                    states: vec![AggState::default(); specs.len()],
                });
                groups.last_mut().expect("just pushed")
            }
        };
        for ((spec, state), arg) in specs.iter().zip(group.states.iter_mut()).zip(args) {
            state.update(Some(&arg), spec.distinct && spec.arg.is_some());
        }
    }
    // Cypher semantics: no grouping keys and no matches -> one empty group
    if groups.is_empty() && key_items.is_empty() {
        groups.push(Group {
            key: Vec::new(),
            states: vec![AggState::default(); specs.len()],
        });
    }

    // finalize each group
    let mut rows = Vec::with_capacity(groups.len());
    for group in &groups {
        let agg_values: Vec<Value> = specs
            .iter()
            .zip(&group.states)
            .map(|(spec, state)| state.finalize(spec.func, spec.arg.is_none()))
            .collect();
        // map each key RETURN item to its pre-computed value
        let key_lookup = |expr: &crate::ast::Expr| -> Option<Value> {
            key_items
                .iter()
                .position(|&i| &q.returns[i].expr == expr)
                .map(|pos| group.key[pos].clone())
        };
        let mut cursor = 0usize;
        let mut row = Vec::with_capacity(q.returns.len());
        let mut keep = true;
        for r in &q.returns {
            row.push(crate::exec::eval_final(
                None,
                &r.expr,
                &agg_values,
                &mut cursor,
                &key_lookup,
            )?);
        }
        if let Some(h) = &q.having {
            let v = crate::exec::eval_final(None, h, &agg_values, &mut cursor, &key_lookup)?;
            keep = v.as_bool() == Some(true);
        }
        if keep {
            rows.push(row);
        }
    }
    Ok(rows)
}

fn run_grouped(
    hg: &HyGraph,
    q: &Query,
    bindings: &[Binding],
    mode: ExecMode,
    cache: Option<&AggCache>,
) -> Result<Vec<Row>> {
    let layout = grouping_layout(q);
    let par = should_parallelize(mode, bindings.len());
    let filter_pass = filter_stage(hg, q, bindings, par, cache);

    let t = op_start();
    let passing: Vec<&Binding> = bindings
        .iter()
        .zip(&filter_pass)
        .filter(|(_, r)| matches!(r, Ok(true)))
        .map(|(b, _)| b)
        .collect();
    let eval_ka = |binding: &&Binding| -> Result<(Row, Vec<Value>)> {
        eval_key_args(hg, q, &layout, cache, binding)
    };
    let evaluated: Vec<Result<(Row, Vec<Value>)>> = if par {
        passing.par_iter().map(eval_ka).collect()
    } else {
        passing.iter().map(eval_ka).collect()
    };

    let rows = fold_groups(q, &layout, filter_pass, evaluated)?;
    record_op(PlanOp::Aggregate, t, rows.len());
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_interpreted_mode, execute_mode};
    use crate::parser::parse;
    use hygraph_core::HyGraphBuilder;
    use hygraph_ts::TimeSeries;
    use hygraph_types::{props, Duration, Timestamp};

    fn instance() -> hygraph_core::builder::BuiltHyGraph {
        let hot = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 100, |i| {
            if i >= 50 {
                900.0
            } else {
                10.0
            }
        });
        let cold = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 100, |_| 12.0);
        HyGraphBuilder::new()
            .univariate("hot", &hot)
            .univariate("cold", &cold)
            .pg_vertex(
                "alice",
                ["User"],
                props! {"name" => "alice", "age" => 34i64},
            )
            .pg_vertex("bob", ["User"], props! {"name" => "bob", "age" => 19i64})
            .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
            .pg_vertex("m2", ["Merchant"], props! {"name" => "m2"})
            .ts_vertex("c1", ["CreditCard"], "hot")
            .ts_vertex("c2", ["CreditCard"], "cold")
            .pg_edge(None, "alice", "c1", ["USES"], props! {})
            .pg_edge(None, "bob", "c2", ["USES"], props! {})
            .pg_edge(Some("t1"), "c1", "m1", ["TX"], props! {"amount" => 1500.0})
            .pg_edge(Some("t2"), "c1", "m2", ["TX"], props! {"amount" => 30.0})
            .pg_edge(Some("t3"), "c2", "m1", ["TX"], props! {"amount" => 20.0})
            .build()
            .unwrap()
    }

    /// The Table-1-shaped query set every planner change must stay
    /// bit-identical on (success and error cases).
    const QUERIES: &[&str] = &[
        "MATCH (u:User) RETURN u.name AS name ORDER BY name",
        "MATCH (u:User {name: 'alice'})-[:USES]->(c:CreditCard) RETURN u.age AS age",
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         WHERE t.amount > 1000 RETURN u.name AS who, t.amount AS amt",
        "MATCH (u:User)-[:USES]->(c:CreditCard) \
         WHERE MEAN(DELTA(c) IN [0, 1000)) > 400 RETURN u.name AS who",
        "MATCH (u:User)-[:USES]->(c:CreditCard) \
         RETURN u.name AS who, MAX(DELTA(c) IN [0, 1000)) AS peak, \
         COUNT(DELTA(c) IN [0, 250)) AS n ORDER BY who",
        "MATCH (c:CreditCard)-[t:TX]->(m:Merchant) RETURN DISTINCT m.name AS m ORDER BY m",
        "MATCH (c:CreditCard)-[t:TX]->(m) RETURN t.amount AS a ORDER BY a DESC LIMIT 2",
        "MATCH (u:User) WHERE u.ghost > 1 RETURN u",
        "MATCH (u:User) WHERE u.name = 'alice' RETURN u.age * 2 + 1 AS x, u.age / 0 AS z",
        "MATCH (u:User)-[:USES]->(c:CreditCard), (c)-[t:TX]->(m:Merchant) \
         WHERE m.name = 'm1' RETURN u.name AS who ORDER BY who",
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         RETURN u.name AS who, COUNT(t) AS n HAVING COUNT(t) > 1 ORDER BY who",
        "MATCH (c:CreditCard)-[t:TX]->(m:Merchant) \
         RETURN COUNT(m.name) AS all_rows, COUNT(DISTINCT m.name) AS uniq",
        "MATCH (u:User) RETURN COUNT(*) AS n",
        "MATCH (u:Ghost) RETURN COUNT(*) AS n",
        "MATCH (u:User {name: 'alice'})-[*1..2]->(x) RETURN DISTINCT x ORDER BY x",
        "MATCH (c:CreditCard)-[:TX*1..3]->(m) RETURN COUNT(*) AS n",
        "MATCH (u:User)-[:USES]->(c:CreditCard) \
         RETURN AVG(MEAN(DELTA(c) IN [0, 1000)) ) AS fleet_mean",
        "MATCH (u:User) RETURN u.name AS n ORDER BY zzz",
        "MATCH (c:CreditCard) WHERE MEAN(DELTA(c) IN [100, 0)) > 1 RETURN c",
        "MATCH (u:User) WHERE u.age > 18 AND 1 < 2 RETURN u.name AS n ORDER BY n",
    ];

    #[test]
    fn planner_matches_interpreter_on_query_set() {
        let b = instance();
        for text in QUERIES {
            let q = parse(text).unwrap();
            for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                let legacy = execute_interpreted_mode(&b.hygraph, &q, mode);
                let planned = execute_mode(&b.hygraph, &q, mode);
                match (legacy, planned) {
                    (Ok(l), Ok(p)) => {
                        let mut wl = hygraph_types::bytes::ByteWriter::new();
                        l.encode(&mut wl);
                        let mut wp = hygraph_types::bytes::ByteWriter::new();
                        p.encode(&mut wp);
                        assert_eq!(
                            wl.as_bytes(),
                            wp.as_bytes(),
                            "wire bytes diverge ({mode:?}): {text}"
                        );
                    }
                    (Err(le), Err(pe)) => {
                        assert_eq!(
                            le.to_string(),
                            pe.to_string(),
                            "error text diverges ({mode:?}): {text}"
                        );
                    }
                    (l, p) => panic!("outcome diverges ({mode:?}) on {text}: {l:?} vs {p:?}"),
                }
            }
        }
    }

    #[test]
    fn explain_renders_instead_of_executing() {
        let b = instance();
        let r = crate::query(
            &b.hygraph,
            "EXPLAIN MATCH (u:User)-[t:TX]->(m) WHERE u.age > 18 \
             RETURN u.name AS n ORDER BY n LIMIT 5",
        )
        .unwrap();
        assert_eq!(r.columns, vec!["plan"]);
        let text: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert!(text[0].starts_with("Plan fingerprint=0x"), "{text:?}");
        assert!(
            text.iter().any(|l| l.contains("predicate-pushdown(1)")),
            "{text:?}"
        );
        assert!(
            text.iter().any(|l| l.trim_start().starts_with("Match")),
            "{text:?}"
        );
        // EXPLAIN output never contains data rows
        assert!(text.iter().all(|l| !l.contains("alice")), "{text:?}");
    }

    #[test]
    fn pushdown_prunes_bindings_with_identical_results() {
        let b = instance();
        let q = parse(
            "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
             WHERE u.age > 20 AND t.amount > 100 RETURN u.name AS who, t.amount AS a",
        )
        .unwrap();
        let planned = plan_query(&q).unwrap();
        assert_eq!(planned.plan.pushed.len(), 2);
        assert!(planned.plan.query.filter.is_none());
        let r = execute_planned(&b.hygraph, &planned, ExecMode::Sequential).unwrap();
        let l = execute_interpreted_mode(&b.hygraph, &q, ExecMode::Sequential).unwrap();
        assert_eq!(r, l);
        assert_eq!(
            r.rows,
            vec![vec![Value::Str("alice".into()), Value::Float(1500.0)]]
        );
    }

    #[test]
    fn planned_query_is_reusable() {
        let b = instance();
        let q = parse("MATCH (u:User) RETURN COUNT(*) AS n").unwrap();
        let planned = plan_query(&q).unwrap();
        let r1 = execute_planned(&b.hygraph, &planned, ExecMode::Auto).unwrap();
        let r2 = execute_planned(&b.hygraph, &planned, ExecMode::Auto).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.rows, vec![vec![Value::Int(2)]]);
    }
}
