//! HyQL tokenizer.
//!
//! Hand-rolled scanner producing position-tagged tokens. Keywords are
//! case-insensitive; identifiers, string literals (single quotes) and
//! numeric literals follow Cypher conventions.

use hygraph_types::{HyGraphError, Result};

/// One token with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Byte offset in the source.
    pub offset: usize,
    /// The token kind/payload.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `-`
    Dash,
    /// `->`
    ArrowRight,
    /// `<-`
    ArrowLeft,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    Match,
    Where,
    Return,
    As,
    And,
    Or,
    Not,
    OrderBy, // two-word keyword assembled by the lexer
    Limit,
    Having,
    Asc,
    Desc,
    ValidAt, // two-word
    AsOf,    // two-word ("AS OF"); an alias literally named `of` is
    // therefore reserved after AS
    Between,
    In,
    Delta,
    Mean,
    Sum,
    Min,
    Max,
    Count,
    True,
    False,
    Null,
    Distinct,
    Explain,
}

impl Keyword {
    fn parse2(first: &str, second: &str) -> Option<Keyword> {
        match (first, second) {
            ("ORDER", "BY") => Some(Keyword::OrderBy),
            ("VALID", "AT") => Some(Keyword::ValidAt),
            ("AS", "OF") => Some(Keyword::AsOf),
            _ => None,
        }
    }

    fn parse1(word: &str) -> Option<Keyword> {
        Some(match word {
            "MATCH" => Keyword::Match,
            "WHERE" => Keyword::Where,
            "RETURN" => Keyword::Return,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "LIMIT" => Keyword::Limit,
            "HAVING" => Keyword::Having,
            "BETWEEN" => Keyword::Between,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "IN" => Keyword::In,
            "DELTA" => Keyword::Delta,
            "MEAN" | "AVG" => Keyword::Mean,
            "SUM" => Keyword::Sum,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "COUNT" => Keyword::Count,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "NULL" => Keyword::Null,
            "DISTINCT" => Keyword::Distinct,
            "EXPLAIN" => Keyword::Explain,
            _ => return None,
        })
    }
}

/// Tokenizes the full input.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;

    let err = |offset: usize, msg: &str| HyGraphError::Parse {
        offset,
        message: msg.to_owned(),
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::LParen,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::RParen,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::LBracket,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::RBracket,
                });
                i += 1;
            }
            '{' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::LBrace,
                });
                i += 1;
            }
            '}' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::RBrace,
                });
                i += 1;
            }
            ':' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Colon,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Dot,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Plus,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Star,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Slash,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Eq,
                });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::ArrowRight,
                    });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                    && matches!(
                        out.last().map(|t| &t.kind),
                        None | Some(
                            TokenKind::LParen
                                | TokenKind::LBracket
                                | TokenKind::Comma
                                | TokenKind::Eq
                                | TokenKind::Ne
                                | TokenKind::Lt
                                | TokenKind::Le
                                | TokenKind::Gt
                                | TokenKind::Ge
                                | TokenKind::Plus
                                | TokenKind::Star
                                | TokenKind::Slash
                                | TokenKind::Keyword(_)
                        )
                    )
                {
                    // negative number literal in value position
                    let (tok, next) = scan_number(bytes, i)?;
                    out.push(tok);
                    i = next;
                } else {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::Dash,
                    });
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'-') => {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::ArrowLeft,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                }
                Some(b'=') => {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::Le,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::Lt,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::Ge,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        offset: start,
                        kind: TokenKind::Gt,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        None => return Err(err(start, "unterminated string literal")),
                        Some(b'\'') => {
                            // doubled quote escapes a quote
                            if bytes.get(j + 1) == Some(&b'\'') {
                                s.push('\'');
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Str(s),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = scan_number(bytes, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &src[i..j];
                let upper = word.to_ascii_uppercase();
                // try two-word keywords (ORDER BY / VALID AT / AS OF)
                let mut consumed = j;
                let mut kind = None;
                if upper == "ORDER" || upper == "VALID" || upper == "AS" {
                    // peek next word
                    let mut k = j;
                    while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                        k += 1;
                    }
                    let mut l = k;
                    while l < bytes.len()
                        && ((bytes[l] as char).is_ascii_alphanumeric() || bytes[l] == b'_')
                    {
                        l += 1;
                    }
                    if let Some(kw) = Keyword::parse2(&upper, &src[k..l].to_ascii_uppercase()) {
                        kind = Some(TokenKind::Keyword(kw));
                        consumed = l;
                    }
                }
                let kind = kind.unwrap_or_else(|| match Keyword::parse1(&upper) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word.to_owned()),
                });
                out.push(Token {
                    offset: start,
                    kind,
                });
                i = consumed;
            }
            _ => return Err(err(start, &format!("unexpected character '{c}'"))),
        }
    }
    out.push(Token {
        offset: src.len(),
        kind: TokenKind::Eof,
    });
    Ok(out)
}

fn scan_number(bytes: &[u8], start: usize) -> Result<(Token, usize)> {
    let mut j = start;
    if bytes[j] == b'-' {
        j += 1;
    }
    let int_start = j;
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    if int_start == j {
        return Err(HyGraphError::Parse {
            offset: start,
            message: "malformed number".into(),
        });
    }
    let mut is_float = false;
    // a '.' is part of the number only if followed by a digit ("1.5"),
    // not a property access ("a.b" can't start with a digit anyway)
    if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..j]).expect("ascii digits");
    let kind = if is_float {
        TokenKind::Float(text.parse().map_err(|_| HyGraphError::Parse {
            offset: start,
            message: "malformed float".into(),
        })?)
    } else {
        TokenKind::Int(text.parse().map_err(|_| HyGraphError::Parse {
            offset: start,
            message: "integer literal out of range".into(),
        })?)
    };
    Ok((
        Token {
            offset: start,
            kind,
        },
        j,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_pattern_tokens() {
        let ks = kinds("MATCH (u:User)-[t:TX]->(m)");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Match));
        assert_eq!(ks[1], TokenKind::LParen);
        assert_eq!(ks[2], TokenKind::Ident("u".into()));
        assert_eq!(ks[3], TokenKind::Colon);
        assert!(ks.contains(&TokenKind::ArrowRight));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("match")[0], TokenKind::Keyword(Keyword::Match));
        assert_eq!(kinds("Match")[0], TokenKind::Keyword(Keyword::Match));
        assert_eq!(kinds("avg")[0], TokenKind::Keyword(Keyword::Mean));
    }

    #[test]
    fn two_word_keywords() {
        assert_eq!(kinds("ORDER BY x")[0], TokenKind::Keyword(Keyword::OrderBy));
        assert_eq!(kinds("valid at 5")[0], TokenKind::Keyword(Keyword::ValidAt));
        // ORDER not followed by BY is an identifier
        assert_eq!(kinds("ORDER x")[0], TokenKind::Ident("ORDER".into()));
    }

    #[test]
    fn temporal_keywords() {
        assert_eq!(kinds("AS OF 5")[0], TokenKind::Keyword(Keyword::AsOf));
        assert_eq!(kinds("as of 5")[0], TokenKind::Keyword(Keyword::AsOf));
        assert_eq!(
            kinds("BETWEEN 1 AND 2")[0],
            TokenKind::Keyword(Keyword::Between)
        );
        // AS not followed by OF stays the alias keyword
        assert_eq!(kinds("AS n")[0], TokenKind::Keyword(Keyword::As));
        assert_eq!(kinds("AS n")[1], TokenKind::Ident("n".into()));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("<>")[0], TokenKind::Ne);
        assert_eq!(kinds("<=")[0], TokenKind::Le);
        assert_eq!(kinds(">=")[0], TokenKind::Ge);
        assert_eq!(kinds("<")[0], TokenKind::Lt);
        let ks = kinds("a < b");
        assert_eq!(ks[1], TokenKind::Lt);
    }

    #[test]
    fn arrows_vs_minus() {
        let ks = kinds("-[x]->");
        assert_eq!(ks[0], TokenKind::Dash);
        assert_eq!(ks[4], TokenKind::ArrowRight);
        let ks = kinds("<-[x]-");
        assert_eq!(ks[0], TokenKind::ArrowLeft);
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
        // negative literal after comparison
        let ks = kinds("x > -5");
        assert_eq!(ks[2], TokenKind::Int(-5));
        // subtraction-looking context keeps the dash
        let ks = kinds("a -5"); // after ident: dash (pattern syntax)
        assert_eq!(ks[1], TokenKind::Dash);
        // float in a range bracket
        let ks = kinds("[0, 86400000)");
        assert_eq!(ks[1], TokenKind::Int(0));
        assert_eq!(ks[3], TokenKind::Int(86400000));
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("'hello'")[0], TokenKind::Str("hello".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert!(matches!(
            tokenize("'open").unwrap_err(),
            HyGraphError::Parse { .. }
        ));
    }

    #[test]
    fn unexpected_character() {
        let err = tokenize("a ~ b").unwrap_err();
        match err {
            HyGraphError::Parse { offset, .. } => assert_eq!(offset, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn full_query_smoke() {
        let ks = kinds(
            "MATCH (u:User)-[:USES]->(c) WHERE MEAN(DELTA(c) IN [0, 100)) > 500 \
             RETURN u.name AS user ORDER BY user DESC LIMIT 3",
        );
        assert!(ks.contains(&TokenKind::Keyword(Keyword::Delta)));
        assert!(ks.contains(&TokenKind::Keyword(Keyword::OrderBy)));
        assert!(ks.contains(&TokenKind::Keyword(Keyword::Limit)));
        assert!(ks.contains(&TokenKind::Keyword(Keyword::Desc)));
    }
}
