//! Scatter-gather physical execution over a sharded engine.
//!
//! The sharded engine partitions its commit/storage plane by
//! [`ShardRouter`] but publishes one *logically whole* snapshot per
//! commit epoch, so a query never has to stitch per-shard graphs back
//! together — pattern matching runs against the full topology. What
//! scatter-gather parallelises is everything *after* the match:
//!
//! 1. **Scatter** — the coordinator materialises the match bindings
//!    once, then partitions them by **anchor shard**: the shard owning
//!    the binding's smallest bound vertex (deterministic regardless of
//!    binding-map iteration order). Co-location means a binding's
//!    series reads mostly hit its anchor shard's data.
//! 2. **Per-shard evaluation** — each shard part evaluates its
//!    bindings' residual filter and projection (or grouping keys +
//!    aggregate arguments) independently; shard parts run in parallel
//!    under the same `should_parallelize` decision as the single-pass
//!    executor.
//! 3. **Gather** — the coordinator re-assembles per-binding results by
//!    original binding index, so rows, row order, group creation order,
//!    and the first error in binding order are **byte-identical** to
//!    [`execute_planned`](crate::execute_planned) — the invariant
//!    `tests/scatter_equivalence.rs`
//!    pins across shard counts. Distinct → Sort → Limit run at the
//!    coordinator after the merge.
//!
//! Cross-shard `AS OF` consistency is the engine's job, not this
//! module's: the engine resolves a temporal bound against the
//! cross-shard commit timestamp (every snapshot is published at a
//! single CSN frontier), hands the resolved graph here, and every shard
//! part reads that one immutable snapshot.

use crate::ast::Query;
use crate::exec::{AggCache, QueryResult, Row};
use crate::physical::{
    self, eval_filter, eval_key_args, fold_groups, grouping_layout, op_start, project_row,
    record_op, PlannedQuery,
};
use hygraph_core::HyGraph;
use hygraph_graph::pattern::Binding;
use hygraph_metrics::PlanOp;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::shard::ShardRouter;
use hygraph_types::{Result, Value};
use rayon::prelude::*;

/// One shard's slice of the scattered binding set: the indices (into
/// the coordinator's binding vector) this shard evaluates.
#[derive(Clone, Debug)]
pub struct ShardPart {
    /// The shard these bindings anchor to.
    pub shard: usize,
    /// Indices into the materialised binding vector, ascending.
    pub indices: Vec<usize>,
}

/// The shard a binding anchors to: the home shard of its smallest bound
/// vertex — deterministic under `HashMap` iteration-order variance
/// because `min` is order-free. Bindings with no vertex (pure edge
/// patterns don't exist today, but stay total anyway) fall to shard 0.
pub fn anchor_shard(binding: &Binding, router: &ShardRouter) -> usize {
    binding
        .vertices
        .values()
        .min()
        .map(|&v| router.of_vertex(v))
        .or_else(|| binding.edges.values().min().map(|&e| router.of_edge(e)))
        .unwrap_or(0)
}

/// Partitions binding indices by anchor shard. Only non-empty parts are
/// returned, ordered by shard index; within a part, indices ascend (the
/// gather relies on per-part order only, but determinism keeps the
/// execution observable).
pub fn scatter_bindings(bindings: &[Binding], router: &ShardRouter) -> Vec<ShardPart> {
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); router.shards()];
    for (i, b) in bindings.iter().enumerate() {
        parts[anchor_shard(b, router)].push(i);
    }
    parts
        .into_iter()
        .enumerate()
        .filter(|(_, indices)| !indices.is_empty())
        .map(|(shard, indices)| ShardPart { shard, indices })
        .collect()
}

/// Per-shard evaluation output for one binding: its original index, the
/// filter verdict, and — when the filter passed — the evaluated payload
/// (projected row, or grouping keys + aggregate args).
type Evaluated<T> = (usize, Result<bool>, Option<Result<T>>);

/// One shard's evaluation output on the grouped path: per passing
/// binding, the grouping-key row plus its aggregate arguments.
type GroupedEvals = Vec<Evaluated<(Row, Vec<Value>)>>;

/// Evaluates one shard part: filter first, payload only for passing
/// bindings — the same all-bindings-no-short-circuit discipline as the
/// single-pass executor, so error sets match exactly.
fn eval_part<T>(
    part: &ShardPart,
    bindings: &[Binding],
    has_filter: bool,
    filter: impl Fn(&Binding) -> Result<bool>,
    payload: impl Fn(&Binding) -> Result<T>,
) -> Vec<Evaluated<T>> {
    part.indices
        .iter()
        .map(|&i| {
            let b = &bindings[i];
            let fr = if has_filter { filter(b) } else { Ok(true) };
            let pl = matches!(fr, Ok(true)).then(|| payload(b));
            (i, fr, pl)
        })
        .collect()
}

/// Gathers per-shard results into global binding order: a filter-result
/// vector aligned with `bindings` and, for each passing binding, its
/// payload — the exact inputs the single-pass assembly consumes.
fn gather<T>(
    n: usize,
    per_shard: Vec<Vec<Evaluated<T>>>,
) -> (Vec<Result<bool>>, Vec<Option<Result<T>>>) {
    let mut filter_pass: Vec<Result<bool>> = (0..n).map(|_| Ok(true)).collect();
    let mut payloads: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
    for part in per_shard {
        for (i, fr, pl) in part {
            filter_pass[i] = fr;
            payloads[i] = pl;
        }
    }
    (filter_pass, payloads)
}

/// Executes a planned query with scatter-gather over `router`'s shard
/// layout. Single-shard routers take the single-pass path unchanged;
/// multi-shard execution is byte-identical to it by construction (the
/// gather re-establishes global binding order before any
/// order-sensitive work).
pub fn execute_planned_sharded(
    hg: &HyGraph,
    planned: &PlannedQuery,
    mode: ExecMode,
    router: ShardRouter,
) -> Result<QueryResult> {
    if router.is_single() {
        return physical::execute_planned(hg, planned, mode);
    }
    let plan = &planned.plan;
    let q = &plan.query;

    let t = op_start();
    let bindings: Vec<Binding> = planned
        .patterns
        .iter()
        .flat_map(|p| p.find_all(hg.topology()))
        .collect();
    record_op(PlanOp::Match, t, bindings.len());

    let parts = scatter_bindings(&bindings, &router);
    let columns: Vec<String> = q.returns.iter().map(|r| r.alias.clone()).collect();
    let cache = plan.memoize_aggs.then(AggCache::default);
    let par = should_parallelize(mode, bindings.len());

    let mut rows = if plan.grouped {
        sg_grouped(hg, q, &bindings, &parts, par, cache.as_ref())?
    } else {
        sg_flat(hg, q, &bindings, &parts, par, cache.as_ref())?
    };

    physical::finish_rows(q, &columns, &mut rows)?;
    Ok(QueryResult { columns, rows })
}

fn sg_flat(
    hg: &HyGraph,
    q: &Query,
    bindings: &[Binding],
    parts: &[ShardPart],
    par: bool,
    cache: Option<&AggCache>,
) -> Result<Vec<Row>> {
    let has_filter = q.filter.is_some();
    let ft = has_filter.then(op_start).flatten();
    let pt = op_start();
    let eval = |part: &ShardPart| {
        eval_part(
            part,
            bindings,
            has_filter,
            |b| eval_filter(hg, q, cache, b),
            |b| project_row(hg, q, cache, b),
        )
    };
    let per_shard: Vec<Vec<Evaluated<Row>>> = if par {
        parts.par_iter().map(eval).collect()
    } else {
        parts.iter().map(eval).collect()
    };
    let (filter_pass, mut rows_by_idx) = gather(bindings.len(), per_shard);
    if has_filter {
        let passed = filter_pass.iter().filter(|r| matches!(r, Ok(true))).count();
        record_op(PlanOp::Filter, ft, passed);
    }
    record_op(
        PlanOp::Project,
        pt,
        rows_by_idx
            .iter()
            .filter(|p| matches!(p, Some(Ok(_))))
            .count(),
    );

    // assemble in binding order, interleaving the filter and project
    // result streams — identical error precedence to the single pass
    let mut rows = Vec::new();
    for (i, fr) in filter_pass.into_iter().enumerate() {
        if fr? {
            rows.push(rows_by_idx[i].take().expect("passing binding evaluated")?);
        }
    }
    Ok(rows)
}

fn sg_grouped(
    hg: &HyGraph,
    q: &Query,
    bindings: &[Binding],
    parts: &[ShardPart],
    par: bool,
    cache: Option<&AggCache>,
) -> Result<Vec<Row>> {
    let layout = grouping_layout(q);
    let has_filter = q.filter.is_some();
    let ft = has_filter.then(op_start).flatten();
    let t = op_start();
    let eval = |part: &ShardPart| {
        eval_part(
            part,
            bindings,
            has_filter,
            |b| eval_filter(hg, q, cache, b),
            |b| eval_key_args(hg, q, &layout, cache, b),
        )
    };
    let per_shard: Vec<GroupedEvals> = if par {
        parts.par_iter().map(eval).collect()
    } else {
        parts.iter().map(eval).collect()
    };
    let (filter_pass, mut ka_by_idx) = gather(bindings.len(), per_shard);
    if has_filter {
        let passed = filter_pass.iter().filter(|r| matches!(r, Ok(true))).count();
        record_op(PlanOp::Filter, ft, passed);
    }

    // the coordinator folds in global binding order — the same
    // deterministic merge as the single-pass executor
    let evaluated: Vec<Result<(Row, Vec<Value>)>> = filter_pass
        .iter()
        .enumerate()
        .filter(|(_, fr)| matches!(fr, Ok(true)))
        .map(|(i, _)| ka_by_idx[i].take().expect("passing binding evaluated"))
        .collect();
    let rows = fold_groups(q, &layout, filter_pass, evaluated)?;
    record_op(PlanOp::Aggregate, t, rows.len());
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{EdgeId, VertexId};
    use std::collections::HashMap;

    fn binding(vs: &[u64], es: &[u64]) -> Binding {
        Binding {
            vertices: vs
                .iter()
                .enumerate()
                .map(|(i, &v)| (format!("v{i}"), VertexId::new(v)))
                .collect::<HashMap<_, _>>(),
            edges: es
                .iter()
                .enumerate()
                .map(|(i, &e)| (format!("e{i}"), EdgeId::new(e)))
                .collect::<HashMap<_, _>>(),
        }
    }

    #[test]
    fn anchor_is_min_vertex_home_shard() {
        let r = ShardRouter::new(4);
        // min vertex is 5 -> shard 1, regardless of map order
        assert_eq!(anchor_shard(&binding(&[9, 5, 7], &[2]), &r), 1);
        // no vertices: falls to min edge
        assert_eq!(anchor_shard(&binding(&[], &[6, 3]), &r), 3);
        // nothing bound at all: total, shard 0
        assert_eq!(anchor_shard(&binding(&[], &[]), &r), 0);
    }

    #[test]
    fn scatter_partitions_every_binding_exactly_once() {
        let r = ShardRouter::new(3);
        let bindings: Vec<Binding> = (0..10u64).map(|v| binding(&[v], &[])).collect();
        let parts = scatter_bindings(&bindings, &r);
        let mut seen: Vec<usize> = parts.iter().flat_map(|p| p.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for p in &parts {
            assert!(p.shard < 3);
            for &i in &p.indices {
                assert_eq!(anchor_shard(&bindings[i], &r), p.shard);
            }
        }
    }

    #[test]
    fn single_shard_router_short_circuits() {
        // smoke: the N=1 path delegates to execute_planned (same bytes)
        let hot = hygraph_ts::TimeSeries::generate(
            hygraph_types::Timestamp::ZERO,
            hygraph_types::Duration::from_millis(10),
            10,
            |i| i as f64,
        );
        let built = hygraph_core::HyGraphBuilder::new()
            .univariate("s", &hot)
            .pg_vertex("a", ["User"], hygraph_types::props! {"name" => "a"})
            .ts_vertex("c", ["Card"], "s")
            .pg_edge(None, "a", "c", ["USES"], hygraph_types::props! {})
            .build()
            .unwrap();
        let q =
            crate::parser::parse("MATCH (u:User)-[:USES]->(c:Card) RETURN u.name AS n").unwrap();
        let planned = physical::plan_query(&q).unwrap();
        let single = physical::execute_planned(&built.hygraph, &planned, ExecMode::Sequential);
        let sharded = execute_planned_sharded(
            &built.hygraph,
            &planned,
            ExecMode::Sequential,
            ShardRouter::new(1),
        );
        assert_eq!(single.unwrap(), sharded.unwrap());
    }
}
