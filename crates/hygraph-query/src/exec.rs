//! HyQL execution: pattern compilation, expression evaluation, and
//! result assembly.

use crate::ast::{
    AggFunc, BinOp, EdgeDir, Expr, OrderItem, Query, ReturnItem, RowAggFunc, SeriesRef,
};
use hygraph_core::{ElementRef, HyGraph};
use hygraph_graph::pattern::Binding;
use hygraph_graph::{Direction, Pattern};
use hygraph_ts::store::AggKind;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::{HyGraphError, Interval, Result, Timestamp, Value};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

/// Memoization table for series aggregates within one query execution:
/// `(series, from_ms, to_ms) -> Summary`. Shared across bindings so a
/// window recomputed for every match of the same ts-element is summarised
/// once. Insert races are harmless: the value is a deterministic function
/// of the key, and [`hygraph_ts::store::Summary`] is `Copy`, so every
/// writer stores the identical bits.
pub(crate) type AggCache =
    Mutex<HashMap<(hygraph_types::SeriesId, i64, i64), hygraph_ts::store::Summary>>;

/// One result row (values in column order).
pub type Row = Vec<Value>;

/// A query result: column names plus rows.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All values of one column.
    pub fn column_values(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.column(name)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }

    /// Encodes the result with the workspace binary codecs — column
    /// names, then rows of tagged [`Value`]s. This is the wire form the
    /// serving layer ships to clients.
    pub fn encode(&self, w: &mut hygraph_types::bytes::ByteWriter) {
        w.len_of(self.columns.len());
        for c in &self.columns {
            w.str(c);
        }
        w.len_of(self.rows.len());
        for row in &self.rows {
            w.len_of(row.len());
            for v in row {
                w.value(v);
            }
        }
    }

    /// Decodes a result written by [`QueryResult::encode`]. Input is
    /// untrusted: malformed bytes error, never panic — in particular a
    /// declared element count larger than the bytes remaining is
    /// rejected up front (every element costs at least one byte), so a
    /// hostile frame cannot drive a near-2^64 decode loop.
    pub fn decode(r: &mut hygraph_types::bytes::ByteReader<'_>) -> Result<Self> {
        fn check_count(
            r: &hygraph_types::bytes::ByteReader<'_>,
            n: usize,
            what: &str,
        ) -> Result<()> {
            if n > r.remaining() {
                return Err(HyGraphError::Corrupt {
                    offset: r.position(),
                    message: format!(
                        "declared {what} count {n} exceeds {} bytes remaining",
                        r.remaining()
                    ),
                });
            }
            Ok(())
        }
        let n_cols = r.len_of()?;
        check_count(r, n_cols, "column")?;
        let mut columns = Vec::with_capacity(n_cols.min(1 << 12));
        for _ in 0..n_cols {
            columns.push(r.str()?);
        }
        let n_rows = r.len_of()?;
        check_count(r, n_rows, "row")?;
        let mut rows = Vec::with_capacity(n_rows.min(1 << 16));
        for _ in 0..n_rows {
            let n = r.len_of()?;
            check_count(r, n, "cell")?;
            let mut row = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                row.push(r.value()?);
            }
            rows.push(row);
        }
        Ok(Self { columns, rows })
    }

    /// Renders an aligned text table (for examples and bench binaries).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (w, c) in widths.iter().zip(&self.columns) {
            let _ = write!(out, "{c:<w$}  ");
        }
        out.push('\n');
        for w in &widths {
            let _ = write!(out, "{}  ", "-".repeat(*w));
        }
        out.push('\n');
        for row in &rendered {
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, "{cell:<w$}  ");
            }
            out.push('\n');
        }
        out
    }
}

pub(crate) fn contains_rowagg(expr: &Expr) -> bool {
    match expr {
        Expr::RowAgg { .. } => true,
        Expr::Not(inner) => contains_rowagg(inner),
        Expr::Binary { lhs, rhs, .. } => contains_rowagg(lhs) || contains_rowagg(rhs),
        _ => false,
    }
}

/// Executes a parsed query against an instance through the planner
/// (parse → logical plan → optimize → physical operators). Execution
/// mode is decided from the number of pattern matches.
pub fn execute(hg: &HyGraph, q: &Query) -> Result<QueryResult> {
    execute_mode(hg, q, ExecMode::Auto)
}

/// [`execute`] with an explicit execution mode. Thin wrapper over the
/// planner: lowers the AST to a logical plan, runs the rewrite rules,
/// and executes the physical operators. Bit-identical to
/// [`execute_interpreted_mode`] by construction (see
/// `tests/plan_equivalence.rs`). An `EXPLAIN`-flagged query returns the
/// optimized plan rendering instead of executing.
pub fn execute_mode(hg: &HyGraph, q: &Query, mode: ExecMode) -> Result<QueryResult> {
    let planned = crate::physical::plan_query(q)?;
    if q.explain {
        return Ok(crate::plan::explain_result(&planned));
    }
    crate::physical::execute_planned(hg, &planned, mode)
}

/// Executes a parsed query through the legacy one-pass interpreter —
/// kept as the semantic reference the planner is validated against.
pub fn execute_interpreted(hg: &HyGraph, q: &Query) -> Result<QueryResult> {
    execute_interpreted_mode(hg, q, ExecMode::Auto)
}

/// [`execute_interpreted`] with an explicit execution mode.
///
/// Pattern bindings are materialised up front; per-binding evaluation
/// (WHERE filter + projections, or group keys + aggregate arguments) is
/// a pure function of one binding, so it fans out across threads.
/// Results are re-assembled in binding order, error reporting picks the
/// first failing binding in that order, and grouped execution folds
/// aggregate states sequentially in binding order — so the parallel
/// path returns exactly what the sequential path returns.
pub fn execute_interpreted_mode(hg: &HyGraph, q: &Query, mode: ExecMode) -> Result<QueryResult> {
    if let Some(filter) = &q.filter {
        if contains_rowagg(filter) {
            return Err(HyGraphError::query(
                "row aggregates are not allowed in WHERE; use HAVING",
            ));
        }
    }
    let grouped = q.having.is_some() || q.returns.iter().any(|r| contains_rowagg(&r.expr));
    let patterns = compile_patterns(q, &[])?;
    // one materialised binding list, in pattern-then-match order —
    // identical to the order the streaming visitor would see
    let bindings: Vec<Binding> = patterns
        .iter()
        .flat_map(|p| p.find_all(hg.topology()))
        .collect();
    let columns: Vec<String> = q.returns.iter().map(|r| r.alias.clone()).collect();
    let mut rows = if grouped {
        execute_grouped(hg, q, &bindings, mode)?
    } else {
        execute_flat(hg, q, &bindings, mode)?
    };

    if q.distinct {
        let mut seen: Vec<Row> = Vec::new();
        rows.retain(|r| {
            if seen.iter().any(|s| rows_equal(s, r)) {
                false
            } else {
                seen.push(r.clone());
                true
            }
        });
    }
    sort_rows(&mut rows, &columns, &q.order_by)?;
    if let Some(limit) = q.limit {
        rows.truncate(limit);
    }
    Ok(QueryResult { columns, rows })
}

fn execute_flat(hg: &HyGraph, q: &Query, bindings: &[Binding], mode: ExecMode) -> Result<Vec<Row>> {
    let eval_one = |binding: &Binding| -> Result<Option<Row>> {
        let ctx = EvalCtx {
            hg,
            binding,
            agg_cache: None,
            local_agg: None,
        };
        if let Some(filter) = &q.filter {
            if ctx.eval(filter)?.as_bool() != Some(true) {
                return Ok(None);
            }
        }
        let mut row = Vec::with_capacity(q.returns.len());
        for ReturnItem { expr, .. } in &q.returns {
            row.push(ctx.eval(expr)?);
        }
        Ok(Some(row))
    };
    let evaluated: Vec<Result<Option<Row>>> = if should_parallelize(mode, bindings.len()) {
        bindings.par_iter().map(eval_one).collect()
    } else {
        bindings.iter().map(eval_one).collect()
    };
    // assemble in binding order; the first error in that order wins,
    // matching what streaming evaluation would have reported
    let mut rows = Vec::new();
    for r in evaluated {
        if let Some(row) = r? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Accumulator for one row-aggregate instance within one group.
#[derive(Clone, Debug, Default)]
pub(crate) struct AggState {
    rows: u64,
    non_null: u64,
    sum: f64,
    numeric: u64,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Vec<Value>,
}

impl AggState {
    pub(crate) fn update(&mut self, arg: Option<&Value>, distinct: bool) {
        self.rows += 1;
        let Some(v) = arg else { return };
        if v.is_null() {
            return;
        }
        if distinct {
            if self
                .distinct
                .iter()
                .any(|seen| seen.total_cmp(v) == std::cmp::Ordering::Equal)
            {
                return;
            }
            self.distinct.push(v.clone());
        }
        self.non_null += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
            self.numeric += 1;
        }
        if self.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
            self.max = Some(v.clone());
        }
    }

    pub(crate) fn finalize(&self, func: RowAggFunc, counts_rows: bool) -> Value {
        match func {
            RowAggFunc::Count => Value::Int(if counts_rows {
                self.rows as i64
            } else {
                self.non_null as i64
            }),
            RowAggFunc::Sum => {
                if self.numeric > 0 {
                    Value::Float(self.sum)
                } else {
                    Value::Null
                }
            }
            RowAggFunc::Avg => {
                if self.numeric > 0 {
                    Value::Float(self.sum / self.numeric as f64)
                } else {
                    Value::Null
                }
            }
            RowAggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            RowAggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// One row-aggregate occurrence, collected in deterministic pre-order
/// over the RETURN items then HAVING.
pub(crate) struct RowAggSpec {
    pub(crate) func: RowAggFunc,
    pub(crate) arg: Option<Expr>,
    pub(crate) distinct: bool,
}

pub(crate) fn collect_rowaggs(expr: &Expr, out: &mut Vec<RowAggSpec>) {
    match expr {
        Expr::RowAgg {
            func,
            arg,
            distinct,
        } => out.push(RowAggSpec {
            func: *func,
            arg: arg.as_deref().cloned(),
            distinct: *distinct,
        }),
        Expr::Not(inner) => collect_rowaggs(inner, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_rowaggs(lhs, out);
            collect_rowaggs(rhs, out);
        }
        _ => {}
    }
}

/// Substitutes pre-computed aggregate results (same pre-order as
/// [`collect_rowaggs`]) while evaluating an expression over a group.
pub(crate) fn eval_final(
    ctx: Option<&EvalCtx<'_>>,
    expr: &Expr,
    agg_values: &[Value],
    cursor: &mut usize,
    key_lookup: &dyn Fn(&Expr) -> Option<Value>,
) -> Result<Value> {
    if let Some(v) = key_lookup(expr) {
        // grouping-key sub-expression: already evaluated for the group
        // (also skip any aggregates inside — there are none, by keydef)
        return Ok(v);
    }
    match expr {
        Expr::RowAgg { .. } => {
            let v = agg_values
                .get(*cursor)
                .cloned()
                .ok_or_else(|| HyGraphError::query("aggregate cursor out of range"))?;
            *cursor += 1;
            Ok(v)
        }
        Expr::Not(inner) => {
            let v = eval_final(ctx, inner, agg_values, cursor, key_lookup)?;
            Ok(match v.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_final(ctx, lhs, agg_values, cursor, key_lookup)?;
            let r = eval_final(ctx, rhs, agg_values, cursor, key_lookup)?;
            Ok(apply_binop(*op, &l, &r))
        }
        Expr::Literal(v) => Ok(v.clone()),
        other => match ctx {
            Some(c) => c.eval(other),
            None => Err(HyGraphError::query(format!(
                "expression {other:?} requires a bound row outside aggregation"
            ))),
        },
    }
}

fn execute_grouped(
    hg: &HyGraph,
    q: &Query,
    bindings: &[Binding],
    mode: ExecMode,
) -> Result<Vec<Row>> {
    // grouping keys: the aggregate-free RETURN items
    let key_items: Vec<usize> = q
        .returns
        .iter()
        .enumerate()
        .filter(|(_, r)| !contains_rowagg(&r.expr))
        .map(|(i, _)| i)
        .collect();
    // aggregate specs in deterministic order: RETURN items, then HAVING
    let mut specs: Vec<RowAggSpec> = Vec::new();
    for r in &q.returns {
        collect_rowaggs(&r.expr, &mut specs);
    }
    if let Some(h) = &q.having {
        collect_rowaggs(h, &mut specs);
    }

    // phase 1 (parallelisable): per-binding filter, group key, and
    // aggregate-argument evaluation — independent pure work
    type KeyedArgs = Option<(Row, Vec<Value>)>;
    let eval_one = |binding: &Binding| -> Result<KeyedArgs> {
        let ctx = EvalCtx {
            hg,
            binding,
            agg_cache: None,
            local_agg: None,
        };
        if let Some(filter) = &q.filter {
            if ctx.eval(filter)?.as_bool() != Some(true) {
                return Ok(None);
            }
        }
        let mut key = Vec::with_capacity(key_items.len());
        for &i in &key_items {
            key.push(ctx.eval(&q.returns[i].expr)?);
        }
        let mut args = Vec::with_capacity(specs.len());
        for spec in &specs {
            args.push(match &spec.arg {
                None => Value::Int(1), // COUNT(*)
                Some(arg) => ctx.eval(arg)?,
            });
        }
        Ok(Some((key, args)))
    };
    let evaluated: Vec<Result<KeyedArgs>> = if should_parallelize(mode, bindings.len()) {
        bindings.par_iter().map(eval_one).collect()
    } else {
        bindings.iter().map(eval_one).collect()
    };

    // phase 2 (always sequential, in binding order): fold into groups —
    // group creation order and aggregate update order stay deterministic
    struct Group {
        key: Row,
        states: Vec<AggState>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for r in evaluated {
        let Some((key, args)) = r? else { continue };
        let group = match groups.iter_mut().find(|g| rows_equal(&g.key, &key)) {
            Some(g) => g,
            None => {
                groups.push(Group {
                    key,
                    states: vec![AggState::default(); specs.len()],
                });
                groups.last_mut().expect("just pushed")
            }
        };
        for ((spec, state), arg) in specs.iter().zip(group.states.iter_mut()).zip(args) {
            state.update(Some(&arg), spec.distinct && spec.arg.is_some());
        }
    }
    // Cypher semantics: no grouping keys and no matches -> one empty group
    if groups.is_empty() && key_items.is_empty() {
        groups.push(Group {
            key: Vec::new(),
            states: vec![AggState::default(); specs.len()],
        });
    }

    // finalize each group
    let mut rows = Vec::with_capacity(groups.len());
    for group in &groups {
        let agg_values: Vec<Value> = specs
            .iter()
            .zip(&group.states)
            .map(|(spec, state)| state.finalize(spec.func, spec.arg.is_none()))
            .collect();
        // map each key RETURN item to its pre-computed value
        let key_lookup = |expr: &Expr| -> Option<Value> {
            key_items
                .iter()
                .position(|&i| &q.returns[i].expr == expr)
                .map(|pos| group.key[pos].clone())
        };
        let mut cursor = 0usize;
        let mut row = Vec::with_capacity(q.returns.len());
        let mut keep = true;
        for r in &q.returns {
            row.push(eval_final(
                None,
                &r.expr,
                &agg_values,
                &mut cursor,
                &key_lookup,
            )?);
        }
        if let Some(h) = &q.having {
            let v = eval_final(None, h, &agg_values, &mut cursor, &key_lookup)?;
            keep = v.as_bool() == Some(true);
        }
        if keep {
            rows.push(row);
        }
    }
    Ok(rows)
}

pub(crate) fn rows_equal(a: &Row, b: &Row) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.total_cmp(y) == std::cmp::Ordering::Equal)
}

pub(crate) fn sort_rows(rows: &mut [Row], columns: &[String], order: &[OrderItem]) -> Result<()> {
    if order.is_empty() {
        return Ok(());
    }
    let mut keys = Vec::with_capacity(order.len());
    for item in order {
        let idx = columns
            .iter()
            .position(|c| c == &item.column)
            .ok_or_else(|| {
                HyGraphError::query(format!(
                    "ORDER BY references unknown column '{}'",
                    item.column
                ))
            })?;
        keys.push((idx, item.descending));
    }
    rows.sort_by(|a, b| {
        for &(idx, desc) in &keys {
            let ord = a[idx].total_cmp(&b[idx]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

/// Compiles the MATCH clause. Variable-length edges are expanded at
/// compile time: one [`Pattern`] per combination of hop counts (capped
/// at 64 expansions), each inserting fresh anonymous intermediate
/// vertices. Plain queries compile to a single pattern.
///
/// `pushed` carries WHERE conjuncts the optimizer moved into pattern
/// matching; they are installed as pushed-down predicates (invisible to
/// the matcher's selectivity ordering) on the vertex or edge bound to
/// each predicate's variable. The legacy interpreter passes `&[]`.
pub(crate) fn compile_patterns(
    q: &Query,
    pushed: &[crate::plan::PushedPred],
) -> Result<Vec<Pattern>> {
    // hop-count choices for every var-length edge, in query order
    let ranges: Vec<(usize, usize)> = q
        .patterns
        .iter()
        .flat_map(|p| p.hops.iter().map(|(e, _)| e.hops))
        .filter(|&(lo, hi)| (lo, hi) != (1, 1))
        .collect();
    let total: usize = ranges.iter().map(|&(lo, hi)| hi - lo + 1).product();
    if total > 64 {
        return Err(HyGraphError::query(
            "variable-length expansion exceeds 64 combinations; narrow the hop ranges",
        ));
    }
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new()];
    for &(lo, hi) in &ranges {
        let mut next = Vec::with_capacity(assignments.len() * (hi - lo + 1));
        for a in &assignments {
            for len in lo..=hi {
                let mut b = a.clone();
                b.push(len);
                next.push(b);
            }
        }
        assignments = next;
    }
    assignments
        .into_iter()
        .map(|a| compile_one(q, &a, pushed))
        .collect()
}

/// Builds one pattern with the given hop-length assignment (one entry
/// per var-length edge, in query order).
fn compile_one(
    q: &Query,
    lengths: &[usize],
    pushed: &[crate::plan::PushedPred],
) -> Result<Pattern> {
    let mut pattern = Pattern::new();
    let mut var_index: HashMap<String, usize> = HashMap::new();
    // edge vars in declaration order; only plain (1,1) edges carry a
    // user-visible variable, so duplicates cannot arise here
    let mut edge_vars: Vec<(String, usize)> = Vec::new();
    let mut length_cursor = 0usize;
    let mut anon = 0usize;

    let node_idx = |pattern: &mut Pattern,
                    var_index: &mut HashMap<String, usize>,
                    node: &crate::ast::NodePattern|
     -> usize {
        let idx = match var_index.get(&node.var) {
            Some(&idx) => {
                // labels were fixed when the var was first declared;
                // re-declaring labels for the same var is accepted when
                // they are empty, and inline props still accumulate.
                idx
            }
            None => {
                let idx = pattern.vertex(node.var.clone(), node.labels.iter().map(String::as_str));
                var_index.insert(node.var.clone(), idx);
                idx
            }
        };
        for (key, value) in &node.props {
            pattern.vertex_pred(
                idx,
                hygraph_graph::pattern::PropPredicate::new(
                    key.clone(),
                    hygraph_graph::pattern::CmpOp::Eq,
                    value.clone(),
                ),
            );
        }
        idx
    };

    for path in &q.patterns {
        let mut prev = node_idx(&mut pattern, &mut var_index, &path.start);
        for (edge, node) in &path.hops {
            let next = node_idx(&mut pattern, &mut var_index, node);
            let dir = match edge.dir {
                EdgeDir::Right => Direction::Out,
                EdgeDir::Left => Direction::In,
                EdgeDir::Undirected => Direction::Any,
            };
            let len = if edge.hops == (1, 1) {
                1
            } else {
                let l = lengths[length_cursor];
                length_cursor += 1;
                l
            };
            // chain prev -> i1 -> ... -> next through len sub-edges with
            // fresh anonymous intermediates; edge uniqueness inside one
            // match gives Cypher's distinct-relationship semantics
            let mut hop_src = prev;
            for k in 0..len {
                let hop_dst = if k + 1 == len {
                    next
                } else {
                    anon += 1;
                    pattern.vertex(format!("__vl{anon}"), Vec::<&str>::new())
                };
                let var_name = if len == 1 {
                    edge.var.clone()
                } else {
                    anon += 1;
                    format!("__vle{anon}")
                };
                let eidx = pattern.edge(
                    Some(var_name.as_str()),
                    hop_src,
                    hop_dst,
                    edge.labels.iter().map(String::as_str),
                    dir,
                );
                if len == 1 {
                    edge_vars.push((var_name.clone(), eidx));
                }
                hop_src = hop_dst;
            }
            prev = next;
        }
    }
    if let Some(t) = q.valid_at {
        pattern.valid_at(t);
    }
    for p in pushed {
        // vertex binding wins over an edge of the same name, matching
        // EvalCtx::element's lookup precedence
        if let Some(&idx) = var_index.get(&p.var) {
            pattern.vertex_pushed_pred(idx, p.pred.clone());
        } else if let Some((_, idx)) = edge_vars.iter().find(|(v, _)| v == &p.var) {
            pattern.edge_pushed_pred(*idx, p.pred.clone());
        } else {
            // the optimizer only pushes predicates on pattern-bound
            // vars; an unbound var here is a rule bug, not a user error
            return Err(HyGraphError::query(format!(
                "internal: pushed predicate references unbound variable '{}'",
                p.var
            )));
        }
    }
    Ok(pattern)
}

/// Single-entry intra-binding summary cache: lock-free, lives next to
/// one [`EvalCtx`], catches `MAX(DELTA(c) IN R)` / `SUM(DELTA(c) IN R)`
/// re-evaluating the same `(series, range)` within one row.
pub(crate) type LocalAggCache = std::cell::Cell<
    Option<(
        (hygraph_types::SeriesId, i64, i64),
        hygraph_ts::store::Summary,
    )>,
>;

pub(crate) struct EvalCtx<'a> {
    pub(crate) hg: &'a HyGraph,
    pub(crate) binding: &'a Binding,
    /// Optional shared series-aggregate memoization table (planner path,
    /// fan-out patterns); `None` reproduces the legacy interpreter's
    /// recompute-per-binding behaviour. Cached and uncached evaluation
    /// are bit-identical — the cache stores the `Copy` summary the
    /// kernel would have produced.
    pub(crate) agg_cache: Option<&'a AggCache>,
    /// Optional per-binding single-entry cache (planner path). Checked
    /// before the shared table; costs one compare on miss, no locking.
    pub(crate) local_agg: Option<&'a LocalAggCache>,
}

impl EvalCtx<'_> {
    pub(crate) fn element(&self, var: &str) -> Result<ElementRef> {
        if let Some(&v) = self.binding.vertices.get(var) {
            Ok(ElementRef::Vertex(v))
        } else if let Some(&e) = self.binding.edges.get(var) {
            Ok(ElementRef::Edge(e))
        } else {
            Err(HyGraphError::query(format!("unbound variable '{var}'")))
        }
    }

    pub(crate) fn eval(&self, expr: &Expr) -> Result<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Var(var) => {
                let el = self.element(var)?;
                Ok(match el {
                    ElementRef::Vertex(v) => Value::Str(v.to_string()),
                    ElementRef::Edge(e) => Value::Str(e.to_string()),
                    ElementRef::Subgraph(s) => Value::Str(s.to_string()),
                })
            }
            Expr::Prop { var, key } => {
                let el = self.element(var)?;
                // ts-elements have no φ: a static-property read on them is Null
                match self.hg.props(el) {
                    Ok(props) => Ok(props.static_value(key).cloned().unwrap_or(Value::Null)),
                    Err(HyGraphError::KindMismatch { .. }) => Ok(Value::Null),
                    Err(e) => Err(e),
                }
            }
            Expr::Agg {
                func,
                series,
                from,
                to,
            } => self.eval_agg(*func, series, *from, *to),
            Expr::RowAgg { .. } => Err(HyGraphError::query(
                "row aggregate in a per-row context (nest it only in RETURN/HAVING)",
            )),
            Expr::Not(inner) => {
                let v = self.eval(inner)?;
                Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                Ok(apply_binop(*op, &l, &r))
            }
        }
    }

    fn eval_agg(&self, func: AggFunc, series: &SeriesRef, from: i64, to: i64) -> Result<Value> {
        if from > to {
            return Err(HyGraphError::query(format!(
                "aggregate range [{from}, {to}) is reversed"
            )));
        }
        let sid = match series {
            SeriesRef::Delta(var) => {
                let el = self.element(var)?;
                self.hg.delta_id(el)?
            }
            SeriesRef::Property { var, key } => {
                let el = self.element(var)?;
                match self.hg.props(el) {
                    Ok(props) => match props.series_value(key) {
                        Some(sid) => sid,
                        None => return Ok(Value::Null),
                    },
                    Err(HyGraphError::KindMismatch { .. }) => return Ok(Value::Null),
                    Err(e) => return Err(e),
                }
            }
        };
        let iv = Interval::new(Timestamp::from_millis(from), Timestamp::from_millis(to));
        let key = (sid, from, to);
        // shared kernel: per-chunk precomputed block summaries make this
        // O(blocks touched) instead of O(points); `None` only for a
        // series with zero value columns, which the old slice-then-
        // column(0) path also mapped to Null
        let local_hit = self
            .local_agg
            .and_then(|cell| cell.get())
            .filter(|&(k, _)| k == key)
            .map(|(_, s)| s);
        let cached = local_hit.or_else(|| {
            self.agg_cache
                .and_then(|c| c.lock().ok())
                .and_then(|c| c.get(&key).copied())
        });
        let summary = match cached {
            Some(s) => Some(s),
            None => {
                let ms = self.hg.series(sid)?;
                let s = ms.summarize(&iv, 0);
                if let (Some(s), Some(cache)) = (s, self.agg_cache) {
                    if let Ok(mut c) = cache.lock() {
                        c.insert(key, s);
                    }
                }
                s
            }
        };
        if let (Some(cell), Some(s)) = (self.local_agg, summary) {
            cell.set(Some((key, s)));
        }
        let Some(summary) = summary else {
            return Ok(Value::Null);
        };
        let kind = match func {
            AggFunc::Mean => AggKind::Mean,
            AggFunc::Sum => AggKind::Sum,
            AggFunc::Min => AggKind::Min,
            AggFunc::Max => AggKind::Max,
            AggFunc::Count => AggKind::Count,
        };
        Ok(match summary.get(kind) {
            Some(x) if func == AggFunc::Count => Value::Int(x as i64),
            Some(x) => Value::Float(x),
            None => Value::Null,
        })
    }
}

pub(crate) fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    use std::cmp::Ordering;
    match op {
        BinOp::And => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Value::Bool(a && b),
            // false AND anything = false (SQL three-valued logic)
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        BinOp::Or => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Value::Bool(a || b),
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Eq => match l.sql_eq(r) {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        },
        BinOp::Ne => match l.sql_eq(r) {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if l.is_null() || r.is_null() {
                return Value::Null;
            }
            let ord = l.total_cmp(r);
            Value::Bool(match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            })
        }
        BinOp::Add => l.add(r).unwrap_or(Value::Null),
        BinOp::Sub => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                a.checked_sub(*b).map(Value::Int).unwrap_or(Value::Null)
            }
            _ => match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => Value::Float(a - b),
                _ => Value::Null,
            },
        },
        BinOp::Mul => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                a.checked_mul(*b).map(Value::Int).unwrap_or(Value::Null)
            }
            _ => match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => Value::Float(a * b),
                _ => Value::Null,
            },
        },
        BinOp::Div => match (l.as_f64(), r.as_f64()) {
            (Some(_), Some(0.0)) => Value::Null,
            (Some(a), Some(b)) => Value::Float(a / b),
            _ => Value::Null,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use hygraph_core::HyGraphBuilder;
    use hygraph_ts::TimeSeries;
    use hygraph_types::{props, Duration};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Small fraud-shaped instance: 2 users, 2 cards (ts), 2 merchants,
    /// USES + TX edges with amounts.
    fn instance() -> hygraph_core::builder::BuiltHyGraph {
        let spend_hot = TimeSeries::generate(ts(0), Duration::from_millis(10), 100, |i| {
            if i >= 50 {
                900.0
            } else {
                10.0
            }
        });
        let spend_cold = TimeSeries::generate(ts(0), Duration::from_millis(10), 100, |_| 12.0);
        HyGraphBuilder::new()
            .univariate("hot", &spend_hot)
            .univariate("cold", &spend_cold)
            .pg_vertex(
                "alice",
                ["User"],
                props! {"name" => "alice", "age" => 34i64},
            )
            .pg_vertex("bob", ["User"], props! {"name" => "bob", "age" => 19i64})
            .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
            .pg_vertex("m2", ["Merchant"], props! {"name" => "m2"})
            .ts_vertex("c1", ["CreditCard"], "hot")
            .ts_vertex("c2", ["CreditCard"], "cold")
            .pg_edge(None, "alice", "c1", ["USES"], props! {})
            .pg_edge(None, "bob", "c2", ["USES"], props! {})
            .pg_edge(Some("t1"), "c1", "m1", ["TX"], props! {"amount" => 1500.0})
            .pg_edge(Some("t2"), "c1", "m2", ["TX"], props! {"amount" => 30.0})
            .pg_edge(Some("t3"), "c2", "m1", ["TX"], props! {"amount" => 20.0})
            .build()
            .unwrap()
    }

    #[test]
    fn query_result_wire_roundtrip() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
             RETURN u.name AS who, t.amount AS amount, \
             MEAN(DELTA(c) IN [0, 1000)) AS spend ORDER BY who, amount",
        )
        .unwrap();
        let mut w = hygraph_types::bytes::ByteWriter::new();
        r.encode(&mut w);
        let bytes = w.into_bytes();
        let mut rd = hygraph_types::bytes::ByteReader::new(&bytes);
        let back = QueryResult::decode(&mut rd).unwrap();
        rd.expect_exhausted().unwrap();
        assert_eq!(back, r);
        // re-encoding is byte-identical (the serving layer's contract)
        let mut w2 = hygraph_types::bytes::ByteWriter::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // malformed input errors instead of panicking
        assert!(QueryResult::decode(&mut hygraph_types::bytes::ByteReader::new(&[0x80])).is_err());
    }

    /// Regression: a frame whose *declared* counts vastly exceed the
    /// bytes actually present must be rejected up front with a typed
    /// `Corrupt` error — not drive a near-2^64 allocation/decode loop.
    #[test]
    fn decode_rejects_hostile_declared_counts() {
        use hygraph_types::bytes::{ByteReader, ByteWriter};
        use hygraph_types::HyGraphError;

        // absurd count (u64::MAX): rejected by the reader's own varint
        // length guard before any loop runs
        let mut w = ByteWriter::new();
        w.len_of(u64::MAX as usize);
        let bytes = w.into_bytes();
        let err = QueryResult::decode(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(
            matches!(err, HyGraphError::Corrupt { .. }),
            "expected typed Corrupt error, got {err:?}"
        );

        // sneaky count: small enough to slip past the reader's loose
        // varint bound (remaining*8+64) but still exceeding the bytes
        // present — the decode-level guard must name the hostile field.
        // 64 declared columns, zero payload bytes behind them:
        let mut w = ByteWriter::new();
        w.len_of(64);
        let bytes = w.into_bytes();
        let err = QueryResult::decode(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, HyGraphError::Corrupt { .. }));
        assert!(
            err.to_string().contains("column count"),
            "error should name the hostile field: {err}"
        );

        // valid header, hostile row count
        let mut w = ByteWriter::new();
        w.len_of(1); // one column
        w.str("a");
        w.len_of(64); // declared rows, zero bytes behind them
        let bytes = w.into_bytes();
        let err = QueryResult::decode(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, HyGraphError::Corrupt { .. }));
        assert!(err.to_string().contains("row count"), "{err}");

        // valid header + one row, hostile per-row cell count
        let mut w = ByteWriter::new();
        w.len_of(1);
        w.str("a");
        w.len_of(1); // one row…
        w.len_of(64); // …claiming 64 cells with nothing behind them
        let bytes = w.into_bytes();
        let err = QueryResult::decode(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, HyGraphError::Corrupt { .. }));
        assert!(err.to_string().contains("cell count"), "{err}");
    }

    #[test]
    fn simple_match_return() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (u:User) RETURN u.name AS name ORDER BY name",
        )
        .unwrap();
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Str("alice".into())],
                vec![Value::Str("bob".into())]
            ]
        );
    }

    #[test]
    fn where_filters_on_edge_props() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
             WHERE t.amount > 1000 RETURN u.name AS who, t.amount AS amt",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Str("alice".into()));
        assert_eq!(r.rows[0][1], Value::Float(1500.0));
    }

    #[test]
    fn series_aggregate_in_where() {
        let b = instance();
        // hot card averages >400 over the full window; cold stays ~12
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard) \
             WHERE MEAN(DELTA(c) IN [0, 1000)) > 400 RETURN u.name AS who",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Str("alice".into()));
    }

    #[test]
    fn series_aggregate_in_return() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard) \
             RETURN u.name AS who, MAX(DELTA(c) IN [0, 1000)) AS peak, \
             COUNT(DELTA(c) IN [0, 250)) AS n ORDER BY who",
        )
        .unwrap();
        assert_eq!(
            r.rows[0],
            vec![
                Value::Str("alice".into()),
                Value::Float(900.0),
                Value::Int(25)
            ]
        );
        assert_eq!(r.rows[1][1], Value::Float(12.0));
    }

    #[test]
    fn distinct_and_limit() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (c:CreditCard)-[t:TX]->(m:Merchant) RETURN DISTINCT m.name AS m ORDER BY m",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let r = query(
            &b.hygraph,
            "MATCH (c:CreditCard)-[t:TX]->(m:Merchant) RETURN m.name AS m ORDER BY m LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn order_by_desc_numeric() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (c:CreditCard)-[t:TX]->(m) RETURN t.amount AS a ORDER BY a DESC",
        )
        .unwrap();
        let amounts: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
        assert_eq!(amounts, vec![1500.0, 30.0, 20.0]);
    }

    #[test]
    fn missing_property_is_null() {
        let b = instance();
        let r = query(&b.hygraph, "MATCH (u:User) RETURN u.ghost AS g LIMIT 1").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
        // Null comparisons filter out
        let r = query(&b.hygraph, "MATCH (u:User) WHERE u.ghost > 1 RETURN u").unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn ts_vertex_props_are_null() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (c:CreditCard) RETURN c.anything AS x LIMIT 1",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn arithmetic_in_projection() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (u:User) WHERE u.name = 'alice' RETURN u.age * 2 + 1 AS x, u.age / 0 AS z",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(69));
        assert_eq!(r.rows[0][1], Value::Null, "division by zero is null");
    }

    #[test]
    fn shared_variable_across_patterns() {
        let b = instance();
        // (u)-USES->(c), (c)-TX->(m1 named m1): join through c
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard), (c)-[t:TX]->(m:Merchant) \
             WHERE m.name = 'm1' RETURN u.name AS who ORDER BY who",
        )
        .unwrap();
        let whos: Vec<&Value> = r.column_values("who").unwrap();
        assert_eq!(whos.len(), 2, "both users transact with m1");
    }

    #[test]
    fn unknown_order_column_errors() {
        let b = instance();
        let err = query(&b.hygraph, "MATCH (u:User) RETURN u.name AS n ORDER BY zzz").unwrap_err();
        assert!(matches!(err, HyGraphError::Query(_)));
    }

    #[test]
    fn reversed_agg_range_errors() {
        let b = instance();
        let err = query(
            &b.hygraph,
            "MATCH (c:CreditCard) WHERE MEAN(DELTA(c) IN [100, 0)) > 1 RETURN c",
        )
        .unwrap_err();
        assert!(matches!(err, HyGraphError::Query(_)));
    }

    #[test]
    fn render_table_output() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (u:User) RETURN u.name AS name ORDER BY name",
        )
        .unwrap();
        let text = r.render();
        assert!(text.contains("name"));
        assert!(text.contains("alice"));
        assert!(text.contains("bob"));
    }

    #[test]
    fn inline_node_props_filter() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (u:User {name: 'alice'})-[:USES]->(c:CreditCard) RETURN u.age AS age",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(34));
        // no match for unknown value
        let r = query(&b.hygraph, "MATCH (u:User {name: 'zed'}) RETURN u").unwrap();
        assert!(r.is_empty());
        // numeric inline prop
        let r = query(&b.hygraph, "MATCH (u:User {age: 19}) RETURN u.name AS n").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("bob".into()));
    }

    #[test]
    fn row_count_with_implicit_grouping() {
        let b = instance();
        // per-user transaction counts through their cards
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
             RETURN u.name AS who, COUNT(t) AS n ORDER BY who",
        )
        .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Str("alice".into()), Value::Int(2)],
                vec![Value::Str("bob".into()), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn count_star_no_keys_single_group() {
        let b = instance();
        let r = query(&b.hygraph, "MATCH (u:User) RETURN COUNT(*) AS n").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
        // zero matches still yields one row with count 0
        let r = query(&b.hygraph, "MATCH (u:Ghost) RETURN COUNT(*) AS n").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn row_sum_avg_min_max() {
        let b = instance();
        let r = query(
            &b.hygraph,
            "MATCH (c:CreditCard)-[t:TX]->(m) \
             RETURN SUM(t.amount) AS s, AVG(t.amount) AS a, MIN(t.amount) AS lo, MAX(t.amount) AS hi",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Float(1550.0));
        let avg = r.rows[0][1].as_f64().unwrap();
        assert!((avg - 1550.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.rows[0][2], Value::Float(20.0));
        assert_eq!(r.rows[0][3], Value::Float(1500.0));
    }

    #[test]
    fn count_distinct() {
        let b = instance();
        // alice's card hits 2 distinct merchants; 3 TX rows total
        let r = query(
            &b.hygraph,
            "MATCH (c:CreditCard)-[t:TX]->(m:Merchant) \
             RETURN COUNT(m.name) AS all_rows, COUNT(DISTINCT m.name) AS uniq",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert_eq!(r.rows[0][1], Value::Int(2));
    }

    #[test]
    fn having_filters_groups() {
        let b = instance();
        // Listing-1 style: users with more than one transaction
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
             RETURN u.name AS who, COUNT(t) AS n HAVING COUNT(t) > 1 ORDER BY who",
        )
        .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Str("alice".into()), Value::Int(2)]]
        );
    }

    #[test]
    fn rowagg_in_arithmetic() {
        let b = instance();
        let r = query(&b.hygraph, "MATCH (u:User) RETURN COUNT(*) * 10 + 1 AS x").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(21));
    }

    #[test]
    fn rowagg_rejected_in_where() {
        let b = instance();
        let err = query(&b.hygraph, "MATCH (u:User) WHERE COUNT(*) > 1 RETURN u").unwrap_err();
        assert!(matches!(err, HyGraphError::Query(_)), "{err:?}");
    }

    #[test]
    fn series_and_row_aggregates_coexist() {
        let b = instance();
        // MEAN(DELTA(..) IN [..)) is a series aggregate (per row);
        // AVG over it is a row aggregate across the group
        let r = query(
            &b.hygraph,
            "MATCH (u:User)-[:USES]->(c:CreditCard) \
             RETURN AVG(MEAN(DELTA(c) IN [0, 1000)) ) AS fleet_mean",
        )
        .unwrap();
        let fleet = r.rows[0][0].as_f64().unwrap();
        // hot card mean 455, cold card mean 12 -> fleet 233.5
        assert!((fleet - (455.0 + 12.0) / 2.0).abs() < 1e-9, "got {fleet}");
    }

    #[test]
    fn variable_length_paths() {
        // chain: alice -USES-> c1 -TX-> m1, plus c1 -TX-> m2
        let b = instance();
        // 1..2 hops from a user: reaches its card (1 hop) and the card's
        // merchants (2 hops)
        let r = query(
            &b.hygraph,
            "MATCH (u:User {name: 'alice'})-[*1..2]->(x) RETURN DISTINCT x ORDER BY x",
        )
        .unwrap();
        assert_eq!(r.len(), 3, "card + two merchants, got {:?}", r.rows);
        // exactly 2 hops: merchants only
        let r = query(
            &b.hygraph,
            "MATCH (u:User {name: 'alice'})-[*2..2]->(m:Merchant) RETURN m.name AS n ORDER BY n",
        )
        .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Str("m1".into())], vec![Value::Str("m2".into())]]
        );
        // labelled var-length: only TX edges, starting from the card
        let r = query(
            &b.hygraph,
            "MATCH (c:CreditCard)-[:TX*1..3]->(m) RETURN COUNT(*) AS n",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3), "three TX edges, no TX chains");
    }

    #[test]
    fn variable_length_parse_errors() {
        let b = instance();
        for bad in [
            "MATCH (a)-[t:TX*1..2]->(b) RETURN a", // bound var on var-length
            "MATCH (a)-[:TX*0..2]->(b) RETURN a",  // min < 1
            "MATCH (a)-[:TX*3..2]->(b) RETURN a",  // reversed
            "MATCH (a)-[:TX*1..9]->(b) RETURN a",  // cap exceeded
        ] {
            assert!(query(&b.hygraph, bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(
            apply_binop(BinOp::And, &Value::Bool(false), &Value::Null),
            Value::Bool(false)
        );
        assert_eq!(
            apply_binop(BinOp::Or, &Value::Null, &Value::Bool(true)),
            Value::Bool(true)
        );
        assert_eq!(
            apply_binop(BinOp::And, &Value::Null, &Value::Bool(true)),
            Value::Null
        );
        assert_eq!(
            apply_binop(BinOp::Eq, &Value::Null, &Value::Int(1)),
            Value::Null
        );
    }
}
