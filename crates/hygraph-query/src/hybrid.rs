//! The roadmap's four hybrid operators (paper §6, "Querying HyGraph").
//!
//! * **Q1 [`hybrid_match`]** — "matches specific temporal patterns with
//!   corresponding structural patterns": a structural [`Pattern`] plus a
//!   subsequence-shape constraint on the series of one bound variable.
//! * **Q2 [`hybrid_aggregate`]** — "summarises and aggregates graph
//!   elements and adjusts the frequency of associated time series":
//!   label-grouping of the topology with per-group downsampled series.
//! * **Q3 [`correlation_reachability`]** — "measures the correlation
//!   between time-series data of vertices to enhance reachability":
//!   reachability where an edge is traversable only when its endpoint
//!   series correlate above a threshold.
//! * **Q4 [`segmentation_snapshots`]** — "creates graph snapshots at
//!   significant time intervals identified through time series
//!   segmentation": PELT changepoints on a driver series become snapshot
//!   instants.

use hygraph_core::{ElementKind, ElementRef, HyGraph};
use hygraph_graph::pattern::Binding;
use hygraph_graph::{snapshot, Pattern, TemporalGraph};
use hygraph_metrics::{OpClass, OpTimer};
use hygraph_ts::ops::{correlate, downsample, segment, subsequence};
use hygraph_ts::TimeSeries;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::{Duration, Result, SeriesId, Timestamp, VertexId};
use rayon::prelude::*;
use std::collections::HashMap;

/// The first univariate series associated with a vertex: δ for a
/// ts-vertex, else the first series-valued property of a pg-vertex.
pub fn vertex_series(hg: &HyGraph, v: VertexId) -> Option<TimeSeries> {
    let sid = vertex_series_id(hg, v)?;
    let ms = hg.series(sid).ok()?;
    let name = ms.names().first()?.clone();
    ms.to_univariate(&name)
}

/// The series id associated with a vertex (see [`vertex_series`]).
pub fn vertex_series_id(hg: &HyGraph, v: VertexId) -> Option<SeriesId> {
    match hg.vertex_kind(v).ok()? {
        ElementKind::Ts => hg.delta_id(ElementRef::Vertex(v)).ok(),
        ElementKind::Pg => {
            let props = hg.props(ElementRef::Vertex(v)).ok()?;
            props.series_entries().next().map(|(_, sid)| sid)
        }
    }
}

/// A hybrid structural + temporal pattern (operator Q1).
pub struct HybridMatchSpec {
    /// The structural pattern.
    pub pattern: Pattern,
    /// The bound vertex variable whose series must contain the shape.
    pub series_var: String,
    /// The temporal shape to find (z-normalised matching).
    pub shape: Vec<f64>,
    /// Maximum z-normalised Euclidean distance for a shape hit.
    pub max_dist: f64,
}

/// One hybrid match: the structural binding plus the best temporal hit.
pub struct HybridMatch {
    /// Structural variable bindings.
    pub binding: Binding,
    /// Offset/time/distance of the best shape occurrence.
    pub shape_match: subsequence::Match,
}

/// Operator Q1: structural matches whose `series_var` series contains
/// the spec's temporal shape.
pub fn hybrid_match(hg: &HyGraph, spec: &HybridMatchSpec) -> Vec<HybridMatch> {
    hybrid_match_mode(hg, spec, ExecMode::Auto)
}

/// [`hybrid_match`] with an explicit execution mode. The per-binding
/// shape search is pure, so bindings fan out across threads; results
/// keep the pattern's enumeration order either way.
pub fn hybrid_match_mode(hg: &HyGraph, spec: &HybridMatchSpec, mode: ExecMode) -> Vec<HybridMatch> {
    let _t = OpTimer::new(OpClass::Q1Match);
    let bindings = spec.pattern.find_all(hg.topology());
    let eval_one = |binding: &Binding| -> Option<HybridMatch> {
        let &v = binding.vertices.get(&spec.series_var)?;
        let series = vertex_series(hg, v)?;
        let m = subsequence::best_match(&series, &spec.shape)?;
        (m.distance <= spec.max_dist).then(|| HybridMatch {
            binding: binding.clone(),
            shape_match: m,
        })
    };
    let hits: Vec<Option<HybridMatch>> = if should_parallelize(mode, bindings.len()) {
        bindings.par_iter().map(eval_one).collect()
    } else {
        bindings.iter().map(eval_one).collect()
    };
    hits.into_iter().flatten().collect()
}

/// Result of operator Q2: the label-grouped summary graph plus one
/// downsampled aggregate series per group.
pub struct HybridAggregate {
    /// The structural grouping (super-vertices/super-edges).
    pub grouped: hygraph_graph::aggregate::GroupedGraph,
    /// Per group key: the mean of member series, downsampled to `bucket`.
    pub group_series: HashMap<String, TimeSeries>,
}

/// Operator Q2: groups vertices by label and produces one
/// `bucket`-granularity mean series per group, averaging over every
/// member's associated series.
pub fn hybrid_aggregate(hg: &HyGraph, bucket: Duration) -> HybridAggregate {
    hybrid_aggregate_mode(hg, bucket, ExecMode::Auto)
}

/// [`hybrid_aggregate`] with an explicit execution mode. Per-vertex
/// series resolution and downsampling fan out; the accumulation into
/// label groups stays sequential in vertex-id order, so the float sums
/// are combined in exactly the same order as the sequential path.
pub fn hybrid_aggregate_mode(hg: &HyGraph, bucket: Duration, mode: ExecMode) -> HybridAggregate {
    let _t = OpTimer::new(OpClass::Q2Aggregate);
    let g = hg.topology();
    let grouped =
        hygraph_graph::aggregate::group_by(g, hygraph_graph::aggregate::GroupBy::Labels, &[]);
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let down_one = |&v: &VertexId| -> Option<(VertexId, TimeSeries)> {
        let series = vertex_series(hg, v)?;
        Some((v, downsample::bucket_mean(&series, bucket)))
    };
    let downs: Vec<Option<(VertexId, TimeSeries)>> = if should_parallelize(mode, ids.len()) {
        ids.par_iter().map(down_one).collect()
    } else {
        ids.iter().map(down_one).collect()
    };
    let mut acc: HashMap<String, (TimeSeries, TimeSeries)> = HashMap::new(); // (sum, count)
    for item in downs {
        let Some((v, down)) = item else {
            continue;
        };
        let Some(&group_v) = grouped.membership.get(&v) else {
            continue;
        };
        let key = grouped.group_keys[&group_v].clone();
        let entry = acc
            .entry(key)
            .or_insert_with(|| (TimeSeries::new(), TimeSeries::new()));
        for (t, x) in down.iter() {
            let cur = entry.0.value_at(t).unwrap_or(0.0);
            entry.0.upsert(t, cur + x);
            let n = entry.1.value_at(t).unwrap_or(0.0);
            entry.1.upsert(t, n + 1.0);
        }
    }
    let group_series = acc
        .into_iter()
        .map(|(k, (sum, count))| {
            let mean = TimeSeries::from_pairs(
                sum.iter()
                    .zip(count.iter())
                    .map(|((t, s), (_, n))| (t, s / n)),
            );
            (k, mean)
        })
        .collect();
    HybridAggregate {
        grouped,
        group_series,
    }
}

/// Operator Q3: vertices reachable from `from` through edges whose
/// endpoint series correlate at least `min_corr` (Pearson after linear
/// alignment to `step`). Returns `(vertex, correlation-with-predecessor)`
/// pairs; the start maps to correlation 1.
pub fn correlation_reachability(
    hg: &HyGraph,
    from: VertexId,
    step: Duration,
    min_corr: f64,
) -> Vec<(VertexId, f64)> {
    correlation_reachability_mode(hg, from, step, min_corr, ExecMode::Auto)
}

/// [`correlation_reachability`] with an explicit execution mode.
///
/// The traversal is level-synchronous BFS: each wave's candidate edges
/// are scored (series resolution + Pearson) in parallel, then admitted
/// sequentially in (frontier-order, neighbor-order) — the exact visit
/// order of the sequential FIFO queue, so a vertex reachable through
/// several same-level predecessors records the same first-predecessor
/// correlation in both modes.
pub fn correlation_reachability_mode(
    hg: &HyGraph,
    from: VertexId,
    step: Duration,
    min_corr: f64,
    mode: ExecMode,
) -> Vec<(VertexId, f64)> {
    let _t = OpTimer::new(OpClass::Q3Traverse);
    let g = hg.topology();
    let mut out: Vec<(VertexId, f64)> = Vec::new();
    let Some(start_series) = vertex_series(hg, from) else {
        return out;
    };
    let mut seen: HashMap<VertexId, f64> = HashMap::new();
    seen.insert(from, 1.0);
    out.push((from, 1.0));
    let mut frontier: Vec<(VertexId, TimeSeries)> = vec![(from, start_series)];
    while !frontier.is_empty() {
        // candidate edges out of this wave, in FIFO visit order; vertices
        // already admitted before the wave are pruned up front (scoring
        // them would be wasted work), intra-wave duplicates are resolved
        // by the sequential admission pass below
        let candidates: Vec<(usize, VertexId)> = frontier
            .iter()
            .enumerate()
            .flat_map(|(i, (v, _))| {
                g.neighbors(*v)
                    .filter(|(_, n)| !seen.contains_key(n))
                    .map(move |(_, n)| (i, n))
            })
            .collect();
        let score_one = |&(i, n): &(usize, VertexId)| -> Option<(f64, TimeSeries)> {
            let n_series = vertex_series(hg, n)?;
            let r = correlate::series_correlation(&frontier[i].1, &n_series, step)?;
            Some((r, n_series))
        };
        let scored: Vec<Option<(f64, TimeSeries)>> = if should_parallelize(mode, candidates.len()) {
            candidates.par_iter().map(score_one).collect()
        } else {
            candidates.iter().map(score_one).collect()
        };
        let mut next: Vec<(VertexId, TimeSeries)> = Vec::new();
        for (&(_, n), hit) in candidates.iter().zip(scored) {
            let Some((r, n_series)) = hit else {
                continue;
            };
            if r >= min_corr && !seen.contains_key(&n) {
                seen.insert(n, r);
                out.push((n, r));
                next.push((n, n_series));
            }
        }
        frontier = next;
    }
    out.sort_by_key(|&(v, _)| v);
    out
}

/// Operator Q4: segments `driver` (PELT, optional penalty override) and
/// snapshots the topology at each segment boundary. Returns
/// `(boundary, snapshot)` pairs.
pub fn segmentation_snapshots(
    hg: &HyGraph,
    driver: &TimeSeries,
    penalty: Option<f64>,
) -> Result<Vec<(Timestamp, TemporalGraph)>> {
    let _t = OpTimer::new(OpClass::Q4Snapshot);
    let segments = segment::pelt(driver, penalty);
    let boundaries = segment::boundaries(&segments);
    Ok(boundaries
        .into_iter()
        .map(|t| (t, snapshot::snapshot(hg.topology(), t)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_graph::Direction;
    use hygraph_types::{props, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn bump_series(offset: usize) -> TimeSeries {
        TimeSeries::generate(ts(0), Duration::from_millis(1), 200, move |i| {
            let x = i as f64 - offset as f64;
            (-(x * x) / 50.0).exp() * 10.0
        })
    }

    #[test]
    fn q1_hybrid_match_filters_by_shape() {
        let mut hg = HyGraph::new();
        let bumped = hg.add_univariate_series("a", &bump_series(100));
        let flat = hg.add_univariate_series(
            "b",
            &TimeSeries::generate(ts(0), Duration::from_millis(1), 200, |i| {
                // structured non-repeating signal with no bump
                ((i as f64) * 0.7).sin() + (i as f64) * 0.05
            }),
        );
        let owner1 = hg.add_pg_vertex(["User"], props! {});
        let owner2 = hg.add_pg_vertex(["User"], props! {});
        let c1 = hg.add_ts_vertex(["Card"], bumped).unwrap();
        let c2 = hg.add_ts_vertex(["Card"], flat).unwrap();
        hg.add_pg_edge(owner1, c1, ["USES"], props! {}).unwrap();
        hg.add_pg_edge(owner2, c2, ["USES"], props! {}).unwrap();

        let mut pattern = Pattern::new();
        let u = pattern.vertex("u", ["User"]);
        let c = pattern.vertex("c", ["Card"]);
        pattern.edge(None, u, c, ["USES"], Direction::Out);
        // the query shape: a gaussian bump
        let shape: Vec<f64> = (0..40)
            .map(|i| {
                let x = i as f64 - 20.0;
                (-(x * x) / 50.0).exp()
            })
            .collect();
        let spec = HybridMatchSpec {
            pattern,
            series_var: "c".into(),
            shape,
            max_dist: 1.0,
        };
        let matches = hybrid_match(&hg, &spec);
        assert_eq!(matches.len(), 1, "only the bumped card matches the shape");
        assert_eq!(matches[0].binding.vertices["c"], c1);
        assert!((60..=120).contains(&matches[0].shape_match.offset));
    }

    #[test]
    fn q2_hybrid_aggregate_groups_and_downsamples() {
        let mut hg = HyGraph::new();
        for i in 0..4 {
            let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 100, move |k| {
                (i + 1) as f64 * 10.0 + k as f64 * 0.0
            });
            let sid = hg.add_univariate_series("load", &s);
            let label = if i < 2 { "Hot" } else { "Cold" };
            hg.add_ts_vertex([label], sid).unwrap();
        }
        let agg = hybrid_aggregate(&hg, Duration::from_millis(100));
        assert_eq!(agg.grouped.summary.vertex_count(), 2);
        let hot = &agg.group_series["Hot"];
        let cold = &agg.group_series["Cold"];
        // Hot members have constant 10, 20 -> mean 15; Cold 30, 40 -> 35
        assert!(hot.values().iter().all(|&v| (v - 15.0).abs() < 1e-9));
        assert!(cold.values().iter().all(|&v| (v - 35.0).abs() < 1e-9));
        assert_eq!(hot.len(), 10, "downsampled 100 points / bucket 10");
    }

    #[test]
    fn q3_correlation_reachability_blocks_uncorrelated() {
        let mut hg = HyGraph::new();
        let base = |i: usize| ((i as f64) * 0.2).sin() * 5.0;
        let s1 = TimeSeries::generate(ts(0), Duration::from_millis(10), 200, base);
        let s2 = TimeSeries::generate(ts(0), Duration::from_millis(10), 200, |i| base(i) * 3.0);
        let anti = TimeSeries::generate(ts(0), Duration::from_millis(10), 200, |i| -base(i));
        let sid_a = hg.add_univariate_series("a", &s1);
        let sid_b = hg.add_univariate_series("b", &s2);
        let sid_c = hg.add_univariate_series("c", &anti);
        let a = hg.add_ts_vertex(["S"], sid_a).unwrap();
        let b = hg.add_ts_vertex(["S"], sid_b).unwrap();
        let c = hg.add_ts_vertex(["S"], sid_c).unwrap();
        hg.add_pg_edge(a, b, ["E"], props! {}).unwrap();
        hg.add_pg_edge(b, c, ["E"], props! {}).unwrap();
        let reach = correlation_reachability(&hg, a, Duration::from_millis(10), 0.8);
        let ids: Vec<VertexId> = reach.iter().map(|&(v, _)| v).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
        assert!(!ids.contains(&c), "anti-correlated vertex unreachable");
        // with a permissive threshold everything connects
        let reach = correlation_reachability(&hg, a, Duration::from_millis(10), -1.0);
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn q3_start_without_series_is_empty() {
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["X"], props! {});
        assert!(correlation_reachability(&hg, a, Duration::from_millis(1), 0.5).is_empty());
    }

    #[test]
    fn q4_segmentation_snapshots_track_regimes() {
        let mut hg = HyGraph::new();
        // vertex alive only in the middle regime
        let a = hg.add_pg_vertex(["N"], props! {});
        let b = hg.add_pg_vertex_valid(["N"], props! {}, Interval::new(ts(30), ts(60)));
        let _ = (a, b);
        // driver series with mean shifts at t=30 and t=60
        let driver = TimeSeries::generate(ts(0), Duration::from_millis(1), 90, |i| {
            if i < 30 {
                0.0
            } else if i < 60 {
                10.0
            } else {
                -5.0
            }
        });
        let snaps = segmentation_snapshots(&hg, &driver, Some(5.0)).unwrap();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].0, ts(0));
        assert_eq!(snaps[1].0, ts(30));
        assert_eq!(snaps[2].0, ts(60));
        assert_eq!(snaps[0].1.vertex_count(), 1, "b not yet alive");
        assert_eq!(snaps[1].1.vertex_count(), 2, "b alive in the middle regime");
        assert_eq!(snaps[2].1.vertex_count(), 1, "b gone again");
    }

    /// Tentpole invariant: every hybrid operator's parallel path is
    /// bit-identical to its sequential path on a graph large enough to
    /// exercise real fan-out (multi-binding patterns, multi-wave BFS
    /// with same-level shared successors).
    #[test]
    fn hybrid_operators_parallel_match_sequential_bitwise() {
        let mut hg = HyGraph::new();
        let mut vs = Vec::new();
        for i in 0..30usize {
            let s = TimeSeries::generate(ts(0), Duration::from_millis(5), 120, move |k| {
                ((k as f64) * 0.11 + i as f64 * 0.37).sin() * (1.0 + (i % 5) as f64)
                    + if i % 4 == 0 { k as f64 * 0.01 } else { 0.0 }
            });
            let sid = hg.add_univariate_series("s", &s);
            let label = if i % 3 == 0 { "A" } else { "B" };
            vs.push(hg.add_ts_vertex([label], sid).unwrap());
        }
        for i in 0..30 {
            hg.add_pg_edge(vs[i], vs[(i + 1) % 30], ["E"], props! {})
                .unwrap();
            if i % 5 == 0 {
                // chords create diamonds: same-level shared successors
                hg.add_pg_edge(vs[i], vs[(i + 7) % 30], ["E"], props! {})
                    .unwrap();
            }
        }

        // Q1: loose threshold so several bindings survive
        let mut pattern = Pattern::new();
        let a = pattern.vertex("a", ["A"]);
        let b = pattern.vertex("b", ["B"]);
        pattern.edge(None, a, b, ["E"], Direction::Out);
        let shape: Vec<f64> = (0..20).map(|k| ((k as f64) * 0.11).sin()).collect();
        let spec = HybridMatchSpec {
            pattern,
            series_var: "b".into(),
            shape,
            max_dist: 3.0,
        };
        let m_seq = hybrid_match_mode(&hg, &spec, ExecMode::Sequential);
        let m_par = hybrid_match_mode(&hg, &spec, ExecMode::Parallel);
        assert!(!m_seq.is_empty(), "fixture must produce Q1 matches");
        assert_eq!(m_seq.len(), m_par.len());
        for (s, p) in m_seq.iter().zip(&m_par) {
            assert_eq!(s.binding.vertices, p.binding.vertices);
            assert_eq!(s.shape_match.offset, p.shape_match.offset);
            assert_eq!(
                s.shape_match.distance.to_bits(),
                p.shape_match.distance.to_bits()
            );
        }

        // Q2: label-group mean series
        let g_seq = hybrid_aggregate_mode(&hg, Duration::from_millis(50), ExecMode::Sequential);
        let g_par = hybrid_aggregate_mode(&hg, Duration::from_millis(50), ExecMode::Parallel);
        assert_eq!(
            g_seq.group_series.len(),
            g_par.group_series.len(),
            "same group keys"
        );
        for (key, s) in &g_seq.group_series {
            let p = &g_par.group_series[key];
            assert_eq!(s.len(), p.len());
            for ((ts_s, x_s), (ts_p, x_p)) in s.iter().zip(p.iter()) {
                assert_eq!(ts_s, ts_p);
                assert_eq!(x_s.to_bits(), x_p.to_bits());
            }
        }

        // Q3: multi-wave BFS with diamond joins
        let r_seq = correlation_reachability_mode(
            &hg,
            vs[0],
            Duration::from_millis(5),
            0.2,
            ExecMode::Sequential,
        );
        let r_par = correlation_reachability_mode(
            &hg,
            vs[0],
            Duration::from_millis(5),
            0.2,
            ExecMode::Parallel,
        );
        assert!(r_seq.len() > 2, "fixture must reach beyond the start");
        assert_eq!(r_seq.len(), r_par.len());
        for ((v_s, c_s), (v_p, c_p)) in r_seq.iter().zip(&r_par) {
            assert_eq!(v_s, v_p);
            assert_eq!(c_s.to_bits(), c_p.to_bits());
        }
    }

    #[test]
    fn vertex_series_resolution() {
        let mut hg = HyGraph::new();
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 5, |i| i as f64);
        let sid = hg.add_univariate_series("x", &s);
        let tsv = hg.add_ts_vertex(["T"], sid).unwrap();
        let pgv = hg.add_pg_vertex(["P"], props! {});
        hg.set_property(ElementRef::Vertex(pgv), "metric", sid)
            .unwrap();
        let bare = hg.add_pg_vertex(["P"], props! {});
        assert_eq!(vertex_series(&hg, tsv).unwrap().len(), 5);
        assert_eq!(vertex_series(&hg, pgv).unwrap().len(), 5);
        assert!(vertex_series(&hg, bare).is_none());
    }
}
