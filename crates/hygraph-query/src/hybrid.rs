//! The roadmap's four hybrid operators (paper §6, "Querying HyGraph").
//!
//! * **Q1 [`hybrid_match`]** — "matches specific temporal patterns with
//!   corresponding structural patterns": a structural [`Pattern`] plus a
//!   subsequence-shape constraint on the series of one bound variable.
//! * **Q2 [`hybrid_aggregate`]** — "summarises and aggregates graph
//!   elements and adjusts the frequency of associated time series":
//!   label-grouping of the topology with per-group downsampled series.
//! * **Q3 [`correlation_reachability`]** — "measures the correlation
//!   between time-series data of vertices to enhance reachability":
//!   reachability where an edge is traversable only when its endpoint
//!   series correlate above a threshold.
//! * **Q4 [`segmentation_snapshots`]** — "creates graph snapshots at
//!   significant time intervals identified through time series
//!   segmentation": PELT changepoints on a driver series become snapshot
//!   instants.

use hygraph_core::{ElementKind, ElementRef, HyGraph};
use hygraph_graph::pattern::Binding;
use hygraph_graph::{snapshot, Pattern, TemporalGraph};
use hygraph_ts::ops::{correlate, downsample, segment, subsequence};
use hygraph_ts::TimeSeries;
use hygraph_types::{Duration, Result, SeriesId, Timestamp, VertexId};
use std::collections::{HashMap, VecDeque};

/// The first univariate series associated with a vertex: δ for a
/// ts-vertex, else the first series-valued property of a pg-vertex.
pub fn vertex_series(hg: &HyGraph, v: VertexId) -> Option<TimeSeries> {
    let sid = vertex_series_id(hg, v)?;
    let ms = hg.series(sid).ok()?;
    let name = ms.names().first()?.clone();
    ms.to_univariate(&name)
}

/// The series id associated with a vertex (see [`vertex_series`]).
pub fn vertex_series_id(hg: &HyGraph, v: VertexId) -> Option<SeriesId> {
    match hg.vertex_kind(v).ok()? {
        ElementKind::Ts => hg.delta_id(ElementRef::Vertex(v)).ok(),
        ElementKind::Pg => {
            let props = hg.props(ElementRef::Vertex(v)).ok()?;
            props.series_entries().next().map(|(_, sid)| sid)
        }
    }
}

/// A hybrid structural + temporal pattern (operator Q1).
pub struct HybridMatchSpec {
    /// The structural pattern.
    pub pattern: Pattern,
    /// The bound vertex variable whose series must contain the shape.
    pub series_var: String,
    /// The temporal shape to find (z-normalised matching).
    pub shape: Vec<f64>,
    /// Maximum z-normalised Euclidean distance for a shape hit.
    pub max_dist: f64,
}

/// One hybrid match: the structural binding plus the best temporal hit.
pub struct HybridMatch {
    /// Structural variable bindings.
    pub binding: Binding,
    /// Offset/time/distance of the best shape occurrence.
    pub shape_match: subsequence::Match,
}

/// Operator Q1: structural matches whose `series_var` series contains
/// the spec's temporal shape.
pub fn hybrid_match(hg: &HyGraph, spec: &HybridMatchSpec) -> Vec<HybridMatch> {
    let mut out = Vec::new();
    spec.pattern.find(hg.topology(), |binding| {
        let Some(&v) = binding.vertices.get(&spec.series_var) else {
            return true;
        };
        let Some(series) = vertex_series(hg, v) else {
            return true;
        };
        if let Some(m) = subsequence::best_match(&series, &spec.shape) {
            if m.distance <= spec.max_dist {
                out.push(HybridMatch {
                    binding: binding.clone(),
                    shape_match: m,
                });
            }
        }
        true
    });
    out
}

/// Result of operator Q2: the label-grouped summary graph plus one
/// downsampled aggregate series per group.
pub struct HybridAggregate {
    /// The structural grouping (super-vertices/super-edges).
    pub grouped: hygraph_graph::aggregate::GroupedGraph,
    /// Per group key: the mean of member series, downsampled to `bucket`.
    pub group_series: HashMap<String, TimeSeries>,
}

/// Operator Q2: groups vertices by label and produces one
/// `bucket`-granularity mean series per group, averaging over every
/// member's associated series.
pub fn hybrid_aggregate(hg: &HyGraph, bucket: Duration) -> HybridAggregate {
    let g = hg.topology();
    let grouped =
        hygraph_graph::aggregate::group_by(g, hygraph_graph::aggregate::GroupBy::Labels, &[]);
    let mut acc: HashMap<String, (TimeSeries, TimeSeries)> = HashMap::new(); // (sum, count)
    for v in g.vertex_ids() {
        let Some(series) = vertex_series(hg, v) else {
            continue;
        };
        let down = downsample::bucket_mean(&series, bucket);
        let Some(&group_v) = grouped.membership.get(&v) else {
            continue;
        };
        let key = grouped.group_keys[&group_v].clone();
        let entry = acc
            .entry(key)
            .or_insert_with(|| (TimeSeries::new(), TimeSeries::new()));
        for (t, x) in down.iter() {
            let cur = entry.0.value_at(t).unwrap_or(0.0);
            entry.0.upsert(t, cur + x);
            let n = entry.1.value_at(t).unwrap_or(0.0);
            entry.1.upsert(t, n + 1.0);
        }
    }
    let group_series = acc
        .into_iter()
        .map(|(k, (sum, count))| {
            let mean = TimeSeries::from_pairs(
                sum.iter()
                    .zip(count.iter())
                    .map(|((t, s), (_, n))| (t, s / n)),
            );
            (k, mean)
        })
        .collect();
    HybridAggregate {
        grouped,
        group_series,
    }
}

/// Operator Q3: vertices reachable from `from` through edges whose
/// endpoint series correlate at least `min_corr` (Pearson after linear
/// alignment to `step`). Returns `(vertex, correlation-with-predecessor)`
/// pairs; the start maps to correlation 1.
pub fn correlation_reachability(
    hg: &HyGraph,
    from: VertexId,
    step: Duration,
    min_corr: f64,
) -> Vec<(VertexId, f64)> {
    let g = hg.topology();
    let mut out: Vec<(VertexId, f64)> = Vec::new();
    let Some(start_series) = vertex_series(hg, from) else {
        return out;
    };
    let mut seen: HashMap<VertexId, f64> = HashMap::new();
    seen.insert(from, 1.0);
    out.push((from, 1.0));
    let mut queue: VecDeque<(VertexId, TimeSeries)> = VecDeque::new();
    queue.push_back((from, start_series));
    while let Some((v, v_series)) = queue.pop_front() {
        for (_, n) in g.neighbors(v) {
            if seen.contains_key(&n) {
                continue;
            }
            let Some(n_series) = vertex_series(hg, n) else {
                continue;
            };
            let Some(r) = correlate::series_correlation(&v_series, &n_series, step) else {
                continue;
            };
            if r >= min_corr {
                seen.insert(n, r);
                out.push((n, r));
                queue.push_back((n, n_series));
            }
        }
    }
    out.sort_by_key(|&(v, _)| v);
    out
}

/// Operator Q4: segments `driver` (PELT, optional penalty override) and
/// snapshots the topology at each segment boundary. Returns
/// `(boundary, snapshot)` pairs.
pub fn segmentation_snapshots(
    hg: &HyGraph,
    driver: &TimeSeries,
    penalty: Option<f64>,
) -> Result<Vec<(Timestamp, TemporalGraph)>> {
    let segments = segment::pelt(driver, penalty);
    let boundaries = segment::boundaries(&segments);
    Ok(boundaries
        .into_iter()
        .map(|t| (t, snapshot::snapshot(hg.topology(), t)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_graph::Direction;
    use hygraph_types::{props, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn bump_series(offset: usize) -> TimeSeries {
        TimeSeries::generate(ts(0), Duration::from_millis(1), 200, move |i| {
            let x = i as f64 - offset as f64;
            (-(x * x) / 50.0).exp() * 10.0
        })
    }

    #[test]
    fn q1_hybrid_match_filters_by_shape() {
        let mut hg = HyGraph::new();
        let bumped = hg.add_univariate_series("a", &bump_series(100));
        let flat = hg.add_univariate_series(
            "b",
            &TimeSeries::generate(ts(0), Duration::from_millis(1), 200, |i| {
                // structured non-repeating signal with no bump
                ((i as f64) * 0.7).sin() + (i as f64) * 0.05
            }),
        );
        let owner1 = hg.add_pg_vertex(["User"], props! {});
        let owner2 = hg.add_pg_vertex(["User"], props! {});
        let c1 = hg.add_ts_vertex(["Card"], bumped).unwrap();
        let c2 = hg.add_ts_vertex(["Card"], flat).unwrap();
        hg.add_pg_edge(owner1, c1, ["USES"], props! {}).unwrap();
        hg.add_pg_edge(owner2, c2, ["USES"], props! {}).unwrap();

        let mut pattern = Pattern::new();
        let u = pattern.vertex("u", ["User"]);
        let c = pattern.vertex("c", ["Card"]);
        pattern.edge(None, u, c, ["USES"], Direction::Out);
        // the query shape: a gaussian bump
        let shape: Vec<f64> = (0..40)
            .map(|i| {
                let x = i as f64 - 20.0;
                (-(x * x) / 50.0).exp()
            })
            .collect();
        let spec = HybridMatchSpec {
            pattern,
            series_var: "c".into(),
            shape,
            max_dist: 1.0,
        };
        let matches = hybrid_match(&hg, &spec);
        assert_eq!(matches.len(), 1, "only the bumped card matches the shape");
        assert_eq!(matches[0].binding.vertices["c"], c1);
        assert!((60..=120).contains(&matches[0].shape_match.offset));
    }

    #[test]
    fn q2_hybrid_aggregate_groups_and_downsamples() {
        let mut hg = HyGraph::new();
        for i in 0..4 {
            let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 100, move |k| {
                (i + 1) as f64 * 10.0 + k as f64 * 0.0
            });
            let sid = hg.add_univariate_series("load", &s);
            let label = if i < 2 { "Hot" } else { "Cold" };
            hg.add_ts_vertex([label], sid).unwrap();
        }
        let agg = hybrid_aggregate(&hg, Duration::from_millis(100));
        assert_eq!(agg.grouped.summary.vertex_count(), 2);
        let hot = &agg.group_series["Hot"];
        let cold = &agg.group_series["Cold"];
        // Hot members have constant 10, 20 -> mean 15; Cold 30, 40 -> 35
        assert!(hot.values().iter().all(|&v| (v - 15.0).abs() < 1e-9));
        assert!(cold.values().iter().all(|&v| (v - 35.0).abs() < 1e-9));
        assert_eq!(hot.len(), 10, "downsampled 100 points / bucket 10");
    }

    #[test]
    fn q3_correlation_reachability_blocks_uncorrelated() {
        let mut hg = HyGraph::new();
        let base = |i: usize| ((i as f64) * 0.2).sin() * 5.0;
        let s1 = TimeSeries::generate(ts(0), Duration::from_millis(10), 200, base);
        let s2 = TimeSeries::generate(ts(0), Duration::from_millis(10), 200, |i| base(i) * 3.0);
        let anti = TimeSeries::generate(ts(0), Duration::from_millis(10), 200, |i| -base(i));
        let sid_a = hg.add_univariate_series("a", &s1);
        let sid_b = hg.add_univariate_series("b", &s2);
        let sid_c = hg.add_univariate_series("c", &anti);
        let a = hg.add_ts_vertex(["S"], sid_a).unwrap();
        let b = hg.add_ts_vertex(["S"], sid_b).unwrap();
        let c = hg.add_ts_vertex(["S"], sid_c).unwrap();
        hg.add_pg_edge(a, b, ["E"], props! {}).unwrap();
        hg.add_pg_edge(b, c, ["E"], props! {}).unwrap();
        let reach = correlation_reachability(&hg, a, Duration::from_millis(10), 0.8);
        let ids: Vec<VertexId> = reach.iter().map(|&(v, _)| v).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
        assert!(!ids.contains(&c), "anti-correlated vertex unreachable");
        // with a permissive threshold everything connects
        let reach = correlation_reachability(&hg, a, Duration::from_millis(10), -1.0);
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn q3_start_without_series_is_empty() {
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["X"], props! {});
        assert!(correlation_reachability(&hg, a, Duration::from_millis(1), 0.5).is_empty());
    }

    #[test]
    fn q4_segmentation_snapshots_track_regimes() {
        let mut hg = HyGraph::new();
        // vertex alive only in the middle regime
        let a = hg.add_pg_vertex(["N"], props! {});
        let b = hg.add_pg_vertex_valid(
            ["N"],
            props! {},
            Interval::new(ts(30), ts(60)),
        );
        let _ = (a, b);
        // driver series with mean shifts at t=30 and t=60
        let driver = TimeSeries::generate(ts(0), Duration::from_millis(1), 90, |i| {
            if i < 30 {
                0.0
            } else if i < 60 {
                10.0
            } else {
                -5.0
            }
        });
        let snaps = segmentation_snapshots(&hg, &driver, Some(5.0)).unwrap();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].0, ts(0));
        assert_eq!(snaps[1].0, ts(30));
        assert_eq!(snaps[2].0, ts(60));
        assert_eq!(snaps[0].1.vertex_count(), 1, "b not yet alive");
        assert_eq!(snaps[1].1.vertex_count(), 2, "b alive in the middle regime");
        assert_eq!(snaps[2].1.vertex_count(), 1, "b gone again");
    }

    #[test]
    fn vertex_series_resolution() {
        let mut hg = HyGraph::new();
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 5, |i| i as f64);
        let sid = hg.add_univariate_series("x", &s);
        let tsv = hg.add_ts_vertex(["T"], sid).unwrap();
        let pgv = hg.add_pg_vertex(["P"], props! {});
        hg.set_property(ElementRef::Vertex(pgv), "metric", sid).unwrap();
        let bare = hg.add_pg_vertex(["P"], props! {});
        assert_eq!(vertex_series(&hg, tsv).unwrap().len(), 5);
        assert_eq!(vertex_series(&hg, pgv).unwrap().len(), 5);
        assert!(vertex_series(&hg, bare).is_none());
    }
}
