//! HyQL abstract syntax tree.

use hygraph_types::{Timestamp, Value};

/// A transaction-time bound on a query: which historical state of the
/// store the query executes against. Distinct from `VALID AT`, which
/// anchors element *validity intervals* within one state: `AS OF`
/// rewinds the store itself to a past commit watermark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemporalBound {
    /// `AS OF NOW()` — the current committed state (always equivalent
    /// to omitting the clause).
    AsOfNow,
    /// `AS OF t` — the state as of the last commit with transaction
    /// timestamp `<= t` (epoch milliseconds).
    AsOf(Timestamp),
    /// `BETWEEN t1 AND t2` — the union of results over every commit
    /// epoch whose state was current somewhere in `[t1, t2]`, rows
    /// deduplicated in first-seen order.
    Between(Timestamp, Timestamp),
}

/// A parsed HyQL query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The MATCH clause: one or more path patterns.
    pub patterns: Vec<PathPattern>,
    /// Optional WHERE expression.
    pub filter: Option<Expr>,
    /// Optional `VALID AT t` anchor restricting matches to elements
    /// valid at `t`.
    pub valid_at: Option<Timestamp>,
    /// Optional transaction-time bound (`AS OF` / `BETWEEN`). Resolved
    /// against a history store by the serving layer; plain library
    /// execution treats the graph it is handed as the resolved state.
    pub temporal: Option<TemporalBound>,
    /// RETURN projection.
    pub returns: Vec<ReturnItem>,
    /// Whether RETURN DISTINCT was requested.
    pub distinct: bool,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// Optional HAVING expression (evaluated per group after row
    /// aggregation; may reference row aggregates).
    pub having: Option<Expr>,
    /// Whether the query was prefixed with EXPLAIN: return the
    /// optimized plan rendering instead of executing.
    pub explain: bool,
}

/// One path in a MATCH clause: node, then (edge, node) hops.
#[derive(Clone, Debug, PartialEq)]
pub struct PathPattern {
    /// First node.
    pub start: NodePattern,
    /// Subsequent hops.
    pub hops: Vec<(EdgePattern, NodePattern)>,
}

/// A node pattern `(var:Label {key: literal, ...})`.
#[derive(Clone, Debug, PartialEq)]
pub struct NodePattern {
    /// Variable (auto-generated for anonymous nodes).
    pub var: String,
    /// Required labels.
    pub labels: Vec<String>,
    /// Inline equality constraints on static properties.
    pub props: Vec<(String, Value)>,
}

/// Direction of an edge pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDir {
    /// `-[..]->`
    Right,
    /// `<-[..]-`
    Left,
    /// `-[..]-`
    Undirected,
}

/// An edge pattern `-[var:LABEL]->` or variable-length
/// `-[:LABEL*min..max]->`.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgePattern {
    /// Variable (auto-generated for anonymous edges).
    pub var: String,
    /// Required labels.
    pub labels: Vec<String>,
    /// Direction.
    pub dir: EdgeDir,
    /// Hop-count range; `(1, 1)` for a plain edge. Variable-length edges
    /// (`max > min` or `min > 1`) cannot carry a user variable binding.
    pub hops: (usize, usize),
}

/// Row-aggregate functions (Cypher-style implicit grouping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowAggFunc {
    /// Number of rows (or non-null argument values).
    Count,
    /// Sum of numeric argument values.
    Sum,
    /// Mean of numeric argument values.
    Avg,
    /// Minimum argument value.
    Min,
    /// Maximum argument value.
    Max,
}

/// Aggregate functions usable over series terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Arithmetic mean.
    Mean,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Observation count.
    Count,
}

/// What series an aggregate targets.
#[derive(Clone, Debug, PartialEq)]
pub enum SeriesRef {
    /// `DELTA(var)` — the series of a ts-element.
    Delta(String),
    /// `var.key` — a series-valued property of a pg-element.
    Property {
        /// Bound variable.
        var: String,
        /// Property key.
        key: String,
    },
}

/// Scalar expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// `var.key` static property access (falls back to Null if the
    /// property is missing or series-valued in a scalar position).
    Prop {
        /// Bound variable.
        var: String,
        /// Property key.
        key: String,
    },
    /// Bare variable — evaluates to the element's display id (usable in
    /// RETURN for debugging/counting).
    Var(String),
    /// `FUNC(series IN [t1, t2))`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Series target.
        series: SeriesRef,
        /// Range start (inclusive, epoch ms).
        from: i64,
        /// Range end (exclusive, epoch ms).
        to: i64,
    },
    /// Row aggregate over the match groups: `COUNT(*)`,
    /// `COUNT(DISTINCT x)`, `SUM(e)`, ... Grouping keys are the
    /// aggregate-free RETURN items.
    RowAgg {
        /// Aggregate function.
        func: RowAggFunc,
        /// Argument; `None` means `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// Whether DISTINCT was requested.
        distinct: bool,
    },
    /// Unary NOT.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Binary operators, loosest-binding first in the parser.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// One RETURN item.
#[derive(Clone, Debug, PartialEq)]
pub struct ReturnItem {
    /// The projected expression.
    pub expr: Expr,
    /// Output column name (alias or synthesised).
    pub alias: String,
}

/// One ORDER BY item.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// Output column to order by.
    pub column: String,
    /// Descending?
    pub descending: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_types_construct() {
        let q = Query {
            patterns: vec![PathPattern {
                start: NodePattern {
                    var: "u".into(),
                    labels: vec!["User".into()],
                    props: vec![],
                },
                hops: vec![(
                    EdgePattern {
                        var: "_e0".into(),
                        labels: vec!["TX".into()],
                        dir: EdgeDir::Right,
                        hops: (1, 1),
                    },
                    NodePattern {
                        var: "m".into(),
                        labels: vec![],
                        props: vec![],
                    },
                )],
            }],
            filter: Some(Expr::Binary {
                op: BinOp::Gt,
                lhs: Box::new(Expr::Prop {
                    var: "_e0".into(),
                    key: "amount".into(),
                }),
                rhs: Box::new(Expr::Literal(Value::Int(1000))),
            }),
            valid_at: None,
            temporal: None,
            returns: vec![ReturnItem {
                expr: Expr::Var("u".into()),
                alias: "u".into(),
            }],
            distinct: false,
            order_by: vec![],
            limit: Some(5),
            having: None,
            explain: false,
        };
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.returns[0].alias, "u");
    }
}
