//! # hygraph-temporal — transaction-time history and time travel
//!
//! Keeps the store's *transaction time* alongside its data: every
//! committed mutation batch is stamped with a monotonically increasing
//! commit timestamp and retained as a delta in a [`HistoryStore`]. A
//! query bounded by `AS OF t` is then answered against the
//! reconstruction of the store as of the last commit with timestamp
//! `<= t`; `BETWEEN t1 AND t2` unions results across every commit
//! epoch current somewhere in the window.
//!
//! The design follows the delta-chain school (AeonG, Chronos): the
//! *current* state stays hot and untouched — history is a base
//! snapshot (exact state encoding) plus an ordered list of
//! [`CommitRecord`]s, each the mutation batch of one transaction.
//! Reconstruction replays the prefix `base ++ commits[..=i]`, which by
//! the determinism contract of [`hygraph_persist::Durable::apply`]
//! reproduces the historical state *bit for bit* — the same argument
//! that makes WAL recovery exact makes time travel exact. A small LRU
//! of reconstructed snapshots amortises repeated `AS OF` reads of the
//! same epoch.
//!
//! Retention is bounded by `HYGRAPH_HISTORY_RETAIN_SECS`
//! ([`HistoryConfig`]): expired commits are folded into the base
//! snapshot, moving the queryable horizon forward. `AS OF` below the
//! horizon is a typed error, never a silently wrong answer.
//!
//! ```
//! use hygraph_core::HyGraph;
//! use hygraph_persist::{Durable as _, HgMutation};
//! use hygraph_temporal::{HistoryConfig, HistoryStore, SnapshotResolution};
//! use hygraph_types::{Interval, Timestamp};
//!
//! let mut live = HyGraph::new();
//! let mut history = HistoryStore::new(HistoryConfig::default(), &live, 0);
//!
//! // commit one vertex at t=1000 (mirroring the mutation into history)
//! let m = HgMutation::AddPgVertex {
//!     labels: vec!["User".into()],
//!     props: Default::default(),
//!     validity: Interval::from(Timestamp::from_millis(0)),
//! };
//! let ts = history.allocate_ts(1_000);
//! live.apply(&m)?;
//! history.record_commit(ts, vec![m]);
//!
//! // the state as of t=500 — before the commit — has no vertices
//! match history.snapshot_at(500)? {
//!     SnapshotResolution::Past(past) => assert_eq!(past.vertex_count(), 0),
//!     SnapshotResolution::Live => unreachable!("t=500 precedes the commit"),
//! }
//! // at (or after) the commit timestamp the query runs on the live state
//! assert!(matches!(history.snapshot_at(ts)?, SnapshotResolution::Live));
//! # Ok::<(), hygraph_types::HyGraphError>(())
//! ```
//!
//! Serving integration lives in `hygraph-server`: the engine allocates
//! a timestamp per mutation batch ([`HistoryStore::allocate_ts`]),
//! stamps it into the WAL frames and checkpoint watermark
//! (`hygraph-persist`), mirrors the applied batch into the history,
//! and passes the store as the [`hygraph_query::TemporalResolver`] for
//! `AS OF` / `BETWEEN` queries. After a restart, [`HistorySeed`]
//! rebuilds the commit timeline from the recovered checkpoint plus the
//! replayed WAL suffix.

#![warn(missing_docs)]

mod config;
mod history;
mod seed;
mod watermark;

pub use config::{now_ms, HistoryConfig};
pub use history::{CommitRecord, HistoryStore, SnapshotResolution};
pub use seed::HistorySeed;
pub use watermark::ShardWatermark;
