//! History knobs: `HYGRAPH_HISTORY`, `HYGRAPH_HISTORY_RETAIN_SECS`.

/// Wall-clock milliseconds since the Unix epoch — the transaction-time
/// source for [`crate::HistoryStore::allocate_ts`].
pub fn now_ms() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(i64::MAX as u128) as i64)
        .unwrap_or(0)
}

/// Configuration of the transaction-time history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryConfig {
    /// Whether history is kept at all (`HYGRAPH_HISTORY`, default on).
    /// When off, the serving layer records nothing and `AS OF` /
    /// `BETWEEN` queries are rejected — the write path carries no
    /// history cost beyond a branch.
    pub enabled: bool,
    /// Retention window in milliseconds
    /// (`HYGRAPH_HISTORY_RETAIN_SECS`, default 0 = unbounded). Commits
    /// older than `now - retain_ms` are folded into the base snapshot,
    /// moving the queryable horizon forward and releasing their memory.
    pub retain_ms: i64,
    /// Reconstructed snapshots kept in the LRU cache (not
    /// env-configurable; sized for the common "a few hot epochs"
    /// access pattern).
    pub snapshot_cache: usize,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            retain_ms: 0,
            snapshot_cache: 8,
        }
    }
}

impl HistoryConfig {
    /// Reads `HYGRAPH_HISTORY` (default on; `0`/`false`/`off`/`no`
    /// disable) and `HYGRAPH_HISTORY_RETAIN_SECS` (seconds; `<= 0` or
    /// unset = unbounded).
    pub fn from_env() -> Self {
        let enabled = match std::env::var("HYGRAPH_HISTORY") {
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "false" | "off" | "no"
            ),
            Err(_) => true,
        };
        let retain_ms = std::env::var("HYGRAPH_HISTORY_RETAIN_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<i64>().ok())
            .filter(|&s| s > 0)
            .map(|s| s.saturating_mul(1_000))
            .unwrap_or(0);
        Self {
            enabled,
            retain_ms,
            ..Self::default()
        }
    }

    /// A config with history off — what the serving layer uses for
    /// `HYGRAPH_HISTORY=0`.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// A config retaining `secs` seconds of history.
    pub fn retaining_secs(secs: i64) -> Self {
        Self {
            retain_ms: secs.saturating_mul(1_000),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_enabled_and_unbounded() {
        let cfg = HistoryConfig::default();
        assert!(cfg.enabled);
        assert_eq!(cfg.retain_ms, 0);
        assert!(cfg.snapshot_cache > 0);
    }

    #[test]
    fn helpers_set_the_right_fields() {
        assert!(!HistoryConfig::disabled().enabled);
        assert_eq!(HistoryConfig::retaining_secs(30).retain_ms, 30_000);
        assert_eq!(HistoryConfig::retaining_secs(0).retain_ms, 0);
    }

    #[test]
    fn now_ms_is_positive_and_monotonic_enough() {
        let a = now_ms();
        let b = now_ms();
        assert!(a > 1_600_000_000_000, "clock is after 2020");
        assert!(b >= a);
    }
}
