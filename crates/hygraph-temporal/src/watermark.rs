//! Cross-shard commit watermark.
//!
//! A sharded engine appends each batch's frames to the WAL streams of
//! the shards the batch touches, so at any instant the shards sit at
//! different durable positions. The [`ShardWatermark`] folds those
//! per-shard frontiers into the one number temporal consistency cares
//! about: the commit sequence number below which *every* shard is
//! durable. `AS OF` bounds resolved strictly below the watermark are
//! stable across a crash — no shard can lose a frame under it — which
//! is what makes a cross-shard `AS OF` cut well-defined.
//!
//! The frontiers fed in must be **global CSN frontiers** (the shape of
//! `ShardedStore::shard_csn_frontiers`: for each shard, every frame it
//! holds below the value is durable, and a fully-synced shard reports
//! the store-wide next CSN). Raw per-stream WAL positions are *not* a
//! valid feed — each shard's WAL numbers its frames independently from
//! 0, so a shard receiving little traffic would pin the minimum near
//! zero without meaning anything about commit durability.
//!
//! The tracker is deliberately monotone: a shard's frontier never moves
//! backwards through [`ShardWatermark::observe`], so a stale reading
//! (taken while another thread advances the store) can only
//! under-report, never un-publish a watermark.

/// Monotone per-shard durable frontiers and their running minimum.
///
/// ```
/// use hygraph_temporal::ShardWatermark;
///
/// let mut wm = ShardWatermark::new(3);
/// assert_eq!(wm.watermark(), 0); // nothing durable anywhere yet
/// wm.observe(0, 5);
/// wm.observe(1, 3);
/// wm.observe(2, 9);
/// assert_eq!(wm.watermark(), 3); // shard 1 is the laggard
/// wm.observe(1, 8);
/// assert_eq!(wm.watermark(), 5); // now shard 0 is
/// wm.observe(0, 2); // stale reading: ignored, frontiers are monotone
/// assert_eq!(wm.frontier(0), Some(5));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardWatermark {
    durable: Vec<u64>,
}

impl ShardWatermark {
    /// A watermark over `shards` lanes, all at frontier 0.
    pub fn new(shards: usize) -> Self {
        Self {
            durable: vec![0; shards.max(1)],
        }
    }

    /// The number of lanes tracked.
    pub fn shards(&self) -> usize {
        self.durable.len()
    }

    /// Advances shard `shard`'s durable frontier to `durable_csn` if it
    /// moved forward; out-of-range shards and stale (lower) readings
    /// are ignored. Returns the new cross-shard watermark.
    pub fn observe(&mut self, shard: usize, durable_csn: u64) -> u64 {
        if let Some(slot) = self.durable.get_mut(shard) {
            *slot = (*slot).max(durable_csn);
        }
        self.watermark()
    }

    /// Folds a whole per-shard CSN frontier report (the shape of
    /// `ShardedStore::shard_csn_frontiers`) into the tracker.
    pub fn observe_frontiers(&mut self, frontiers: &[u64]) -> u64 {
        for (shard, &durable) in frontiers.iter().enumerate() {
            self.observe(shard, durable);
        }
        self.watermark()
    }

    /// Shard `shard`'s durable frontier, if the lane exists.
    pub fn frontier(&self, shard: usize) -> Option<u64> {
        self.durable.get(shard).copied()
    }

    /// The cross-shard watermark: the minimum durable frontier — every
    /// commit sequence number strictly below it is durable on all
    /// shards.
    pub fn watermark(&self) -> u64 {
        self.durable.iter().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_the_minimum_frontier() {
        let mut wm = ShardWatermark::new(4);
        assert_eq!(wm.watermark(), 0);
        wm.observe_frontiers(&[7, 4, 11, 6]);
        assert_eq!(wm.watermark(), 4);
        assert_eq!(wm.frontier(2), Some(11));
        assert_eq!(wm.observe(1, 20), 6, "shard 3 becomes the laggard");
    }

    #[test]
    fn frontiers_are_monotone_and_bounds_checked() {
        let mut wm = ShardWatermark::new(2);
        wm.observe(0, 9);
        wm.observe(0, 3); // stale
        assert_eq!(wm.frontier(0), Some(9));
        wm.observe(99, 1); // out of range: ignored
        assert_eq!(wm.shards(), 2);
        assert_eq!(wm.frontier(99), None);
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let wm = ShardWatermark::new(0);
        assert_eq!(wm.shards(), 1);
        assert_eq!(wm.watermark(), 0);
    }
}
