//! The timestamped commit log and snapshot reconstruction.

use hygraph_core::{ElementRef, HyGraph};
use hygraph_metrics as metrics;
use hygraph_persist::{Durable, HgMutation};
use hygraph_query::{ResolvedStates, TemporalBound, TemporalResolver};
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{HyGraphError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::config::HistoryConfig;

/// One committed transaction: its timestamp and the mutation batch
/// that applied (only the applied prefix of a partially failed batch).
#[derive(Clone, Debug, PartialEq)]
pub struct CommitRecord {
    /// Monotonically increasing transaction timestamp (epoch ms).
    pub commit_ts: i64,
    /// The mutations, in application order.
    pub mutations: Vec<HgMutation>,
}

/// How an `AS OF t` bound resolves.
#[derive(Clone, Debug)]
pub enum SnapshotResolution {
    /// `t` is at or past the newest commit: the live state answers.
    Live,
    /// A reconstructed historical state.
    Past(Arc<HyGraph>),
}

/// The transaction-time history of one store: a base snapshot (exact
/// state encoding) plus the ordered commit deltas above it. See the
/// crate docs for the reconstruction and retention model.
#[derive(Debug)]
pub struct HistoryStore {
    cfg: HistoryConfig,
    /// Exact state encoding at the history horizon.
    base_state: Vec<u8>,
    /// Commit timestamp the base covers: every commit with `ts <=
    /// base_ts` is folded in; `AS OF` below it is out of range.
    base_ts: i64,
    /// Retained commits, strictly increasing `commit_ts`.
    commits: Vec<CommitRecord>,
    /// Highest timestamp handed out by [`HistoryStore::allocate_ts`]
    /// (or observed at seeding) — the monotonicity floor.
    last_alloc: i64,
    /// Approximate heap held by history: base bytes + encoded delta
    /// bytes (what the `hygraph_temporal_history_bytes` gauge reports).
    approx_bytes: u64,
    /// Per-entity count of retained delta versions — the version
    /// chains. Only mutations addressing an *existing* element
    /// (property writes, closes) lengthen a chain; creations are the
    /// chain's root and carry no prior version.
    chains: HashMap<ElementRef, u32>,
    /// LRU of reconstructed snapshots, keyed by commit timestamp;
    /// most recently used last.
    cache: Vec<(i64, Arc<HyGraph>)>,
}

fn mutation_bytes(m: &HgMutation) -> u64 {
    let mut w = ByteWriter::new();
    <HyGraph as Durable>::encode_mutation(m, &mut w);
    w.into_bytes().len() as u64
}

/// The element an already-existing entity's mutation rewrites, if any
/// — the version-chain key.
fn chain_key(m: &HgMutation) -> Option<ElementRef> {
    match m {
        HgMutation::SetProperty { el, .. } => Some(*el),
        HgMutation::CloseVertex { v, .. } => Some(ElementRef::Vertex(*v)),
        HgMutation::CloseEdge { e, .. } => Some(ElementRef::Edge(*e)),
        _ => None,
    }
}

impl HistoryStore {
    /// A history whose horizon is `base` at transaction time `base_ts`.
    pub fn new(cfg: HistoryConfig, base: &HyGraph, base_ts: i64) -> Self {
        let mut w = ByteWriter::new();
        base.encode_state(&mut w);
        Self::from_parts(cfg, w.into_bytes(), base_ts, Vec::new())
    }

    /// A history assembled from recovered parts (see
    /// [`crate::HistorySeed`]). `commits` must carry strictly
    /// increasing timestamps, all above `base_ts`.
    pub fn from_parts(
        cfg: HistoryConfig,
        base_state: Vec<u8>,
        base_ts: i64,
        commits: Vec<CommitRecord>,
    ) -> Self {
        let mut store = Self {
            cfg,
            approx_bytes: base_state.len() as u64,
            base_state,
            base_ts,
            commits: Vec::new(),
            last_alloc: base_ts,
            chains: HashMap::new(),
            cache: Vec::new(),
        };
        for c in commits {
            debug_assert!(c.commit_ts > store.last_alloc, "commit ts not increasing");
            store.last_alloc = store.last_alloc.max(c.commit_ts);
            store.index_commit(&c);
            store.commits.push(c);
        }
        store.publish_gauges();
        store
    }

    fn index_commit(&mut self, c: &CommitRecord) {
        for m in &c.mutations {
            self.approx_bytes += mutation_bytes(m);
            if let Some(key) = chain_key(m) {
                *self.chains.entry(key).or_insert(0) += 1;
            }
        }
    }

    fn publish_gauges(&self) {
        if let Some(m) = metrics::get() {
            m.temporal.history_commits.set(self.commits.len() as i64);
            m.temporal.history_bytes.set(self.approx_bytes as i64);
            m.temporal
                .version_chain_max
                .set(self.version_chain_max() as i64);
        }
    }

    /// Allocates the next transaction timestamp: wall-clock `now_ms`,
    /// bumped to stay strictly increasing under bursts and clock
    /// steps. Call before making the batch durable so WAL frames carry
    /// the same timestamp history records.
    pub fn allocate_ts(&mut self, now_ms: i64) -> i64 {
        let ts = now_ms.max(self.last_alloc + 1);
        self.last_alloc = ts;
        ts
    }

    /// Records one committed batch at `ts` (an [`allocate_ts`] value).
    /// Pass only the mutations that actually applied; an empty batch
    /// records nothing. Runs retention GC against `ts` afterwards.
    ///
    /// [`allocate_ts`]: HistoryStore::allocate_ts
    pub fn record_commit(&mut self, ts: i64, mutations: Vec<HgMutation>) {
        if mutations.is_empty() {
            return;
        }
        debug_assert!(
            self.commits
                .last()
                .map(|c| c.commit_ts)
                .unwrap_or(self.base_ts)
                < ts,
            "commit ts must increase"
        );
        let c = CommitRecord {
            commit_ts: ts,
            mutations,
        };
        self.index_commit(&c);
        self.commits.push(c);
        self.gc(ts);
        self.publish_gauges();
    }

    /// Folds commits older than the retention window (relative to
    /// `now_ms`) into the base snapshot, moving the horizon forward.
    /// Returns how many commits were retired. No-op when retention is
    /// unbounded.
    pub fn gc(&mut self, now_ms: i64) -> usize {
        if self.cfg.retain_ms <= 0 {
            return 0;
        }
        let cutoff = now_ms.saturating_sub(self.cfg.retain_ms);
        let fold = self.commits.partition_point(|c| c.commit_ts < cutoff);
        if fold == 0 {
            return 0;
        }
        // one decode → apply* → encode pass for the whole expired run
        let mut state = self
            .decode_base()
            .expect("history base must decode: it was encoded by encode_state");
        for c in self.commits.drain(..fold).collect::<Vec<_>>() {
            for m in &c.mutations {
                state
                    .apply(m)
                    .expect("recorded mutation must re-apply: it applied once");
                self.approx_bytes = self.approx_bytes.saturating_sub(mutation_bytes(m));
                if let Some(key) = chain_key(m) {
                    if let Some(n) = self.chains.get_mut(&key) {
                        *n -= 1;
                        if *n == 0 {
                            self.chains.remove(&key);
                        }
                    }
                }
            }
            self.base_ts = c.commit_ts;
        }
        let old_base = self.base_state.len() as u64;
        let mut w = ByteWriter::new();
        state.encode_state(&mut w);
        self.base_state = w.into_bytes();
        self.approx_bytes = self
            .approx_bytes
            .saturating_sub(old_base)
            .saturating_add(self.base_state.len() as u64);
        // cached snapshots below the new horizon are unreachable
        self.cache.retain(|(ts, _)| *ts >= self.base_ts);
        if let Some(m) = metrics::get() {
            m.temporal.gc_commits_folded.add(fold as u64);
        }
        self.publish_gauges();
        fold
    }

    fn decode_base(&self) -> Result<HyGraph> {
        let mut r = ByteReader::new(&self.base_state);
        let hg = HyGraph::decode_state(&mut r)?;
        r.expect_exhausted()?;
        Ok(hg)
    }

    /// The reconstruction `base ++ commits[..=idx]` (`idx = None` for
    /// the bare base), through the snapshot cache.
    fn state_at_index(&mut self, idx: Option<usize>) -> Result<Arc<HyGraph>> {
        let key = match idx {
            Some(i) => self.commits[i].commit_ts,
            None => self.base_ts,
        };
        if let Some(pos) = self.cache.iter().position(|(ts, _)| *ts == key) {
            let hit = self.cache.remove(pos);
            let state = hit.1.clone();
            self.cache.push(hit); // most recently used last
            if let Some(m) = metrics::get() {
                m.temporal.snapshot_cache_hits.inc();
            }
            return Ok(state);
        }
        let mut state = self.decode_base()?;
        if let Some(i) = idx {
            for c in &self.commits[..=i] {
                for m in &c.mutations {
                    state.apply(m)?;
                }
            }
        }
        let state = Arc::new(state);
        self.cache.push((key, state.clone()));
        if self.cache.len() > self.cfg.snapshot_cache.max(1) {
            self.cache.remove(0);
        }
        if let Some(m) = metrics::get() {
            m.temporal.snapshot_rebuilds.inc();
        }
        Ok(state)
    }

    /// Index of the last commit with `commit_ts <= t`, or `None` when
    /// `t` lands on the bare base.
    fn index_at(&self, t: i64) -> Option<usize> {
        self.commits
            .partition_point(|c| c.commit_ts <= t)
            .checked_sub(1)
    }

    /// Resolves `AS OF t`: [`SnapshotResolution::Live`] when `t` is at
    /// or past the newest commit (the live store already *is* that
    /// state), a reconstructed snapshot when `t` lands inside history,
    /// and an error when `t` precedes the retention horizon.
    pub fn snapshot_at(&mut self, t: i64) -> Result<SnapshotResolution> {
        if t >= self.last_ts() {
            return Ok(SnapshotResolution::Live);
        }
        if t < self.base_ts {
            return Err(HyGraphError::query(format!(
                "AS OF {t} is before the history horizon {}: \
                 the commits covering it were retired by retention \
                 (HYGRAPH_HISTORY_RETAIN_SECS)",
                self.base_ts
            )));
        }
        let idx = self.index_at(t);
        Ok(SnapshotResolution::Past(self.state_at_index(idx)?))
    }

    /// Resolves `BETWEEN t1 AND t2`: the state current at `t1`, then
    /// the state after each commit with `t1 < commit_ts <= t2` — one
    /// entry per epoch the window saw, oldest first.
    pub fn states_between(&mut self, t1: i64, t2: i64) -> Result<Vec<Arc<HyGraph>>> {
        if t2 < t1 {
            return Err(HyGraphError::query(format!(
                "BETWEEN bounds must satisfy t1 <= t2, got [{t1}, {t2}]"
            )));
        }
        if t1 < self.base_ts {
            return Err(HyGraphError::query(format!(
                "BETWEEN {t1} starts before the history horizon {}: \
                 the commits covering it were retired by retention \
                 (HYGRAPH_HISTORY_RETAIN_SECS)",
                self.base_ts
            )));
        }
        let start_idx = self.index_at(t1);
        let first = self.state_at_index(start_idx)?;
        let mut out = vec![first.clone()];
        let mut working: Option<HyGraph> = None;
        let from = start_idx.map(|i| i + 1).unwrap_or(0);
        for i in from..self.commits.len() {
            if self.commits[i].commit_ts > t2 {
                break;
            }
            let state = working.get_or_insert_with(|| (*first).clone());
            for m in &self.commits[i].mutations {
                state.apply(m)?;
            }
            out.push(Arc::new(state.clone()));
        }
        Ok(out)
    }

    /// Transaction time of the history horizon — `AS OF` below this is
    /// out of range.
    pub fn base_ts(&self) -> i64 {
        self.base_ts
    }

    /// Timestamp of the newest commit (the base's when none are
    /// retained). `AS OF t >= last_ts()` resolves to the live state.
    pub fn last_ts(&self) -> i64 {
        self.commits
            .last()
            .map(|c| c.commit_ts)
            .unwrap_or(self.base_ts)
    }

    /// Retained commit count.
    pub fn commit_count(&self) -> usize {
        self.commits.len()
    }

    /// Timestamps of every retained commit, oldest first.
    pub fn commit_timestamps(&self) -> Vec<i64> {
        self.commits.iter().map(|c| c.commit_ts).collect()
    }

    /// Approximate bytes held by history (base + deltas).
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }

    /// Length of the longest per-entity version chain currently
    /// retained (prior versions only; the hot version is the store's).
    pub fn version_chain_max(&self) -> u32 {
        self.chains.values().copied().max().unwrap_or(0)
    }
}

impl TemporalResolver for HistoryStore {
    fn resolve(&mut self, bound: &TemporalBound) -> Result<ResolvedStates> {
        match bound {
            TemporalBound::AsOfNow => Ok(ResolvedStates::Live),
            TemporalBound::AsOf(t) => {
                let start = metrics::enabled().then(Instant::now);
                let resolved = self.snapshot_at(t.millis())?;
                if let Some(m) = metrics::get() {
                    m.temporal.asof_queries.inc();
                    if let Some(s) = start {
                        m.temporal.asof_us.observe_duration(s.elapsed());
                    }
                }
                Ok(match resolved {
                    SnapshotResolution::Live => ResolvedStates::Live,
                    SnapshotResolution::Past(state) => ResolvedStates::At(state),
                })
            }
            TemporalBound::Between(t1, t2) => {
                let start = metrics::enabled().then(Instant::now);
                let states = self.states_between(t1.millis(), t2.millis())?;
                if let Some(m) = metrics::get() {
                    m.temporal.between_queries.inc();
                    if let Some(s) = start {
                        m.temporal.asof_us.observe_duration(s.elapsed());
                    }
                }
                Ok(ResolvedStates::Epochs(states))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Interval, PropertyMap, Timestamp, Value};

    fn add_vertex(label: &str) -> HgMutation {
        HgMutation::AddPgVertex {
            labels: vec![label.into()],
            props: PropertyMap::new(),
            validity: Interval::from(Timestamp::from_millis(0)),
        }
    }

    fn set_prop(el: ElementRef, key: &str, v: i64) -> HgMutation {
        HgMutation::SetProperty {
            el,
            key: key.into(),
            value: Value::Int(v).into(),
        }
    }

    fn state_bytes(hg: &HyGraph) -> Vec<u8> {
        let mut w = ByteWriter::new();
        hg.encode_state(&mut w);
        w.into_bytes()
    }

    /// A live graph plus a history mirroring every commit, with the
    /// full state after each commit for comparison.
    fn build(commit_batches: Vec<Vec<HgMutation>>) -> (HyGraph, HistoryStore, Vec<(i64, Vec<u8>)>) {
        let mut live = HyGraph::new();
        let mut history = HistoryStore::new(HistoryConfig::default(), &live, 0);
        let mut states = Vec::new();
        for (i, batch) in commit_batches.into_iter().enumerate() {
            let ts = history.allocate_ts((i as i64 + 1) * 1_000);
            for m in &batch {
                live.apply(m).unwrap();
            }
            history.record_commit(ts, batch);
            states.push((ts, state_bytes(&live)));
        }
        (live, history, states)
    }

    #[test]
    fn snapshots_are_bit_identical_to_the_state_at_each_commit() {
        let (live, mut history, states) = build(vec![
            vec![add_vertex("A")],
            vec![add_vertex("B"), add_vertex("C")],
            vec![set_prop(
                ElementRef::Vertex(hygraph_types::VertexId::new(0)),
                "score",
                7,
            )],
        ]);
        for (ts, expected) in &states[..states.len() - 1] {
            match history.snapshot_at(*ts).unwrap() {
                SnapshotResolution::Past(past) => {
                    assert_eq!(&state_bytes(&past), expected, "AS OF {ts}")
                }
                SnapshotResolution::Live => panic!("AS OF {ts} should be in the past"),
            }
            // between commits the earlier state stays current
            match history.snapshot_at(*ts + 500).unwrap() {
                SnapshotResolution::Past(past) => assert_eq!(&state_bytes(&past), expected),
                SnapshotResolution::Live => panic!("AS OF {}+500 should be past", ts),
            }
        }
        // at or after the newest commit: live
        let last = states.last().unwrap().0;
        assert!(matches!(
            history.snapshot_at(last).unwrap(),
            SnapshotResolution::Live
        ));
        assert!(matches!(
            history.snapshot_at(i64::MAX).unwrap(),
            SnapshotResolution::Live
        ));
        // and full reconstruction equals the live bytes
        let full = history.state_at_index(Some(2)).unwrap();
        assert_eq!(state_bytes(&full), state_bytes(&live));
    }

    #[test]
    fn before_base_errors_after_gc_horizon_moves() {
        let (_live, mut history, states) = build(vec![
            vec![add_vertex("A")],
            vec![add_vertex("B")],
            vec![add_vertex("C")],
        ]);
        assert!(history.snapshot_at(-5).is_err(), "before genesis");

        // retention of 1.5s relative to the last commit (t=3000)
        // retires the first commit (t=1000 < 3000 - 1500)
        history.cfg.retain_ms = 1_500;
        let folded = history.gc(3_000);
        assert_eq!(folded, 1);
        assert_eq!(history.base_ts(), 1_000);
        assert_eq!(history.commit_count(), 2);
        assert!(history.snapshot_at(500).is_err(), "below the new horizon");
        // the horizon itself still answers, bit-identically
        match history.snapshot_at(1_000).unwrap() {
            SnapshotResolution::Past(past) => {
                assert_eq!(state_bytes(&past), states[0].1);
            }
            SnapshotResolution::Live => panic!("t=1000 is past"),
        }
    }

    #[test]
    fn between_returns_one_state_per_epoch_in_the_window() {
        let (_live, mut history, states) = build(vec![
            vec![add_vertex("A")],
            vec![add_vertex("B")],
            vec![add_vertex("C")],
        ]);
        // window covering commits 2 and 3, starting inside epoch 1
        let got = history.states_between(1_500, 3_500).unwrap();
        assert_eq!(got.len(), 3, "epoch at t1 + two commits in window");
        assert_eq!(state_bytes(&got[0]), states[0].1);
        assert_eq!(state_bytes(&got[1]), states[1].1);
        assert_eq!(state_bytes(&got[2]), states[2].1);
        // degenerate window: just the state at t1
        let got = history.states_between(2_100, 2_900).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(state_bytes(&got[0]), states[1].1);
        assert!(history.states_between(-1, 100).is_err(), "below horizon");
    }

    #[test]
    fn allocate_ts_is_strictly_increasing_under_clock_stalls() {
        let mut history = HistoryStore::new(HistoryConfig::default(), &HyGraph::new(), 0);
        let a = history.allocate_ts(100);
        let b = history.allocate_ts(100); // clock stalled
        let c = history.allocate_ts(50); // clock stepped back
        assert!(a < b && b < c, "{a} {b} {c}");
        let d = history.allocate_ts(10_000);
        assert_eq!(d, 10_000, "clock ahead of floor wins");
    }

    #[test]
    fn version_chains_and_bytes_track_recorded_deltas() {
        let v0 = ElementRef::Vertex(hygraph_types::VertexId::new(0));
        let (_live, history, _) = build(vec![
            vec![add_vertex("A")],
            vec![set_prop(v0, "x", 1)],
            vec![set_prop(v0, "x", 2), set_prop(v0, "y", 9)],
        ]);
        assert_eq!(history.version_chain_max(), 3, "three rewrites of v0");
        assert!(history.approx_bytes() > 0);
        assert_eq!(history.commit_count(), 3);
        assert_eq!(history.commit_timestamps(), vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn snapshot_cache_serves_repeats_and_evicts() {
        let (_live, mut history, states) = build(vec![
            vec![add_vertex("A")],
            vec![add_vertex("B")],
            vec![add_vertex("C")],
        ]);
        history.cfg.snapshot_cache = 2;
        for _ in 0..3 {
            for (ts, expected) in &states[..2] {
                match history.snapshot_at(*ts).unwrap() {
                    SnapshotResolution::Past(p) => assert_eq!(&state_bytes(&p), expected),
                    SnapshotResolution::Live => panic!("past expected"),
                }
            }
        }
        assert!(history.cache.len() <= 2, "cache bounded");
    }

    #[test]
    fn resolver_maps_bounds_to_resolved_states() {
        let (_live, mut history, states) =
            build(vec![vec![add_vertex("A")], vec![add_vertex("B")]]);
        let r: &mut dyn TemporalResolver = &mut history;
        assert!(matches!(
            r.resolve(&TemporalBound::AsOfNow).unwrap(),
            ResolvedStates::Live
        ));
        match r
            .resolve(&TemporalBound::AsOf(Timestamp::from_millis(1_000)))
            .unwrap()
        {
            ResolvedStates::At(state) => assert_eq!(state_bytes(&state), states[0].1),
            other => panic!("expected At, got {other:?}"),
        }
        match r
            .resolve(&TemporalBound::Between(
                Timestamp::from_millis(1_000),
                Timestamp::from_millis(2_000),
            ))
            .unwrap()
        {
            ResolvedStates::Epochs(states_got) => assert_eq!(states_got.len(), 2),
            other => panic!("expected Epochs, got {other:?}"),
        }
    }
}
