//! Rebuilding history across restarts from checkpoint + WAL replay.

use hygraph_core::HyGraph;
use hygraph_persist::{Durable, HgMutation, RecoveryObserver};
use hygraph_types::bytes::ByteWriter;
use hygraph_types::Result;

use crate::config::HistoryConfig;
use crate::history::{CommitRecord, HistoryStore};

/// A [`RecoveryObserver`] that captures the recovered checkpoint and
/// every replayed WAL frame, then assembles them into a
/// [`HistoryStore`] whose horizon is the checkpoint watermark.
///
/// Pass it to [`hygraph_persist::DurableStore::open_observed`]; call
/// [`HistorySeed::finish`] once recovery returns. Frames stamped at or
/// below the watermark — including `ts = 0` frames from pre-history
/// (`HGWL1`) segments — carry no usable transaction time and are folded
/// into the base snapshot; frames above it become one [`CommitRecord`]
/// per distinct timestamp (frames of one commit share a stamp, and
/// stamps are strictly increasing across commits).
#[derive(Debug)]
pub struct HistorySeed {
    cfg: HistoryConfig,
    base_state: Vec<u8>,
    base_ts: i64,
    replays: Vec<(i64, HgMutation)>,
}

impl HistorySeed {
    /// An empty seed: until [`RecoveryObserver::base`] fires, the base
    /// is a fresh store at transaction time 0.
    pub fn new(cfg: HistoryConfig) -> Self {
        let mut w = ByteWriter::new();
        HyGraph::new().encode_state(&mut w);
        Self {
            cfg,
            base_state: w.into_bytes(),
            base_ts: 0,
            replays: Vec::new(),
        }
    }

    /// Assembles the captured recovery into a [`HistoryStore`].
    pub fn finish(self) -> Result<HistoryStore> {
        let Self {
            cfg,
            mut base_state,
            base_ts,
            replays,
        } = self;
        // Fold untimed / pre-watermark replays into the base. (With a
        // v2 log this set is empty above an intact checkpoint, but a
        // legacy HGWL1 suffix replays as ts = 0.)
        let split = replays.partition_point(|(ts, _)| *ts <= base_ts);
        if split > 0 {
            let mut state = {
                let mut r = hygraph_types::bytes::ByteReader::new(&base_state);
                let hg = HyGraph::decode_state(&mut r)?;
                r.expect_exhausted()?;
                hg
            };
            for (_, m) in &replays[..split] {
                state.apply(m)?;
            }
            let mut w = ByteWriter::new();
            state.encode_state(&mut w);
            base_state = w.into_bytes();
        }
        // Group the timed suffix into commits: one record per run of
        // consecutive equal timestamps.
        let mut commits: Vec<CommitRecord> = Vec::new();
        for (ts, m) in replays.into_iter().skip(split) {
            match commits.last_mut() {
                Some(last) if last.commit_ts == ts => last.mutations.push(m),
                _ => commits.push(CommitRecord {
                    commit_ts: ts,
                    mutations: vec![m],
                }),
            }
        }
        Ok(HistoryStore::from_parts(cfg, base_state, base_ts, commits))
    }
}

impl RecoveryObserver<HyGraph> for HistorySeed {
    fn base(&mut self, watermark: i64, state: &[u8]) {
        self.base_ts = watermark;
        self.base_state = state.to_vec();
    }

    fn replay(&mut self, _lsn: u64, ts: i64, m: &HgMutation) {
        self.replays.push((ts, m.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::SnapshotResolution;
    use hygraph_types::bytes::ByteReader;
    use hygraph_types::{Interval, PropertyMap, Timestamp};

    fn add_vertex(label: &str) -> HgMutation {
        HgMutation::AddPgVertex {
            labels: vec![label.into()],
            props: PropertyMap::new(),
            validity: Interval::from(Timestamp::from_millis(0)),
        }
    }

    fn state_bytes(hg: &HyGraph) -> Vec<u8> {
        let mut w = ByteWriter::new();
        hg.encode_state(&mut w);
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> HyGraph {
        let mut r = ByteReader::new(bytes);
        let hg = HyGraph::decode_state(&mut r).unwrap();
        r.expect_exhausted().unwrap();
        hg
    }

    #[test]
    fn empty_seed_finishes_as_a_fresh_history() {
        let mut history = HistorySeed::new(HistoryConfig::default()).finish().unwrap();
        assert_eq!(history.base_ts(), 0);
        assert_eq!(history.commit_count(), 0);
        // the horizon state is an empty store
        assert!(matches!(
            history.snapshot_at(0).unwrap(),
            SnapshotResolution::Live
        ));
    }

    #[test]
    fn checkpoint_plus_timed_frames_become_base_plus_commits() {
        let mut base = HyGraph::new();
        base.apply(&add_vertex("Base")).unwrap();
        let base_bytes = state_bytes(&base);

        let mut seed = HistorySeed::new(HistoryConfig::default());
        seed.base(5_000, &base_bytes);
        // two commits above the watermark: t=6000 (two frames), t=7000
        seed.replay(1, 6_000, &add_vertex("A"));
        seed.replay(2, 6_000, &add_vertex("B"));
        seed.replay(3, 7_000, &add_vertex("C"));
        let mut history = seed.finish().unwrap();

        assert_eq!(history.base_ts(), 5_000);
        assert_eq!(history.commit_timestamps(), vec![6_000, 7_000]);

        match history.snapshot_at(5_000).unwrap() {
            SnapshotResolution::Past(p) => assert_eq!(state_bytes(&p), base_bytes),
            SnapshotResolution::Live => panic!("watermark state is past"),
        }
        match history.snapshot_at(6_500).unwrap() {
            SnapshotResolution::Past(p) => assert_eq!(p.vertex_count(), 3),
            SnapshotResolution::Live => panic!("t=6500 is past"),
        }
        assert!(matches!(
            history.snapshot_at(7_000).unwrap(),
            SnapshotResolution::Live
        ));
    }

    #[test]
    fn legacy_zero_ts_frames_fold_into_the_base() {
        let mut seed = HistorySeed::new(HistoryConfig::default());
        // no checkpoint; an HGWL1 suffix replays with ts = 0
        seed.replay(1, 0, &add_vertex("Old"));
        seed.replay(2, 0, &add_vertex("Older"));
        // then a timed v2 frame
        seed.replay(3, 4_000, &add_vertex("New"));
        let mut history = seed.finish().unwrap();

        assert_eq!(history.base_ts(), 0);
        assert_eq!(history.commit_timestamps(), vec![4_000]);
        // the base already holds the two legacy vertices
        match history.snapshot_at(1_000).unwrap() {
            SnapshotResolution::Past(p) => {
                let expected = {
                    let mut hg = HyGraph::new();
                    hg.apply(&add_vertex("Old")).unwrap();
                    hg.apply(&add_vertex("Older")).unwrap();
                    hg
                };
                assert_eq!(state_bytes(&p), state_bytes(&expected));
            }
            SnapshotResolution::Live => panic!("t=1000 is past"),
        }
        assert!(matches!(
            history.snapshot_at(4_000).unwrap(),
            SnapshotResolution::Live
        ));
        let _ = decode(&state_bytes(&HyGraph::new())); // codec sanity
    }
}
