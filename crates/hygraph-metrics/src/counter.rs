//! Atomic counters and gauges — the cheapest metric kinds.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations are relaxed atomics: counters are statistics, not
/// synchronisation, and a reader tearing across two increments only
/// ever sees a value that *was* true at some instant.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (queue depth, busy
/// workers, open connections).
///
/// Signed so that racy inc/dec interleavings around enable/disable
/// transitions can momentarily dip below zero instead of wrapping to
/// 2^64; snapshots clamp at display time.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4, "gauges may dip below zero under races");
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn counter_is_concurrency_safe() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
