//! The metrics registry: every instrument the stack records into, a
//! plain-data [`Snapshot`] of the lot, an exact binary codec for
//! shipping snapshots over the wire, and a Prometheus-style text
//! exposition.
//!
//! The registry is a fixed, strongly-typed tree — no string lookups on
//! the hot path, no allocation, no locks beyond the slow-query ring.
//! Each domain (serving, durability, query execution, time series) has
//! its own group so call sites read like
//! `m.server.queue_wait_us.observe_duration(w)`.

use crate::counter::{Counter, Gauge};
use crate::hist::{Histogram, HistogramSnapshot, BUCKETS};
use crate::slow::{SlowQueryEntry, SlowQueryLog};

/// Magic version byte leading every encoded [`Snapshot`].
///
/// Version 2 added the plan-cache counters, the per-physical-operator
/// group, and the plan fingerprint on slow-query entries. Version 3
/// added the time-series compression gauges and rollup counters.
/// Version 4 added the standing-subscription group. Version 5 added
/// the temporal-history group. Version 6 added the per-shard group.
/// Version 7 added the snapshot-publication instruments
/// (commit-publish latency and the pinned-snapshot gauge).
const SNAPSHOT_VERSION: u8 = 7;

/// Per-shard gauge lanes held by the registry. Mirrors
/// `hygraph_types::shard::MAX_SHARDS` (this crate is dependency-free,
/// so the bound is restated here; the server asserts they agree).
pub const MAX_SHARD_LANES: usize = 64;

// ---------------------------------------------------------------------
// Operator taxonomy
// ---------------------------------------------------------------------

/// The paper's Table 2 operator taxonomy — the key space for per-class
/// query-execution metrics.
///
/// HyQL queries classify into the four query rows (Q1–Q4); the
/// analytics layers map onto the remaining rows (feature extraction,
/// detection, embedding, pattern mining).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum OpClass {
    /// Q1 — (sub)pattern matching.
    Q1Match = 0,
    /// Q2 — aggregation / grouping / downsampling.
    Q2Aggregate = 1,
    /// Q3 — traversal, reachability, correlation.
    Q3Traverse = 2,
    /// Q4 — snapshot / segmentation retrieval.
    Q4Snapshot = 3,
    /// C — feature extraction and classification.
    CFeature = 4,
    /// D — outlier / anomaly / community detection.
    DDetect = 5,
    /// E — embedding.
    EEmbed = 6,
    /// PM — pattern mining (motifs, discords).
    PmMine = 7,
}

impl OpClass {
    /// Number of classes (array dimension of [`QueryMetrics::classes`]).
    pub const COUNT: usize = 8;

    /// Every class, in index order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Q1Match,
        OpClass::Q2Aggregate,
        OpClass::Q3Traverse,
        OpClass::Q4Snapshot,
        OpClass::CFeature,
        OpClass::DDetect,
        OpClass::EEmbed,
        OpClass::PmMine,
    ];

    /// The stable metric-name suffix for this class.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Q1Match => "q1_match",
            OpClass::Q2Aggregate => "q2_aggregate",
            OpClass::Q3Traverse => "q3_traverse",
            OpClass::Q4Snapshot => "q4_snapshot",
            OpClass::CFeature => "c_feature",
            OpClass::DDetect => "d_detect",
            OpClass::EEmbed => "e_embed",
            OpClass::PmMine => "pm_mine",
        }
    }
}

/// The physical operators of the plan-based HyQL executor — the key
/// space for per-operator query metrics (`hygraph-query::physical`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum PlanOp {
    /// Pattern matching / binding materialisation (with pushed preds).
    Match = 0,
    /// Residual WHERE evaluation over bindings.
    Filter = 1,
    /// Flat projection (RETURN items, incl. series aggregates).
    Project = 2,
    /// Grouped projection: key eval + row-aggregate fold + HAVING.
    Aggregate = 3,
    /// DISTINCT row deduplication.
    Distinct = 4,
    /// ORDER BY sort.
    Sort = 5,
    /// LIMIT truncation.
    Limit = 6,
}

impl PlanOp {
    /// Number of operators (array dimension of
    /// [`QueryMetrics::operators`]).
    pub const COUNT: usize = 7;

    /// Every operator, in index order.
    pub const ALL: [PlanOp; PlanOp::COUNT] = [
        PlanOp::Match,
        PlanOp::Filter,
        PlanOp::Project,
        PlanOp::Aggregate,
        PlanOp::Distinct,
        PlanOp::Sort,
        PlanOp::Limit,
    ];

    /// The stable metric-name suffix for this operator.
    pub fn name(self) -> &'static str {
        match self {
            PlanOp::Match => "match",
            PlanOp::Filter => "filter",
            PlanOp::Project => "project",
            PlanOp::Aggregate => "aggregate",
            PlanOp::Distinct => "distinct",
            PlanOp::Sort => "sort",
            PlanOp::Limit => "limit",
        }
    }
}

// ---------------------------------------------------------------------
// Live instrument groups
// ---------------------------------------------------------------------

/// Serving-layer instruments (`hygraph-server`).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests admitted to the queue.
    pub admitted: Counter,
    /// Requests a worker finished (any outcome).
    pub completed: Counter,
    /// Requests rejected because the admission queue was full.
    pub rejected_overload: Counter,
    /// Admitted requests dropped at dequeue past their deadline.
    pub rejected_deadline: Counter,
    /// Requests refused because the server was draining.
    pub rejected_shutdown: Counter,
    /// Frames rejected before decoding (CRC failures).
    pub bad_frames: Counter,
    /// Deadline drops that happened during the shutdown drain.
    pub drain_deadline_drops: Counter,
    /// Requests currently queued (admitted, not yet picked up).
    pub queue_depth: Gauge,
    /// Workers currently executing a request.
    pub workers_busy: Gauge,
    /// Open client connections.
    pub connections: Gauge,
    /// Reader-side admission time: frame decoded → queued (µs).
    pub admission_us: Histogram,
    /// Queue wait: admitted → picked up by a worker (µs).
    pub queue_wait_us: Histogram,
    /// Engine execution time per request (µs).
    pub execute_us: Histogram,
    /// Response encode + socket write time (µs).
    pub encode_us: Histogram,
}

/// Durability-layer instruments (`hygraph-persist`).
#[derive(Debug, Default)]
pub struct PersistMetrics {
    /// Records appended to the WAL batch.
    pub wal_appends: Counter,
    /// Successful group-commit syncs.
    pub wal_syncs: Counter,
    /// Segment rotations (new segment files opened).
    pub wal_rotations: Counter,
    /// Bytes made durable by syncs.
    pub wal_synced_bytes: Counter,
    /// Checkpoints written.
    pub checkpoints: Counter,
    /// Store recoveries performed.
    pub recoveries: Counter,
    /// WAL frames replayed during recoveries.
    pub recovery_frames_replayed: Counter,
    /// Torn/corrupt tails truncated during recoveries.
    pub recovery_truncations: Counter,
    /// Per-record WAL append time (µs).
    pub wal_append_us: Histogram,
    /// Group-commit sync time: one write + fdatasync (µs).
    pub wal_sync_us: Histogram,
    /// Checkpoint write time (µs).
    pub checkpoint_us: Histogram,
    /// Full recovery time on open (µs).
    pub recovery_us: Histogram,
    /// Frames per group-commit batch (a size, not a latency).
    pub group_commit_frames: Histogram,
}

/// Per-operator-class instruments.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Executions.
    pub count: Counter,
    /// Executions that returned an error.
    pub errors: Counter,
    /// Execution time (µs).
    pub time_us: Histogram,
}

/// Per-physical-operator instruments (`hygraph-query::physical`).
#[derive(Debug, Default)]
pub struct OperatorMetrics {
    /// Operator executions.
    pub invocations: Counter,
    /// Rows (or bindings) the operator emitted.
    pub rows_out: Counter,
    /// Execution time (µs).
    pub time_us: Histogram,
}

/// Query-layer instruments (`hygraph-query`), keyed by [`OpClass`].
#[derive(Debug, Default)]
pub struct QueryMetrics {
    /// One group per Table 2 row, indexed by `OpClass as usize`.
    pub classes: [OpMetrics; OpClass::COUNT],
    /// HyQL texts that failed to parse (never classified).
    pub parse_errors: Counter,
    /// Queries answered from the server's plan cache.
    pub plan_cache_hits: Counter,
    /// Queries planned from scratch (cache cold, full, or disabled).
    pub plan_cache_misses: Counter,
    /// One group per physical operator, indexed by `PlanOp as usize`.
    pub operators: [OperatorMetrics; PlanOp::COUNT],
}

impl QueryMetrics {
    /// The instrument group for `class`.
    pub fn class(&self, class: OpClass) -> &OpMetrics {
        &self.classes[class as usize]
    }

    /// The instrument group for physical operator `op`.
    pub fn operator(&self, op: PlanOp) -> &OperatorMetrics {
        &self.operators[op as usize]
    }
}

/// Time-series-layer instruments (`hygraph-ts`).
#[derive(Debug, Default)]
pub struct TsMetrics {
    /// Insert calls into the chunked store.
    pub inserts: Counter,
    /// Observations inserted.
    pub points_inserted: Counter,
    /// Precomputed rollup-pyramid nodes merged by interval aggregates.
    pub rollup_hits: Counter,
    /// Sealed boundary chunks an aggregate had to decode and scan.
    pub rollup_boundary_decodes: Counter,
    /// Chunks currently sealed (compressed) across all stores.
    pub sealed_chunks: Gauge,
    /// Uncompressed size of the sealed data (bytes).
    pub raw_bytes: Gauge,
    /// Compressed size of the sealed data (bytes).
    pub compressed_bytes: Gauge,
}

/// Standing-subscription instruments (`hygraph-sub`).
#[derive(Debug, Default)]
pub struct SubMetrics {
    /// Standing queries currently registered.
    pub active: Gauge,
    /// Non-empty delta frames handed to subscriber push buffers.
    pub deltas_pushed: Counter,
    /// Commits a subscription answered by full re-execution (rerun-mode
    /// plans and forced incremental rebuilds) instead of a seeded
    /// incremental pass.
    pub fallback_reruns: Counter,
    /// Subscriptions force-closed because their push buffer was full.
    pub slow_consumer_drops: Counter,
}

/// One shard's WAL-stream gauges. These are **per-stream frame
/// counters** — every shard's WAL numbers its frames independently
/// from 0 — so they measure stream depth and sync lag, not global
/// commit sequence numbers; cross-shard durability is the separate
/// [`ShardMetrics::watermark`] gauge.
#[derive(Debug, Default)]
pub struct ShardLaneMetrics {
    /// Next LSN the shard's WAL will assign (its append frontier).
    pub next_lsn: Gauge,
    /// Highest LSN the shard has fsynced (its durable frontier).
    pub durable_lsn: Gauge,
}

/// Sharded-engine instruments: per-shard WAL positions and the
/// cross-shard watermark. All zero on unsharded (or memory) engines.
#[derive(Debug)]
pub struct ShardMetrics {
    /// Configured shard count (0 until a sharded store reports in).
    pub shards: Gauge,
    /// Cross-shard durable watermark in **commit sequence numbers**:
    /// every commit strictly below it is durable on all shards. Fed
    /// from the sharded store's per-shard durable CSN frontiers (see
    /// `hygraph_temporal::ShardWatermark`) — not from the per-stream
    /// lane LSNs, which are numbered independently per shard.
    pub watermark: Gauge,
    /// Per-shard lanes, indexed by shard; only the first
    /// [`ShardMetrics::shards`] are meaningful.
    pub lanes: [ShardLaneMetrics; MAX_SHARD_LANES],
    /// Snapshot-publication time per committed batch (µs): the writer's
    /// cost of cloning the instance (structural sharing makes this
    /// O(changed structure)) and swapping it into the read slot.
    pub commit_publish_us: Histogram,
    /// Published snapshot versions currently kept alive — the slot's
    /// current epoch plus every retired epoch a reader still pins.
    pub snapshot_pinned: Gauge,
}

impl Default for ShardMetrics {
    fn default() -> Self {
        Self {
            shards: Gauge::default(),
            watermark: Gauge::default(),
            lanes: std::array::from_fn(|_| ShardLaneMetrics::default()),
            commit_publish_us: Histogram::default(),
            snapshot_pinned: Gauge::default(),
        }
    }
}

impl ShardMetrics {
    /// Records a full `(next_lsn, durable_lsn)` lane report (the shape
    /// of `ShardedStore::shard_lsns`) plus the cross-shard watermark.
    /// Lanes beyond [`MAX_SHARD_LANES`] are ignored.
    pub fn set_lanes(&self, lanes: &[(u64, u64)], watermark: u64) {
        self.shards.set(lanes.len().min(MAX_SHARD_LANES) as i64);
        self.watermark.set(watermark.min(i64::MAX as u64) as i64);
        for (lane, &(next, durable)) in self.lanes.iter().zip(lanes.iter()) {
            lane.next_lsn.set(next.min(i64::MAX as u64) as i64);
            lane.durable_lsn.set(durable.min(i64::MAX as u64) as i64);
        }
    }
}

/// Temporal-history instruments (`hygraph-temporal`).
#[derive(Debug, Default)]
pub struct TemporalMetrics {
    /// `AS OF` queries resolved against the history store.
    pub asof_queries: Counter,
    /// `BETWEEN` queries resolved against the history store.
    pub between_queries: Counter,
    /// Past snapshots reconstructed by replay (cache misses).
    pub snapshot_rebuilds: Counter,
    /// Past snapshots served from the snapshot cache.
    pub snapshot_cache_hits: Counter,
    /// Commits retired from history by retention GC.
    pub gc_commits_folded: Counter,
    /// Commit records currently retained in history.
    pub history_commits: Gauge,
    /// Approximate bytes held by history (base state + deltas).
    pub history_bytes: Gauge,
    /// Longest per-entity version chain currently retained.
    pub version_chain_max: Gauge,
    /// End-to-end `AS OF` snapshot resolution time (µs).
    pub asof_us: Histogram,
}

/// The process-wide instrument tree (see [`crate::get`]).
#[derive(Debug)]
pub struct Registry {
    /// Serving layer.
    pub server: ServerMetrics,
    /// Durability layer.
    pub persist: PersistMetrics,
    /// Query layer.
    pub query: QueryMetrics,
    /// Time-series layer.
    pub ts: TsMetrics,
    /// Standing-subscription layer.
    pub sub: SubMetrics,
    /// Temporal-history layer.
    pub temporal: TemporalMetrics,
    /// Sharded-engine layer.
    pub shard: ShardMetrics,
    /// Slow-query ring buffer.
    pub slow: SlowQueryLog,
}

impl Registry {
    /// A fresh registry whose slow-query ring holds `slow_capacity`
    /// entries.
    pub fn new(slow_capacity: usize) -> Self {
        Self {
            server: ServerMetrics::default(),
            persist: PersistMetrics::default(),
            query: QueryMetrics::default(),
            ts: TsMetrics::default(),
            sub: SubMetrics::default(),
            temporal: TemporalMetrics::default(),
            shard: ShardMetrics::default(),
            slow: SlowQueryLog::new(slow_capacity),
        }
    }

    /// A plain-data copy of every instrument at this instant.
    pub fn snapshot(&self) -> Snapshot {
        let s = &self.server;
        let p = &self.persist;
        let (slow_queries, slow_dropped) = self.slow.snapshot();
        Snapshot {
            server: ServerSnapshot {
                admitted: s.admitted.get(),
                completed: s.completed.get(),
                rejected_overload: s.rejected_overload.get(),
                rejected_deadline: s.rejected_deadline.get(),
                rejected_shutdown: s.rejected_shutdown.get(),
                bad_frames: s.bad_frames.get(),
                drain_deadline_drops: s.drain_deadline_drops.get(),
                queue_depth: s.queue_depth.get(),
                workers_busy: s.workers_busy.get(),
                connections: s.connections.get(),
                admission_us: s.admission_us.snapshot(),
                queue_wait_us: s.queue_wait_us.snapshot(),
                execute_us: s.execute_us.snapshot(),
                encode_us: s.encode_us.snapshot(),
            },
            persist: PersistSnapshot {
                wal_appends: p.wal_appends.get(),
                wal_syncs: p.wal_syncs.get(),
                wal_rotations: p.wal_rotations.get(),
                wal_synced_bytes: p.wal_synced_bytes.get(),
                checkpoints: p.checkpoints.get(),
                recoveries: p.recoveries.get(),
                recovery_frames_replayed: p.recovery_frames_replayed.get(),
                recovery_truncations: p.recovery_truncations.get(),
                wal_append_us: p.wal_append_us.snapshot(),
                wal_sync_us: p.wal_sync_us.snapshot(),
                checkpoint_us: p.checkpoint_us.snapshot(),
                recovery_us: p.recovery_us.snapshot(),
                group_commit_frames: p.group_commit_frames.snapshot(),
            },
            query: QuerySnapshot {
                classes: OpClass::ALL.map(|c| {
                    let om = self.query.class(c);
                    OpSnapshot {
                        count: om.count.get(),
                        errors: om.errors.get(),
                        time_us: om.time_us.snapshot(),
                    }
                }),
                parse_errors: self.query.parse_errors.get(),
                plan_cache_hits: self.query.plan_cache_hits.get(),
                plan_cache_misses: self.query.plan_cache_misses.get(),
                operators: PlanOp::ALL.map(|op| {
                    let om = self.query.operator(op);
                    OperatorSnapshot {
                        invocations: om.invocations.get(),
                        rows_out: om.rows_out.get(),
                        time_us: om.time_us.snapshot(),
                    }
                }),
            },
            ts: TsSnapshot {
                inserts: self.ts.inserts.get(),
                points_inserted: self.ts.points_inserted.get(),
                rollup_hits: self.ts.rollup_hits.get(),
                rollup_boundary_decodes: self.ts.rollup_boundary_decodes.get(),
                sealed_chunks: self.ts.sealed_chunks.get(),
                raw_bytes: self.ts.raw_bytes.get(),
                compressed_bytes: self.ts.compressed_bytes.get(),
            },
            sub: SubSnapshot {
                active: self.sub.active.get(),
                deltas_pushed: self.sub.deltas_pushed.get(),
                fallback_reruns: self.sub.fallback_reruns.get(),
                slow_consumer_drops: self.sub.slow_consumer_drops.get(),
            },
            shard: ShardsSnapshot {
                shards: self.shard.shards.get(),
                watermark: self.shard.watermark.get(),
                lanes: self
                    .shard
                    .lanes
                    .iter()
                    .take(self.shard.shards.get().clamp(0, MAX_SHARD_LANES as i64) as usize)
                    .map(|l| ShardLaneSnapshot {
                        next_lsn: l.next_lsn.get(),
                        durable_lsn: l.durable_lsn.get(),
                    })
                    .collect(),
                commit_publish_us: self.shard.commit_publish_us.snapshot(),
                snapshot_pinned: self.shard.snapshot_pinned.get(),
            },
            temporal: TemporalSnapshot {
                asof_queries: self.temporal.asof_queries.get(),
                between_queries: self.temporal.between_queries.get(),
                snapshot_rebuilds: self.temporal.snapshot_rebuilds.get(),
                snapshot_cache_hits: self.temporal.snapshot_cache_hits.get(),
                gc_commits_folded: self.temporal.gc_commits_folded.get(),
                history_commits: self.temporal.history_commits.get(),
                history_bytes: self.temporal.history_bytes.get(),
                version_chain_max: self.temporal.version_chain_max.get(),
                asof_us: self.temporal.asof_us.snapshot(),
            },
            slow_queries,
            slow_dropped,
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Plain-data copy of [`ServerMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// See [`ServerMetrics::admitted`].
    pub admitted: u64,
    /// See [`ServerMetrics::completed`].
    pub completed: u64,
    /// See [`ServerMetrics::rejected_overload`].
    pub rejected_overload: u64,
    /// See [`ServerMetrics::rejected_deadline`].
    pub rejected_deadline: u64,
    /// See [`ServerMetrics::rejected_shutdown`].
    pub rejected_shutdown: u64,
    /// See [`ServerMetrics::bad_frames`].
    pub bad_frames: u64,
    /// See [`ServerMetrics::drain_deadline_drops`].
    pub drain_deadline_drops: u64,
    /// See [`ServerMetrics::queue_depth`].
    pub queue_depth: i64,
    /// See [`ServerMetrics::workers_busy`].
    pub workers_busy: i64,
    /// See [`ServerMetrics::connections`].
    pub connections: i64,
    /// See [`ServerMetrics::admission_us`].
    pub admission_us: HistogramSnapshot,
    /// See [`ServerMetrics::queue_wait_us`].
    pub queue_wait_us: HistogramSnapshot,
    /// See [`ServerMetrics::execute_us`].
    pub execute_us: HistogramSnapshot,
    /// See [`ServerMetrics::encode_us`].
    pub encode_us: HistogramSnapshot,
}

/// Plain-data copy of [`PersistMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PersistSnapshot {
    /// See [`PersistMetrics::wal_appends`].
    pub wal_appends: u64,
    /// See [`PersistMetrics::wal_syncs`].
    pub wal_syncs: u64,
    /// See [`PersistMetrics::wal_rotations`].
    pub wal_rotations: u64,
    /// See [`PersistMetrics::wal_synced_bytes`].
    pub wal_synced_bytes: u64,
    /// See [`PersistMetrics::checkpoints`].
    pub checkpoints: u64,
    /// See [`PersistMetrics::recoveries`].
    pub recoveries: u64,
    /// See [`PersistMetrics::recovery_frames_replayed`].
    pub recovery_frames_replayed: u64,
    /// See [`PersistMetrics::recovery_truncations`].
    pub recovery_truncations: u64,
    /// See [`PersistMetrics::wal_append_us`].
    pub wal_append_us: HistogramSnapshot,
    /// See [`PersistMetrics::wal_sync_us`].
    pub wal_sync_us: HistogramSnapshot,
    /// See [`PersistMetrics::checkpoint_us`].
    pub checkpoint_us: HistogramSnapshot,
    /// See [`PersistMetrics::recovery_us`].
    pub recovery_us: HistogramSnapshot,
    /// See [`PersistMetrics::group_commit_frames`].
    pub group_commit_frames: HistogramSnapshot,
}

/// Plain-data copy of one [`OpMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Executions.
    pub count: u64,
    /// Failed executions.
    pub errors: u64,
    /// Execution-time distribution (µs).
    pub time_us: HistogramSnapshot,
}

/// Plain-data copy of one [`OperatorMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OperatorSnapshot {
    /// Operator executions.
    pub invocations: u64,
    /// Rows the operator emitted.
    pub rows_out: u64,
    /// Execution-time distribution (µs).
    pub time_us: HistogramSnapshot,
}

/// Plain-data copy of [`QueryMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuerySnapshot {
    /// Per-class stats, indexed by `OpClass as usize`.
    pub classes: [OpSnapshot; OpClass::COUNT],
    /// See [`QueryMetrics::parse_errors`].
    pub parse_errors: u64,
    /// See [`QueryMetrics::plan_cache_hits`].
    pub plan_cache_hits: u64,
    /// See [`QueryMetrics::plan_cache_misses`].
    pub plan_cache_misses: u64,
    /// Per-operator stats, indexed by `PlanOp as usize`.
    pub operators: [OperatorSnapshot; PlanOp::COUNT],
}

impl QuerySnapshot {
    /// The snapshot for `class`.
    pub fn class(&self, class: OpClass) -> &OpSnapshot {
        &self.classes[class as usize]
    }

    /// The snapshot for physical operator `op`.
    pub fn operator(&self, op: PlanOp) -> &OperatorSnapshot {
        &self.operators[op as usize]
    }
}

/// Plain-data copy of [`TsMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TsSnapshot {
    /// See [`TsMetrics::inserts`].
    pub inserts: u64,
    /// See [`TsMetrics::points_inserted`].
    pub points_inserted: u64,
    /// See [`TsMetrics::rollup_hits`].
    pub rollup_hits: u64,
    /// See [`TsMetrics::rollup_boundary_decodes`].
    pub rollup_boundary_decodes: u64,
    /// See [`TsMetrics::sealed_chunks`].
    pub sealed_chunks: i64,
    /// See [`TsMetrics::raw_bytes`].
    pub raw_bytes: i64,
    /// See [`TsMetrics::compressed_bytes`].
    pub compressed_bytes: i64,
}

/// Plain-data copy of [`SubMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubSnapshot {
    /// See [`SubMetrics::active`].
    pub active: i64,
    /// See [`SubMetrics::deltas_pushed`].
    pub deltas_pushed: u64,
    /// See [`SubMetrics::fallback_reruns`].
    pub fallback_reruns: u64,
    /// See [`SubMetrics::slow_consumer_drops`].
    pub slow_consumer_drops: u64,
}

/// Plain-data copy of one [`ShardLaneMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardLaneSnapshot {
    /// See [`ShardLaneMetrics::next_lsn`].
    pub next_lsn: i64,
    /// See [`ShardLaneMetrics::durable_lsn`].
    pub durable_lsn: i64,
}

/// Plain-data copy of [`ShardMetrics`] — only the configured lanes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardsSnapshot {
    /// See [`ShardMetrics::shards`].
    pub shards: i64,
    /// See [`ShardMetrics::watermark`].
    pub watermark: i64,
    /// Per-shard lanes, indexed by shard (length = `shards`).
    pub lanes: Vec<ShardLaneSnapshot>,
    /// See [`ShardMetrics::commit_publish_us`].
    pub commit_publish_us: HistogramSnapshot,
    /// See [`ShardMetrics::snapshot_pinned`].
    pub snapshot_pinned: i64,
}

/// Plain-data copy of [`TemporalMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TemporalSnapshot {
    /// See [`TemporalMetrics::asof_queries`].
    pub asof_queries: u64,
    /// See [`TemporalMetrics::between_queries`].
    pub between_queries: u64,
    /// See [`TemporalMetrics::snapshot_rebuilds`].
    pub snapshot_rebuilds: u64,
    /// See [`TemporalMetrics::snapshot_cache_hits`].
    pub snapshot_cache_hits: u64,
    /// See [`TemporalMetrics::gc_commits_folded`].
    pub gc_commits_folded: u64,
    /// See [`TemporalMetrics::history_commits`].
    pub history_commits: i64,
    /// See [`TemporalMetrics::history_bytes`].
    pub history_bytes: i64,
    /// See [`TemporalMetrics::version_chain_max`].
    pub version_chain_max: i64,
    /// See [`TemporalMetrics::asof_us`].
    pub asof_us: HistogramSnapshot,
}

/// A full point-in-time copy of the registry: what the `Stats` wire
/// request returns and what [`Snapshot::render_text`] renders.
///
/// Deliberately contains no wall-clock field, so encoding is a pure
/// function of the instrument values — two snapshots of an idle
/// registry encode to identical bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Serving layer.
    pub server: ServerSnapshot,
    /// Durability layer.
    pub persist: PersistSnapshot,
    /// Query layer.
    pub query: QuerySnapshot,
    /// Time-series layer.
    pub ts: TsSnapshot,
    /// Standing-subscription layer.
    pub sub: SubSnapshot,
    /// Sharded-engine layer.
    pub shard: ShardsSnapshot,
    /// Temporal-history layer.
    pub temporal: TemporalSnapshot,
    /// Slow-query ring contents, oldest first.
    pub slow_queries: Vec<SlowQueryEntry>,
    /// Slow queries evicted from the ring since startup.
    pub slow_dropped: u64,
}

// ---------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------

/// A malformed [`Snapshot`] encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err("truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid utf-8"))
    }
}

fn put_hist(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    out.extend_from_slice(&h.count.to_le_bytes());
    out.extend_from_slice(&h.sum.to_le_bytes());
    let nonzero = h.buckets.iter().filter(|&&n| n != 0).count() as u16;
    out.extend_from_slice(&nonzero.to_le_bytes());
    for (i, &n) in h.buckets.iter().enumerate() {
        if n != 0 {
            out.extend_from_slice(&(i as u16).to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
    }
}

fn get_hist(r: &mut Reader<'_>) -> Result<HistogramSnapshot, DecodeError> {
    let count = r.u64()?;
    let sum = r.u64()?;
    let nonzero = r.u16()? as usize;
    let mut buckets = [0u64; BUCKETS];
    let mut last: Option<usize> = None;
    let mut total = 0u64;
    for _ in 0..nonzero {
        let idx = r.u16()? as usize;
        if idx >= BUCKETS {
            return Err(err(format!("bucket index {idx} out of range")));
        }
        if last.is_some_and(|l| idx <= l) {
            return Err(err("bucket indices not strictly increasing"));
        }
        let n = r.u64()?;
        if n == 0 {
            return Err(err("zero count in sparse bucket"));
        }
        buckets[idx] = n;
        total = total.checked_add(n).ok_or_else(|| err("count overflow"))?;
        last = Some(idx);
    }
    if total != count {
        return Err(err(format!(
            "histogram count {count} disagrees with bucket mass {total}"
        )));
    }
    Ok(HistogramSnapshot {
        buckets,
        count,
        sum,
    })
}

impl Snapshot {
    /// Encodes the snapshot into its exact binary form. The encoding is
    /// canonical: `from_bytes(to_bytes(s))` returns `s`, and re-encoding
    /// the result reproduces the input bytes bit for bit.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        out.push(SNAPSHOT_VERSION);

        let s = &self.server;
        for v in [
            s.admitted,
            s.completed,
            s.rejected_overload,
            s.rejected_deadline,
            s.rejected_shutdown,
            s.bad_frames,
            s.drain_deadline_drops,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in [s.queue_depth, s.workers_busy, s.connections] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for h in [
            &s.admission_us,
            &s.queue_wait_us,
            &s.execute_us,
            &s.encode_us,
        ] {
            put_hist(&mut out, h);
        }

        let p = &self.persist;
        for v in [
            p.wal_appends,
            p.wal_syncs,
            p.wal_rotations,
            p.wal_synced_bytes,
            p.checkpoints,
            p.recoveries,
            p.recovery_frames_replayed,
            p.recovery_truncations,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for h in [
            &p.wal_append_us,
            &p.wal_sync_us,
            &p.checkpoint_us,
            &p.recovery_us,
            &p.group_commit_frames,
        ] {
            put_hist(&mut out, h);
        }

        for c in &self.query.classes {
            out.extend_from_slice(&c.count.to_le_bytes());
            out.extend_from_slice(&c.errors.to_le_bytes());
            put_hist(&mut out, &c.time_us);
        }
        out.extend_from_slice(&self.query.parse_errors.to_le_bytes());
        out.extend_from_slice(&self.query.plan_cache_hits.to_le_bytes());
        out.extend_from_slice(&self.query.plan_cache_misses.to_le_bytes());
        for o in &self.query.operators {
            out.extend_from_slice(&o.invocations.to_le_bytes());
            out.extend_from_slice(&o.rows_out.to_le_bytes());
            put_hist(&mut out, &o.time_us);
        }

        out.extend_from_slice(&self.ts.inserts.to_le_bytes());
        out.extend_from_slice(&self.ts.points_inserted.to_le_bytes());
        out.extend_from_slice(&self.ts.rollup_hits.to_le_bytes());
        out.extend_from_slice(&self.ts.rollup_boundary_decodes.to_le_bytes());
        out.extend_from_slice(&self.ts.sealed_chunks.to_le_bytes());
        out.extend_from_slice(&self.ts.raw_bytes.to_le_bytes());
        out.extend_from_slice(&self.ts.compressed_bytes.to_le_bytes());

        out.extend_from_slice(&self.sub.active.to_le_bytes());
        out.extend_from_slice(&self.sub.deltas_pushed.to_le_bytes());
        out.extend_from_slice(&self.sub.fallback_reruns.to_le_bytes());
        out.extend_from_slice(&self.sub.slow_consumer_drops.to_le_bytes());

        out.extend_from_slice(&self.shard.shards.to_le_bytes());
        out.extend_from_slice(&self.shard.watermark.to_le_bytes());
        out.extend_from_slice(&(self.shard.lanes.len() as u32).to_le_bytes());
        for lane in &self.shard.lanes {
            out.extend_from_slice(&lane.next_lsn.to_le_bytes());
            out.extend_from_slice(&lane.durable_lsn.to_le_bytes());
        }
        out.extend_from_slice(&self.shard.snapshot_pinned.to_le_bytes());
        put_hist(&mut out, &self.shard.commit_publish_us);

        let t = &self.temporal;
        for v in [
            t.asof_queries,
            t.between_queries,
            t.snapshot_rebuilds,
            t.snapshot_cache_hits,
            t.gc_commits_folded,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in [t.history_commits, t.history_bytes, t.version_chain_max] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        put_hist(&mut out, &t.asof_us);

        out.extend_from_slice(&(self.slow_queries.len() as u32).to_le_bytes());
        for e in &self.slow_queries {
            out.extend_from_slice(&(e.query.len() as u32).to_le_bytes());
            out.extend_from_slice(e.query.as_bytes());
            out.extend_from_slice(&e.duration_us.to_le_bytes());
            out.extend_from_slice(&e.rows.to_le_bytes());
            out.extend_from_slice(&e.plan_fp.to_le_bytes());
        }
        out.extend_from_slice(&self.slow_dropped.to_le_bytes());
        out
    }

    /// Decodes an encoding produced by [`Snapshot::to_bytes`]. Input is
    /// untrusted: malformed bytes error, never panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(err(format!("unsupported snapshot version {version}")));
        }
        let server = ServerSnapshot {
            admitted: r.u64()?,
            completed: r.u64()?,
            rejected_overload: r.u64()?,
            rejected_deadline: r.u64()?,
            rejected_shutdown: r.u64()?,
            bad_frames: r.u64()?,
            drain_deadline_drops: r.u64()?,
            queue_depth: r.i64()?,
            workers_busy: r.i64()?,
            connections: r.i64()?,
            admission_us: get_hist(&mut r)?,
            queue_wait_us: get_hist(&mut r)?,
            execute_us: get_hist(&mut r)?,
            encode_us: get_hist(&mut r)?,
        };
        let persist = PersistSnapshot {
            wal_appends: r.u64()?,
            wal_syncs: r.u64()?,
            wal_rotations: r.u64()?,
            wal_synced_bytes: r.u64()?,
            checkpoints: r.u64()?,
            recoveries: r.u64()?,
            recovery_frames_replayed: r.u64()?,
            recovery_truncations: r.u64()?,
            wal_append_us: get_hist(&mut r)?,
            wal_sync_us: get_hist(&mut r)?,
            checkpoint_us: get_hist(&mut r)?,
            recovery_us: get_hist(&mut r)?,
            group_commit_frames: get_hist(&mut r)?,
        };
        let mut classes: [OpSnapshot; OpClass::COUNT] = Default::default();
        for c in classes.iter_mut() {
            *c = OpSnapshot {
                count: r.u64()?,
                errors: r.u64()?,
                time_us: get_hist(&mut r)?,
            };
        }
        let parse_errors = r.u64()?;
        let plan_cache_hits = r.u64()?;
        let plan_cache_misses = r.u64()?;
        let mut operators: [OperatorSnapshot; PlanOp::COUNT] = Default::default();
        for o in operators.iter_mut() {
            *o = OperatorSnapshot {
                invocations: r.u64()?,
                rows_out: r.u64()?,
                time_us: get_hist(&mut r)?,
            };
        }
        let query = QuerySnapshot {
            classes,
            parse_errors,
            plan_cache_hits,
            plan_cache_misses,
            operators,
        };
        let ts = TsSnapshot {
            inserts: r.u64()?,
            points_inserted: r.u64()?,
            rollup_hits: r.u64()?,
            rollup_boundary_decodes: r.u64()?,
            sealed_chunks: r.i64()?,
            raw_bytes: r.i64()?,
            compressed_bytes: r.i64()?,
        };
        let sub = SubSnapshot {
            active: r.i64()?,
            deltas_pushed: r.u64()?,
            fallback_reruns: r.u64()?,
            slow_consumer_drops: r.u64()?,
        };
        let shard_count = r.i64()?;
        let shard_watermark = r.i64()?;
        let n_lanes = r.u32()? as usize;
        if n_lanes > MAX_SHARD_LANES {
            return Err(err(format!("implausible shard lane count {n_lanes}")));
        }
        let mut lanes = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            lanes.push(ShardLaneSnapshot {
                next_lsn: r.i64()?,
                durable_lsn: r.i64()?,
            });
        }
        let shard = ShardsSnapshot {
            shards: shard_count,
            watermark: shard_watermark,
            lanes,
            snapshot_pinned: r.i64()?,
            commit_publish_us: get_hist(&mut r)?,
        };
        let temporal = TemporalSnapshot {
            asof_queries: r.u64()?,
            between_queries: r.u64()?,
            snapshot_rebuilds: r.u64()?,
            snapshot_cache_hits: r.u64()?,
            gc_commits_folded: r.u64()?,
            history_commits: r.i64()?,
            history_bytes: r.i64()?,
            version_chain_max: r.i64()?,
            asof_us: get_hist(&mut r)?,
        };
        let n_slow = r.u32()? as usize;
        if n_slow > 1 << 20 {
            return Err(err(format!("implausible slow-query count {n_slow}")));
        }
        let mut slow_queries = Vec::with_capacity(n_slow.min(1024));
        for _ in 0..n_slow {
            slow_queries.push(SlowQueryEntry {
                query: r.str()?,
                duration_us: r.u64()?,
                rows: r.u64()?,
                plan_fp: r.u64()?,
            });
        }
        let slow_dropped = r.u64()?;
        if r.pos != bytes.len() {
            return Err(err(format!(
                "{} trailing bytes after snapshot",
                bytes.len() - r.pos
            )));
        }
        Ok(Self {
            server,
            persist,
            query,
            ts,
            sub,
            shard,
            temporal,
            slow_queries,
            slow_dropped,
        })
    }

    /// Renders the snapshot as Prometheus-style text exposition:
    /// counters and gauges as single samples, histograms as summaries
    /// with `quantile` labels plus `_sum`/`_count`, and the slow-query
    /// ring as trailing comment lines.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        };

        let s = &self.server;
        counter("hygraph_server_admitted_total", s.admitted);
        counter("hygraph_server_completed_total", s.completed);
        counter(
            "hygraph_server_rejected_overload_total",
            s.rejected_overload,
        );
        counter(
            "hygraph_server_rejected_deadline_total",
            s.rejected_deadline,
        );
        counter(
            "hygraph_server_rejected_shutdown_total",
            s.rejected_shutdown,
        );
        counter("hygraph_server_bad_frames_total", s.bad_frames);
        counter(
            "hygraph_server_drain_deadline_drops_total",
            s.drain_deadline_drops,
        );
        let p = &self.persist;
        counter("hygraph_persist_wal_appends_total", p.wal_appends);
        counter("hygraph_persist_wal_syncs_total", p.wal_syncs);
        counter("hygraph_persist_wal_rotations_total", p.wal_rotations);
        counter("hygraph_persist_wal_synced_bytes_total", p.wal_synced_bytes);
        counter("hygraph_persist_checkpoints_total", p.checkpoints);
        counter("hygraph_persist_recoveries_total", p.recoveries);
        counter(
            "hygraph_persist_recovery_frames_replayed_total",
            p.recovery_frames_replayed,
        );
        counter(
            "hygraph_persist_recovery_truncations_total",
            p.recovery_truncations,
        );
        for (class, c) in OpClass::ALL.iter().zip(self.query.classes.iter()) {
            counter(&format!("hygraph_query_{}_total", class.name()), c.count);
            counter(
                &format!("hygraph_query_{}_errors_total", class.name()),
                c.errors,
            );
        }
        counter("hygraph_query_parse_errors_total", self.query.parse_errors);
        counter(
            "hygraph_query_plan_cache_hits_total",
            self.query.plan_cache_hits,
        );
        counter(
            "hygraph_query_plan_cache_misses_total",
            self.query.plan_cache_misses,
        );
        for (op, o) in PlanOp::ALL.iter().zip(self.query.operators.iter()) {
            counter(
                &format!("hygraph_query_op_{}_total", op.name()),
                o.invocations,
            );
            counter(
                &format!("hygraph_query_op_{}_rows_total", op.name()),
                o.rows_out,
            );
        }
        counter("hygraph_ts_inserts_total", self.ts.inserts);
        counter("hygraph_ts_points_inserted_total", self.ts.points_inserted);
        counter("hygraph_ts_rollup_hits_total", self.ts.rollup_hits);
        counter(
            "hygraph_ts_rollup_boundary_decodes_total",
            self.ts.rollup_boundary_decodes,
        );
        counter("hygraph_sub_deltas_pushed_total", self.sub.deltas_pushed);
        counter(
            "hygraph_sub_fallback_reruns_total",
            self.sub.fallback_reruns,
        );
        counter(
            "hygraph_sub_slow_consumer_drops_total",
            self.sub.slow_consumer_drops,
        );
        counter(
            "hygraph_temporal_asof_queries_total",
            self.temporal.asof_queries,
        );
        counter(
            "hygraph_temporal_between_queries_total",
            self.temporal.between_queries,
        );
        counter(
            "hygraph_temporal_snapshot_rebuilds_total",
            self.temporal.snapshot_rebuilds,
        );
        counter(
            "hygraph_temporal_snapshot_cache_hits_total",
            self.temporal.snapshot_cache_hits,
        );
        counter(
            "hygraph_temporal_gc_commits_folded_total",
            self.temporal.gc_commits_folded,
        );
        counter("hygraph_slow_queries_dropped_total", self.slow_dropped);

        let mut gauge = |name: &str, v: i64| {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", v.max(0));
        };
        gauge("hygraph_server_queue_depth", s.queue_depth);
        gauge("hygraph_server_workers_busy", s.workers_busy);
        gauge("hygraph_server_connections", s.connections);
        gauge("hygraph_ts_sealed_chunks", self.ts.sealed_chunks);
        gauge("hygraph_ts_raw_bytes", self.ts.raw_bytes);
        gauge("hygraph_ts_compressed_bytes", self.ts.compressed_bytes);
        gauge("hygraph_sub_active", self.sub.active);
        gauge("hygraph_shards", self.shard.shards);
        gauge("hygraph_shard_watermark", self.shard.watermark);
        gauge("hygraph_snapshot_pinned", self.shard.snapshot_pinned);
        gauge(
            "hygraph_temporal_history_commits",
            self.temporal.history_commits,
        );
        gauge(
            "hygraph_temporal_history_bytes",
            self.temporal.history_bytes,
        );
        gauge(
            "hygraph_temporal_version_chain_max",
            self.temporal.version_chain_max,
        );

        if !self.shard.lanes.is_empty() {
            let _ = writeln!(out, "# TYPE hygraph_shard_next_lsn gauge");
            for (i, lane) in self.shard.lanes.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "hygraph_shard_next_lsn{{shard=\"{i}\"}} {}",
                    lane.next_lsn.max(0)
                );
            }
            let _ = writeln!(out, "# TYPE hygraph_shard_durable_lsn gauge");
            for (i, lane) in self.shard.lanes.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "hygraph_shard_durable_lsn{{shard=\"{i}\"}} {}",
                    lane.durable_lsn.max(0)
                );
            }
        }

        let mut summary = |name: &str, h: &HistogramSnapshot| {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        };
        summary("hygraph_server_admission_us", &s.admission_us);
        summary("hygraph_server_queue_wait_us", &s.queue_wait_us);
        summary("hygraph_server_execute_us", &s.execute_us);
        summary("hygraph_server_encode_us", &s.encode_us);
        summary("hygraph_persist_wal_append_us", &p.wal_append_us);
        summary("hygraph_persist_wal_sync_us", &p.wal_sync_us);
        summary("hygraph_persist_checkpoint_us", &p.checkpoint_us);
        summary("hygraph_persist_recovery_us", &p.recovery_us);
        summary(
            "hygraph_persist_group_commit_frames",
            &p.group_commit_frames,
        );
        for (class, c) in OpClass::ALL.iter().zip(self.query.classes.iter()) {
            summary(&format!("hygraph_query_{}_us", class.name()), &c.time_us);
        }
        for (op, o) in PlanOp::ALL.iter().zip(self.query.operators.iter()) {
            summary(&format!("hygraph_query_op_{}_us", op.name()), &o.time_us);
        }
        summary("hygraph_temporal_asof_us", &self.temporal.asof_us);
        summary("hygraph_commit_publish_us", &self.shard.commit_publish_us);

        for e in &self.slow_queries {
            let _ = writeln!(
                out,
                "# SLOW {}us rows={} fp=0x{:016x} {}",
                e.duration_us,
                e.rows,
                e.plan_fp,
                e.query.replace('\n', " ")
            );
        }
        out
    }

    /// A one-line operational summary — what the periodic
    /// `HYGRAPH_METRICS_LOG_EVERY_MS` logger emits.
    pub fn summary_line(&self) -> String {
        let s = &self.server;
        format!(
            "admitted={} completed={} overload={} deadline={} queue={} busy={} \
             exec_p50us={} exec_p95us={} wal_syncs={} slow={}",
            s.admitted,
            s.completed,
            s.rejected_overload,
            s.rejected_deadline,
            s.queue_depth.max(0),
            s.workers_busy.max(0),
            s.execute_us.p50(),
            s.execute_us.p95(),
            self.persist.wal_syncs,
            self.slow_queries.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn busy_registry() -> Registry {
        let r = Registry::new(8);
        r.server.admitted.add(10);
        r.server.completed.add(9);
        r.server.queue_depth.set(1);
        r.server.execute_us.observe(120);
        r.server.execute_us.observe(80_000);
        r.persist.wal_syncs.add(3);
        r.persist.wal_sync_us.observe(4_000);
        r.persist.group_commit_frames.observe(17);
        r.query.class(OpClass::Q1Match).count.add(4);
        r.query.class(OpClass::Q1Match).time_us.observe(250);
        r.query.class(OpClass::Q4Snapshot).errors.inc();
        r.query.plan_cache_hits.add(7);
        r.query.plan_cache_misses.add(2);
        r.query.operator(PlanOp::Match).invocations.add(3);
        r.query.operator(PlanOp::Match).rows_out.add(120);
        r.query.operator(PlanOp::Match).time_us.observe(85);
        r.query.operator(PlanOp::Sort).invocations.inc();
        r.ts.points_inserted.add(1_000);
        r.ts.rollup_hits.add(64);
        r.ts.rollup_boundary_decodes.add(2);
        r.ts.sealed_chunks.set(12);
        r.ts.raw_bytes.set(16_000);
        r.ts.compressed_bytes.set(2_000);
        r.sub.active.set(3);
        r.sub.deltas_pushed.add(21);
        r.sub.fallback_reruns.add(5);
        r.sub.slow_consumer_drops.inc();
        r.temporal.asof_queries.add(6);
        r.temporal.between_queries.add(2);
        r.temporal.snapshot_rebuilds.add(4);
        r.temporal.snapshot_cache_hits.add(9);
        r.temporal.gc_commits_folded.add(3);
        r.temporal.history_commits.set(40);
        r.temporal.history_bytes.set(65_536);
        r.temporal.version_chain_max.set(7);
        r.temporal.asof_us.observe(900);
        r.shard.set_lanes(&[(12, 10), (9, 8), (15, 15)], 8);
        r.shard.commit_publish_us.observe(150);
        r.shard.commit_publish_us.observe(2_300);
        r.shard.snapshot_pinned.set(2);
        r.slow.record(
            "MATCH (n) RETURN n",
            Duration::from_millis(250),
            42,
            0xdead_beef_cafe_f00d,
            Duration::from_millis(100),
        );
        r
    }

    #[test]
    fn codec_roundtrips_exactly() {
        let snap = busy_registry().snapshot();
        let bytes = snap.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded, snap);
        assert_eq!(decoded.to_bytes(), bytes, "re-encoding is bit-identical");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = Registry::new(4).snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn malformed_bytes_error_not_panic() {
        let good = busy_registry().snapshot().to_bytes();
        // truncations at every prefix length
        for cut in 0..good.len() {
            assert!(
                Snapshot::from_bytes(&good[..cut]).is_err(),
                "truncation to {cut} must fail"
            );
        }
        // trailing garbage
        let mut long = good.clone();
        long.push(0);
        assert!(Snapshot::from_bytes(&long).is_err());
        // bad version
        let mut bad = good.clone();
        bad[0] = 99;
        assert!(Snapshot::from_bytes(&bad).is_err());
    }

    #[test]
    fn render_text_contains_the_vocabulary() {
        let text = busy_registry().snapshot().render_text();
        for needle in [
            "hygraph_server_admitted_total 10",
            "hygraph_server_queue_depth 1",
            "hygraph_server_execute_us{quantile=\"0.5\"}",
            "hygraph_persist_wal_syncs_total 3",
            "hygraph_query_q1_match_total 4",
            "hygraph_query_q4_snapshot_errors_total 1",
            "hygraph_query_plan_cache_hits_total 7",
            "hygraph_query_plan_cache_misses_total 2",
            "hygraph_query_op_match_total 3",
            "hygraph_query_op_match_rows_total 120",
            "hygraph_query_op_sort_total 1",
            "hygraph_query_op_match_us{quantile=\"0.5\"}",
            "hygraph_ts_points_inserted_total 1000",
            "hygraph_ts_rollup_hits_total 64",
            "hygraph_ts_rollup_boundary_decodes_total 2",
            "hygraph_ts_sealed_chunks 12",
            "hygraph_ts_raw_bytes 16000",
            "hygraph_ts_compressed_bytes 2000",
            "hygraph_sub_active 3",
            "hygraph_sub_deltas_pushed_total 21",
            "hygraph_sub_fallback_reruns_total 5",
            "hygraph_sub_slow_consumer_drops_total 1",
            "hygraph_temporal_asof_queries_total 6",
            "hygraph_temporal_between_queries_total 2",
            "hygraph_temporal_snapshot_rebuilds_total 4",
            "hygraph_temporal_snapshot_cache_hits_total 9",
            "hygraph_temporal_gc_commits_folded_total 3",
            "hygraph_temporal_history_commits 40",
            "hygraph_temporal_history_bytes 65536",
            "hygraph_temporal_version_chain_max 7",
            "hygraph_temporal_asof_us{quantile=\"0.5\"}",
            "hygraph_shards 3",
            "hygraph_shard_watermark 8",
            "hygraph_shard_next_lsn{shard=\"0\"} 12",
            "hygraph_shard_durable_lsn{shard=\"1\"} 8",
            "hygraph_shard_next_lsn{shard=\"2\"} 15",
            "hygraph_snapshot_pinned 2",
            "hygraph_commit_publish_us{quantile=\"0.5\"}",
            "hygraph_commit_publish_us_count 2",
            "# SLOW 250000us rows=42 fp=0xdeadbeefcafef00d MATCH (n) RETURN n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn summary_line_is_single_line() {
        let line = busy_registry().snapshot().summary_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("admitted=10"));
    }
}
