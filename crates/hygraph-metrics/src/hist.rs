//! Fixed-bucket, log-scale latency histograms.
//!
//! A [`Histogram`] is a flat array of [`BUCKETS`] relaxed atomic
//! counters plus a count and a sum — no locks, no allocation, ~1 KiB
//! per histogram. Values (microseconds by convention, but the scale is
//! unit-agnostic) are bucketed logarithmically with four sub-buckets
//! per octave, giving ≤ 25 % relative error across twelve orders of
//! magnitude — the classic HDR-histogram trade-off at a fraction of
//! the footprint.
//!
//! Reading happens through [`HistogramSnapshot`]: a plain-data copy
//! with quantile extraction ([`HistogramSnapshot::quantile`], p50/p95/
//! p99 helpers) and lossless [`HistogramSnapshot::merge`] — per-worker
//! shards fold into one global distribution without losing a single
//! count (property-tested in `tests/merge_props.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Exact buckets for values 0..8, then 4 sub-buckets per power of two
/// up to 2^35 (≈ 9.5 hours in microseconds); larger values land in the
/// last bucket.
pub const BUCKETS: usize = 8 + 32 * 4;

/// The bucket index a value falls into.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (msb - 2)) & 3) as usize;
    let idx = 8 + (msb - 3) * 4 + sub;
    idx.min(BUCKETS - 1)
}

/// The smallest value mapping to bucket `i`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < 8 {
        return i as u64;
    }
    let octave = 3 + (i - 8) / 4;
    let sub = ((i - 8) % 4) as u64;
    (1u64 << octave) + (sub << (octave - 2))
}

/// The representative (midpoint) value reported for bucket `i`.
#[inline]
fn bucket_mid(i: usize) -> u64 {
    if i < 8 {
        return i as u64;
    }
    let octave = 3 + (i - 8) / 4;
    bucket_lower_bound(i) + (1u64 << (octave - 2)) / 2
}

/// A lock-free, fixed-footprint log-scale histogram (see module docs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation (microseconds by convention; any
    /// non-negative integer scale works).
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration, in microseconds (saturating).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy for quantile extraction and merging. The copy
    /// is internally consistent enough for statistics: each bucket is
    /// read once, and `count`/`sum` are re-derived from the buckets so
    /// a concurrent writer can never make quantiles disagree with the
    /// bucket mass.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_lower_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations (always the sum of `buckets`).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub const fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Folds `other` into `self`. Lossless: every count and the sums
    /// add; quantiles of the merge are the quantiles of the combined
    /// observation multiset (to bucket resolution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The value at quantile `q` in `[0, 1]` (bucket-midpoint
    /// resolution, ≤ 25 % relative error). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (exact, from the running sum). Zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut samples: Vec<u64> = Vec::new();
        for shift in 0u32..64 {
            for offset in [0u64, 1, 2, 3] {
                samples.push((1u64 << shift).saturating_add(offset << shift.saturating_sub(2)));
                samples.push((1u64 << shift).saturating_sub(1));
            }
        }
        samples.sort_unstable();
        let mut last = 0usize;
        for v in samples {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(
                i >= last,
                "index must not decrease: v={v} i={i} last={last}"
            );
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn lower_bounds_invert_the_index() {
        for i in 0..BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of {i} maps back");
            if i + 1 < BUCKETS {
                assert!(lb < bucket_lower_bound(i + 1));
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        for v in 0..8usize {
            assert_eq!(s.buckets[v], 1);
        }
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 28);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        // 100 observations: 90 at ~100us, 9 at ~10_000us, 1 at ~1_000_000us
        for _ in 0..90 {
            h.observe(100);
        }
        for _ in 0..9 {
            h.observe(10_000);
        }
        h.observe(1_000_000);
        let s = h.snapshot();
        let p50 = s.p50() as f64;
        let p95 = s.p95() as f64;
        let p99 = s.p99() as f64;
        assert!((75.0..=150.0).contains(&p50), "p50={p50}");
        assert!((7_500.0..=15_000.0).contains(&p95), "p95={p95}");
        assert!((7_500.0..=15_000.0).contains(&p99), "p99={p99}");
        assert!(s.quantile(1.0) as f64 >= 750_000.0);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 50, 3_000] {
            a.observe(v);
        }
        for v in [2u64, 50, 9_999_999] {
            b.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, 1 + 50 + 3_000 + 2 + 50 + 9_999_999);
        let all = Histogram::new();
        for v in [1u64, 50, 3_000, 2, 50, 9_999_999] {
            all.observe(v);
        }
        assert_eq!(
            merged,
            all.snapshot(),
            "merge == observing everything in one histogram"
        );
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
