//! The slow-query log: a bounded ring buffer of the most recent
//! queries that crossed the configured latency threshold.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// One slow query, as captured at completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// The HyQL text as submitted.
    pub query: String,
    /// End-to-end execution time in microseconds.
    pub duration_us: u64,
    /// Rows the query returned.
    pub rows: u64,
    /// Canonical fingerprint of the query's logical plan (0 when the
    /// text never reached the planner, e.g. parse failures).
    pub plan_fp: u64,
}

struct Inner {
    entries: VecDeque<SlowQueryEntry>,
    dropped: u64,
}

/// A fixed-capacity ring buffer of [`SlowQueryEntry`] values. When
/// full, the oldest entry is evicted (and counted) — the log always
/// holds the *most recent* slow queries.
///
/// The mutex is only taken for queries that actually crossed the
/// threshold, so the fast path (a sub-threshold query) costs one
/// comparison.
pub struct SlowQueryLog {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SlowQueryLog {
    /// An empty log holding at most `capacity` entries (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records a completed query if it crossed `threshold`; evicts the
    /// oldest entry when full. A zero `threshold` disables capture.
    /// `plan_fp` is the logical-plan fingerprint (0 = not planned).
    pub fn record(
        &self,
        query: &str,
        duration: Duration,
        rows: u64,
        plan_fp: u64,
        threshold: Duration,
    ) {
        if threshold.is_zero() || duration < threshold {
            return;
        }
        let entry = SlowQueryEntry {
            query: query.to_owned(),
            duration_us: u64::try_from(duration.as_micros()).unwrap_or(u64::MAX),
            rows,
            plan_fp,
        };
        let mut inner = self.lock();
        if inner.entries.len() >= self.capacity {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(entry);
    }

    /// The captured entries, oldest first, plus how many older entries
    /// the ring has evicted.
    pub fn snapshot(&self) -> (Vec<SlowQueryEntry>, u64) {
        let inner = self.lock();
        (inner.entries.iter().cloned().collect(), inner.dropped)
    }

    /// Clears the log (tests and operator resets).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.dropped = 0;
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("SlowQueryLog")
            .field("capacity", &self.capacity)
            .field("len", &inner.entries.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn below_threshold_is_not_captured() {
        let log = SlowQueryLog::new(4);
        log.record("fast", Duration::from_micros(10), 1, 0, MS);
        assert_eq!(log.snapshot().0.len(), 0);
        // zero threshold disables capture outright
        log.record("any", Duration::from_secs(10), 1, 0, Duration::ZERO);
        assert_eq!(log.snapshot().0.len(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent() {
        let log = SlowQueryLog::new(2);
        for i in 0..5 {
            log.record(
                &format!("q{i}"),
                MS * (i + 1),
                i as u64,
                0xfeed + i as u64,
                MS,
            );
        }
        let (entries, dropped) = log.snapshot();
        assert_eq!(dropped, 3);
        assert_eq!(
            entries.iter().map(|e| e.query.as_str()).collect::<Vec<_>>(),
            vec!["q3", "q4"]
        );
        assert_eq!(entries[1].duration_us, 5_000);
        assert_eq!(entries[1].rows, 4);
        assert_eq!(entries[1].plan_fp, 0xfeed + 4);
    }

    #[test]
    fn clear_resets_everything() {
        let log = SlowQueryLog::new(1);
        log.record("a", MS, 0, 1, MS);
        log.record("b", MS, 0, 2, MS);
        log.clear();
        assert_eq!(log.snapshot(), (vec![], 0));
    }
}
