//! # hygraph-metrics — zero-dependency observability for HyGraph
//!
//! A lock-cheap metrics layer the whole stack records into:
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomics, one `fetch_add` per event.
//! * [`Histogram`] — fixed-bucket log-scale latency histograms
//!   (~1 KiB each, no locks, no allocation) with p50/p95/p99
//!   extraction and lossless cross-shard [`HistogramSnapshot::merge`].
//! * [`SlowQueryLog`] — a bounded ring of the most recent HyQL queries
//!   that crossed `HYGRAPH_SLOW_QUERY_MS`.
//! * [`Registry`] — the strongly-typed tree of all instruments, grouped
//!   by layer (serving / durability / query / time series), with a
//!   plain-data [`Snapshot`] that serialises to a canonical binary form
//!   (for the server's `Stats` wire request) and renders as
//!   Prometheus-style text ([`Snapshot::render_text`]).
//!
//! ## The one-branch contract
//!
//! Instrumented code guards every record with [`get`]:
//!
//! ```
//! if let Some(m) = hygraph_metrics::get() {
//!     m.server.admitted.inc();
//! }
//! ```
//!
//! When metrics are disabled ([`MetricsConfig::enabled`] false, e.g.
//! `HYGRAPH_METRICS=0`), [`get`] returns `None` from a single
//! initialise-once atomic load — the entire observability layer costs
//! one predictable branch per call site. `hygraph-bench`'s `metrics`
//! binary measures exactly this.
//!
//! ## Configuration
//!
//! [`MetricsConfig`] follows the workspace's layered convention —
//! explicit install beats environment beats default (see
//! `OPERATIONS.md` at the repo root for the full knob table):
//!
//! | Env var | Default | Meaning |
//! |---------|---------|---------|
//! | `HYGRAPH_METRICS` | `1` | `0`/`false`/`off` disables the registry |
//! | `HYGRAPH_SLOW_QUERY_MS` | `100` | slow-query threshold; `0` disables capture |
//! | `HYGRAPH_SLOW_QUERY_CAP` | `128` | slow-query ring capacity |
//! | `HYGRAPH_METRICS_LOG_EVERY_MS` | `0` | server's periodic stats log period; `0` off |
//!
//! The registry is process-global and initialised exactly once: either
//! explicitly via [`install`] (first caller wins — benches install a
//! disabled config before touching any instrumented code) or lazily
//! from the environment on first [`get`].

#![deny(missing_docs)]

mod counter;
mod hist;
mod registry;
mod slow;

pub use counter::{Counter, Gauge};
pub use hist::{bucket_index, bucket_lower_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    DecodeError, OpClass, OpMetrics, OpSnapshot, OperatorMetrics, OperatorSnapshot, PersistMetrics,
    PersistSnapshot, PlanOp, QueryMetrics, QuerySnapshot, Registry, ServerMetrics, ServerSnapshot,
    Snapshot, TemporalMetrics, TemporalSnapshot, TsMetrics, TsSnapshot,
};
pub use slow::{SlowQueryEntry, SlowQueryLog};

use std::sync::OnceLock;
use std::time::Duration;

/// Resolved observability configuration.
///
/// Layered like every other HyGraph config: an explicit [`install`]
/// beats the `HYGRAPH_*` environment, which beats the defaults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Whether the registry exists at all. When false, [`get`] returns
    /// `None` and instrumentation costs one branch.
    pub enabled: bool,
    /// Queries at least this slow are captured in the slow-query ring.
    /// [`Duration::ZERO`] disables capture.
    pub slow_query_threshold: Duration,
    /// Capacity of the slow-query ring.
    pub slow_query_cap: usize,
    /// Period of the server's one-line stats log. Zero disables it.
    pub log_every: Duration,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            slow_query_threshold: Duration::from_millis(100),
            slow_query_cap: 128,
            log_every: Duration::ZERO,
        }
    }
}

fn flag(raw: Option<&str>, default: bool) -> bool {
    match raw.map(str::trim) {
        None | Some("") => default,
        Some(s) => !matches!(
            s.to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
    }
}

fn ms(raw: Option<&str>, default_ms: u64) -> Duration {
    Duration::from_millis(
        raw.and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(default_ms),
    )
}

impl MetricsConfig {
    /// The configuration the `HYGRAPH_*` environment describes.
    pub fn from_env() -> Self {
        let var = |k: &str| std::env::var(k).ok();
        Self::from_raw(
            var("HYGRAPH_METRICS").as_deref(),
            var("HYGRAPH_SLOW_QUERY_MS").as_deref(),
            var("HYGRAPH_SLOW_QUERY_CAP").as_deref(),
            var("HYGRAPH_METRICS_LOG_EVERY_MS").as_deref(),
        )
    }

    /// Resolution from raw knob values (the testable core of
    /// [`MetricsConfig::from_env`]).
    fn from_raw(
        metrics: Option<&str>,
        slow_ms: Option<&str>,
        slow_cap: Option<&str>,
        log_every_ms: Option<&str>,
    ) -> Self {
        let d = Self::default();
        Self {
            enabled: flag(metrics, d.enabled),
            slow_query_threshold: ms(slow_ms, 100),
            slow_query_cap: slow_cap
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(d.slow_query_cap),
            log_every: ms(log_every_ms, 0),
        }
    }

    /// A config with the registry switched off — what benches install
    /// to measure the uninstrumented baseline.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

struct Global {
    config: MetricsConfig,
    /// `Some` iff `config.enabled`.
    registry: Option<Registry>,
}

static GLOBAL: OnceLock<Global> = OnceLock::new();

fn global() -> &'static Global {
    GLOBAL.get_or_init(|| {
        let config = MetricsConfig::from_env();
        let registry = config.enabled.then(|| Registry::new(config.slow_query_cap));
        Global { config, registry }
    })
}

/// Installs `config` as the process-wide observability configuration.
///
/// Must run before the first [`get`] anywhere in the process; the
/// registry is initialise-once and the first resolution wins. Returns
/// `true` if this call performed the initialisation, `false` if a
/// configuration (installed or environment-resolved) was already live.
pub fn install(config: MetricsConfig) -> bool {
    let mut won = false;
    GLOBAL.get_or_init(|| {
        won = true;
        let registry = config.enabled.then(|| Registry::new(config.slow_query_cap));
        Global { config, registry }
    });
    won
}

/// The global registry, or `None` when metrics are disabled.
///
/// After the one-time initialisation this is a single atomic load plus
/// a branch — cheap enough for the hottest paths in the stack.
#[inline]
pub fn get() -> Option<&'static Registry> {
    global().registry.as_ref()
}

/// Whether the global registry is live.
#[inline]
pub fn enabled() -> bool {
    get().is_some()
}

/// The resolved process-wide configuration (meaningful even when the
/// registry is disabled).
pub fn config() -> &'static MetricsConfig {
    &global().config
}

/// The slow-query capture threshold ([`Duration::ZERO`] = off).
#[inline]
pub fn slow_query_threshold() -> Duration {
    global().config.slow_query_threshold
}

/// A snapshot of the global registry, or `None` when disabled.
pub fn snapshot() -> Option<Snapshot> {
    get().map(Registry::snapshot)
}

/// RAII timer for one operator execution: on drop, bumps the class's
/// execution counter and records the elapsed time into its histogram.
/// Does nothing (and never reads the clock) when metrics are disabled.
///
/// ```
/// use hygraph_metrics::{OpClass, OpTimer};
/// {
///     let _t = OpTimer::new(OpClass::Q3Traverse);
///     // ... run the traversal ...
/// } // recorded here
/// ```
#[must_use = "the timer records on drop; binding it to _ drops immediately"]
pub struct OpTimer {
    class: OpClass,
    start: Option<std::time::Instant>,
    failed: bool,
}

impl OpTimer {
    /// Starts timing one execution of `class`.
    pub fn new(class: OpClass) -> Self {
        Self {
            class,
            start: enabled().then(std::time::Instant::now),
            failed: false,
        }
    }

    /// Marks this execution as failed; the class's error counter is
    /// bumped on drop.
    pub fn fail(&mut self) {
        self.failed = true;
    }
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        if let (Some(m), Some(s)) = (get(), self.start) {
            let om = m.query.class(self.class);
            om.count.inc();
            om.time_us.observe_duration(s.elapsed());
            if self.failed {
                om.errors.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_resolution_layers_defaults() {
        let d = MetricsConfig::from_raw(None, None, None, None);
        assert_eq!(d, MetricsConfig::default());
        assert!(d.enabled);
        assert_eq!(d.slow_query_threshold, Duration::from_millis(100));
        assert_eq!(d.slow_query_cap, 128);
        assert_eq!(d.log_every, Duration::ZERO);
    }

    #[test]
    fn raw_resolution_parses_overrides() {
        let c = MetricsConfig::from_raw(Some("off"), Some("250"), Some("16"), Some("1000"));
        assert!(!c.enabled);
        assert_eq!(c.slow_query_threshold, Duration::from_millis(250));
        assert_eq!(c.slow_query_cap, 16);
        assert_eq!(c.log_every, Duration::from_secs(1));
    }

    #[test]
    fn flag_parsing_accepts_the_usual_spellings() {
        for off in ["0", "false", "OFF", " no "] {
            assert!(!flag(Some(off), true), "{off:?} should disable");
        }
        for on in ["1", "true", "on", "yes", "anything-else"] {
            assert!(flag(Some(on), false), "{on:?} should enable");
        }
        assert!(flag(None, true));
        assert!(!flag(None, false));
        assert!(
            flag(Some(""), true),
            "empty string falls through to default"
        );
    }

    #[test]
    fn garbage_numeric_knobs_fall_back_to_defaults() {
        let c = MetricsConfig::from_raw(None, Some("not-a-number"), Some("-3"), Some("1e9"));
        assert_eq!(c.slow_query_threshold, Duration::from_millis(100));
        assert_eq!(c.slow_query_cap, 128);
        assert_eq!(c.log_every, Duration::ZERO);
    }

    // The process-global registry itself is exercised by the
    // integration tests (tests/ and the server's stats_wire tests),
    // which control initialisation order; unit tests here stick to the
    // pure config resolution so they stay order-independent.

    #[test]
    fn disabled_config_has_no_registry_semantics() {
        let c = MetricsConfig::disabled();
        assert!(!c.enabled);
        // everything else stays at defaults
        assert_eq!(c.slow_query_cap, MetricsConfig::default().slow_query_cap);
    }
}
