//! Property tests for histogram sharding: folding per-worker shard
//! snapshots into one global distribution must never lose (or invent)
//! a count, and the merged snapshot must be indistinguishable from one
//! histogram that observed every value itself. This is the invariant
//! the server relies on when it merges per-connection timings into the
//! wire-exposed `Stats` snapshot.

use hygraph_metrics::{bucket_index, Histogram, HistogramSnapshot, Snapshot};
use proptest::prelude::*;

proptest! {
    /// shards → merge == one histogram observing everything.
    #[test]
    fn merge_never_loses_counts(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..=1u64 << 40, 0..64),
            1..8,
        ),
    ) {
        let global = Histogram::new();
        let mut merged = HistogramSnapshot::empty();
        let mut expected_count = 0u64;
        let mut expected_sum = 0u64;
        for shard_values in &shards {
            let shard = Histogram::new();
            for &v in shard_values {
                shard.observe(v);
                global.observe(v);
                expected_count += 1;
                expected_sum += v;
            }
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged.count, expected_count);
        prop_assert_eq!(merged.sum, expected_sum);
        // bucket-for-bucket identical to the unsharded histogram
        prop_assert_eq!(&merged, &global.snapshot());
        // total bucket mass equals the count — nothing fell between buckets
        let mass: u64 = merged.buckets.iter().sum();
        prop_assert_eq!(mass, expected_count);
    }

    /// Merging is order-independent: any permutation of shards folds to
    /// the same snapshot.
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..=1u64 << 30, 0..32),
        b in prop::collection::vec(0u64..=1u64 << 30, 0..32),
    ) {
        let ha = Histogram::new();
        for &v in &a { ha.observe(v); }
        let hb = Histogram::new();
        for &v in &b { hb.observe(v); }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Every value lands in exactly one bucket whose range contains it.
    #[test]
    fn bucketing_is_a_partition(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < hygraph_metrics::BUCKETS);
        prop_assert!(hygraph_metrics::bucket_lower_bound(i) <= v);
        if i + 1 < hygraph_metrics::BUCKETS {
            prop_assert!(v < hygraph_metrics::bucket_lower_bound(i + 1));
        }
    }

    /// The snapshot codec round-trips exactly for arbitrary histogram
    /// contents riding inside a full snapshot.
    #[test]
    fn snapshot_codec_roundtrips_arbitrary_histograms(
        exec in prop::collection::vec(0u64..=1u64 << 40, 0..128),
        wal in prop::collection::vec(0u64..=1u64 << 30, 0..64),
    ) {
        let mut snap = Snapshot::default();
        let h = Histogram::new();
        for &v in &exec { h.observe(v); }
        snap.server.execute_us = h.snapshot();
        let h = Histogram::new();
        for &v in &wal { h.observe(v); }
        snap.persist.wal_sync_us = h.snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("canonical bytes decode");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}
