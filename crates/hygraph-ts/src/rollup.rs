//! Hierarchical rollup pyramid over per-chunk summaries.
//!
//! A [`Pyramid`] is a fanout-`F` static tree (a segment tree with wide
//! nodes) whose leaves are the [`Summary`] of consecutive storage units
//! — sealed chunks in [`crate::TsStore`], completed summary blocks in
//! [`crate::MultiSeries`]. A range query over leaf positions merges the
//! O(F·log_F n) largest aligned nodes covering the range instead of
//! every leaf, which is what turns "aggregate a year" into a handful of
//! precomputed merges.
//!
//! **Determinism contract.** Every level is a *pure function* of the
//! leaves: incremental updates ([`Pyramid::set_leaf`],
//! [`Pyramid::push_leaf`]) recompute each affected ancestor from its
//! children rather than patching it in place, so a pyramid maintained
//! incrementally is node-for-node identical to one rebuilt from
//! scratch, and [`Pyramid::range`] never depends on update history.
//! Floating-point sums may still differ from a flat left-to-right merge
//! of the same leaves (addition is not associative); callers that
//! require bit-stable results must stay on one access path, which the
//! store guarantees by making path selection a function of state alone.

use crate::store::Summary;

/// Default node fanout when `HYGRAPH_TS_ROLLUP_FANOUT` is unset.
pub const DEFAULT_FANOUT: usize = 16;

/// A static fanout-`F` summary tree over an append-friendly leaf list.
#[derive(Clone, Debug)]
pub struct Pyramid {
    fanout: usize,
    /// `levels[0]` are the leaves; each higher level merges `fanout`
    /// children. The top level has at most one node.
    levels: Vec<Vec<Summary>>,
}

impl Default for Pyramid {
    /// An empty pyramid with the default fanout (the leaf level always
    /// exists, so `push_leaf` works on a default-constructed pyramid).
    fn default() -> Self {
        Pyramid::build(Vec::new(), DEFAULT_FANOUT)
    }
}

/// Merges a run of summaries left to right.
fn fold(run: &[Summary]) -> Summary {
    let mut acc = Summary::new();
    for s in run {
        acc.merge(s);
    }
    acc
}

impl Pyramid {
    /// Builds a pyramid bottom-up from `leaves`. `fanout` is clamped to
    /// at least 2.
    pub fn build(leaves: Vec<Summary>, fanout: usize) -> Pyramid {
        let fanout = fanout.max(2);
        let mut levels = vec![leaves];
        while levels.last().expect("at least one level").len() > 1 {
            let below = levels.last().expect("at least one level");
            levels.push(below.chunks(fanout).map(fold).collect());
        }
        Pyramid { fanout, levels }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the pyramid has no leaves.
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }

    /// The configured node fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Merged summary of leaves `[a, b)`, plus the number of
    /// precomputed nodes merged to produce it. Merges the largest
    /// aligned node at each step, left to right.
    pub fn range(&self, mut a: usize, b: usize) -> (Summary, usize) {
        debug_assert!(b <= self.len(), "range end past leaves");
        let mut acc = Summary::new();
        let mut nodes = 0usize;
        while a < b {
            // widest aligned node starting at `a` that fits in [a, b)
            let mut lvl = 0usize;
            let mut span = 1usize;
            loop {
                let wider = span * self.fanout;
                if lvl + 1 < self.levels.len() && a.is_multiple_of(wider) && a + wider <= b {
                    span = wider;
                    lvl += 1;
                } else {
                    break;
                }
            }
            acc.merge(&self.levels[lvl][a / span]);
            nodes += 1;
            a += span;
        }
        (acc, nodes)
    }

    /// Recomputes the path from an updated ancestor position upward,
    /// always re-folding each node from its children.
    fn refresh_ancestors(&mut self, leaf: usize) {
        let mut idx = leaf;
        let mut lvl = 0;
        while self.levels[lvl].len() > 1 {
            let parent = idx / self.fanout;
            let start = parent * self.fanout;
            let end = (start + self.fanout).min(self.levels[lvl].len());
            let merged = fold(&self.levels[lvl][start..end]);
            if lvl + 1 == self.levels.len() {
                self.levels.push(Vec::new());
            }
            let above = &mut self.levels[lvl + 1];
            if parent == above.len() {
                above.push(merged);
            } else {
                above[parent] = merged;
            }
            lvl += 1;
            idx = parent;
        }
        // a level that shrank to describe everything makes upper levels
        // stale only on rebuilds, which replace the whole structure
    }

    /// Replaces leaf `i` and refreshes its ancestors.
    pub fn set_leaf(&mut self, i: usize, s: Summary) {
        self.levels[0][i] = s;
        self.refresh_ancestors(i);
    }

    /// Appends a leaf and refreshes (or grows) its ancestors. The
    /// result is identical to [`Pyramid::build`] over the extended leaf
    /// list.
    pub fn push_leaf(&mut self, s: Summary) {
        self.levels[0].push(s);
        self.refresh_ancestors(self.levels[0].len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Summary> {
        (0..n)
            .map(|i| Summary::of(&[i as f64, -(i as f64)]))
            .collect()
    }

    fn assert_same(a: &Pyramid, b: &Pyramid) {
        assert_eq!(a.levels.len(), b.levels.len(), "level count");
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(la.len(), lb.len());
            for (x, y) in la.iter().zip(lb) {
                assert_eq!(x.count, y.count);
                assert_eq!(x.sum.to_bits(), y.sum.to_bits());
                assert_eq!(x.min.to_bits(), y.min.to_bits());
                assert_eq!(x.max.to_bits(), y.max.to_bits());
            }
        }
    }

    #[test]
    fn range_matches_flat_fold_everywhere() {
        for fanout in [2, 3, 16] {
            for n in [0usize, 1, 2, 5, 16, 17, 33, 100] {
                let ls = leaves(n);
                let p = Pyramid::build(ls.clone(), fanout);
                assert_eq!(p.len(), n);
                for a in 0..=n {
                    for b in a..=n {
                        let (got, _) = p.range(a, b);
                        let want = fold(&ls[a..b]);
                        assert_eq!(got.count, want.count, "f={fanout} n={n} [{a},{b})");
                        assert_eq!(got.min, want.min);
                        assert_eq!(got.max, want.max);
                        assert!((got.sum - want.sum).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn aligned_ranges_merge_few_nodes() {
        let p = Pyramid::build(leaves(256), 16);
        let (_, nodes) = p.range(0, 256);
        assert_eq!(nodes, 1, "whole range is the root");
        let (_, nodes) = p.range(0, 16);
        assert_eq!(nodes, 1, "one full level-1 node");
        let (s, nodes) = p.range(1, 255);
        assert!(nodes <= 2 * 15 + 14, "O(F log n) nodes, got {nodes}");
        assert_eq!(s.count, 254 * 2);
    }

    #[test]
    fn push_leaf_matches_rebuild() {
        for fanout in [2, 4, 16] {
            let mut inc = Pyramid::build(Vec::new(), fanout);
            for n in 1..=70 {
                inc.push_leaf(Summary::of(&[n as f64]));
                let built =
                    Pyramid::build((1..=n).map(|i| Summary::of(&[i as f64])).collect(), fanout);
                assert_same(&inc, &built);
            }
        }
    }

    #[test]
    fn set_leaf_matches_rebuild() {
        for fanout in [2, 16] {
            let n = 45;
            let mut ls = leaves(n);
            let mut p = Pyramid::build(ls.clone(), fanout);
            for i in [0usize, 7, 16, 44, 20] {
                ls[i] = Summary::of(&[100.0 + i as f64]);
                p.set_leaf(i, ls[i]);
                assert_same(&p, &Pyramid::build(ls.clone(), fanout));
            }
        }
    }

    #[test]
    fn incremental_is_history_independent() {
        // same leaves reached by different update orders → identical tree
        let fanout = 4;
        let ls = leaves(30);
        let mut a = Pyramid::build(leaves(30), fanout);
        for i in (0..30).rev() {
            a.set_leaf(i, ls[i]);
        }
        let mut b = Pyramid::build(Vec::new(), fanout);
        for s in &ls {
            b.push_leaf(*s);
        }
        assert_same(&a, &b);
        assert_same(&a, &Pyramid::build(ls, fanout));
    }
}
