//! Store-level tuning knobs for `hygraph-ts`.
//!
//! Two environment variables configure every store created through
//! [`crate::TsStore::new`] / [`crate::TsStore::with_chunk_width`]:
//!
//! * `HYGRAPH_TS_COMPRESS` — seal cold chunks into compressed columnar
//!   blocks (`1`/`on`/`true` to enable, `0`/`off`/`false` to disable;
//!   default **on**). The active head chunk always stays plain, so the
//!   append fast path is unaffected either way.
//! * `HYGRAPH_TS_ROLLUP_FANOUT` — node fanout of the per-series rollup
//!   pyramid (default [`crate::rollup::DEFAULT_FANOUT`], clamped to at
//!   least 2). Fanout only changes constant factors, never results.
//!
//! Both are read once per process. Tests (and embedders that need
//! explicit control) bypass the environment with
//! [`crate::TsStore::with_options`].

use crate::rollup::DEFAULT_FANOUT;
use std::sync::OnceLock;

/// Per-store storage options (see the module docs for the environment
/// defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TsOptions {
    /// Whether cold (non-head) chunks are sealed into compressed
    /// columnar blocks.
    pub compress: bool,
    /// Node fanout of the rollup pyramid (≥ 2).
    pub rollup_fanout: usize,
}

impl Default for TsOptions {
    fn default() -> Self {
        Self {
            compress: true,
            rollup_fanout: DEFAULT_FANOUT,
        }
    }
}

fn parse_bool(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

impl TsOptions {
    /// The process-wide options: environment variables over defaults,
    /// read once and cached.
    pub fn from_env() -> Self {
        static CACHE: OnceLock<TsOptions> = OnceLock::new();
        *CACHE.get_or_init(|| {
            let d = TsOptions::default();
            let compress = std::env::var("HYGRAPH_TS_COMPRESS")
                .ok()
                .and_then(|v| parse_bool(&v))
                .unwrap_or(d.compress);
            let rollup_fanout = std::env::var("HYGRAPH_TS_ROLLUP_FANOUT")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .map_or(d.rollup_fanout, |f| f.max(2));
            TsOptions {
                compress,
                rollup_fanout,
            }
        })
    }

    /// Returns the options with compression switched `on`/off.
    pub fn compress(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    /// Returns the options with the pyramid fanout set (clamped to 2).
    pub fn rollup_fanout(mut self, fanout: usize) -> Self {
        self.rollup_fanout = fanout.max(2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_clamping() {
        let o = TsOptions::default().compress(false).rollup_fanout(1);
        assert!(!o.compress);
        assert_eq!(o.rollup_fanout, 2, "fanout clamps to 2");
        let o = o.compress(true).rollup_fanout(64);
        assert!(o.compress);
        assert_eq!(o.rollup_fanout, 64);
    }

    #[test]
    fn bool_parsing() {
        for s in ["1", "true", "ON", " yes "] {
            assert_eq!(parse_bool(s), Some(true), "{s}");
        }
        for s in ["0", "False", "off", "NO"] {
            assert_eq!(parse_bool(s), Some(false), "{s}");
        }
        assert_eq!(parse_bool("maybe"), None);
    }
}
