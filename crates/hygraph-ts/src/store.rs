//! Hypertable-style chunked time-series store.
//!
//! [`TsStore`] is the dedicated time-series engine behind the paper's
//! *polyglot persistence* design (TimeTravelDB = graph store +
//! TimescaleDB). It borrows TimescaleDB's load-bearing mechanisms:
//!
//! 1. **Time partitioning** — each series is split into fixed-width
//!    chunks keyed by chunk start time, held in an ordered index
//!    (`BTreeMap`). A range query touches only the chunks intersecting
//!    the interval (chunk pruning).
//! 2. **Per-chunk sparse aggregates** — every chunk maintains
//!    count/sum/min/max incrementally, so aggregate queries read whole
//!    covered chunks in O(1) and only scan the (at most two) boundary
//!    chunks.
//! 3. **Columnar compression** — cold chunks are *sealed* into
//!    delta-of-delta + Gorilla-XOR blocks ([`crate::compress`]); only
//!    the active head chunk stays as plain sorted arrays, so the insert
//!    fast path never pays for compression. Sealed chunks decode only
//!    when an interval boundary cuts through them.
//! 4. **Rollup pyramid** — per series, a fanout-F summary tree over
//!    the non-head chunk summaries ([`crate::rollup`]) turns
//!    wide-interval aggregates into O(F·log n) precomputed merges
//!    instead of O(#chunks).
//!
//! This is exactly the access-path asymmetry that produces the Table-1
//! speedups over the all-in-graph layout.

use crate::compress::SealedBlock;
use crate::config::TsOptions;
use crate::rollup::Pyramid;
use crate::series::TimeSeries;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::{Duration, HyGraphError, Interval, Result, SeriesId, Timestamp};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Aggregate functions supported by the store and the query engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Number of observations.
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

impl AggKind {
    /// Parses an aggregate name as used in HyQL (`mean`, `avg`, ...),
    /// case-insensitively. Unknown names are a typed error listing the
    /// valid kinds, so typos surface at the HyQL layer instead of being
    /// swallowed as `None`.
    pub fn parse(s: &str) -> Result<AggKind> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "mean" | "avg" => AggKind::Mean,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            _ => {
                return Err(HyGraphError::invalid(format!(
                    "unknown aggregate kind '{s}' (valid: count, sum, mean, avg, min, max)"
                )))
            }
        })
    }
}

/// Incrementally-maintained statistics of a chunk (or any value set).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value (`+∞` when empty).
    pub min: f64,
    /// Maximum value (`-∞` when empty).
    pub max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges another summary in.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the summarised values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Extracts the requested aggregate; `None` when empty (except Count,
    /// which is 0).
    pub fn get(&self, kind: AggKind) -> Option<f64> {
        match kind {
            AggKind::Count => Some(self.count as f64),
            AggKind::Sum => (self.count > 0).then_some(self.sum),
            AggKind::Mean => self.mean(),
            AggKind::Min => (self.count > 0).then_some(self.min),
            AggKind::Max => (self.count > 0).then_some(self.max),
        }
    }

    /// Builds a summary by scanning a value slice.
    pub fn of(values: &[f64]) -> Summary {
        let mut s = Summary::new();
        for &v in values {
            s.add(v);
        }
        s
    }
}

/// Aggregate sizes of the sealed (compressed) chunks of a store — the
/// store-side ground truth behind the process-wide compression gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Number of sealed chunks.
    pub sealed_chunks: u64,
    /// Bytes the sealed columns would occupy uncompressed.
    pub raw_bytes: u64,
    /// Bytes the sealed columns occupy compressed.
    pub compressed_bytes: u64,
}

impl CompressionStats {
    /// Raw-to-compressed size ratio (0 when nothing is sealed).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// The physical representation of one chunk's columns.
#[derive(Clone, Debug)]
pub(crate) enum ChunkData {
    /// Mutable sorted arrays — the head chunk, and any chunk reopened
    /// by an out-of-order insert.
    Plain {
        /// Sorted, unique observation times.
        times: Vec<Timestamp>,
        /// Values aligned with `times`.
        values: Vec<f64>,
    },
    /// Immutable compressed columns.
    Sealed(SealedBlock),
}

/// One time partition of one series.
#[derive(Clone, Debug)]
pub(crate) struct Chunk {
    /// Chunk start time (also the map key; kept here so sealed blocks
    /// can decode without outside context).
    pub(crate) key: Timestamp,
    pub(crate) data: ChunkData,
    /// Sparse aggregate of the chunk's values. Stale while `dirty`.
    pub(crate) summary: Summary,
    /// Set when an overwrite invalidated a summary extreme; the summary
    /// is rebuilt lazily on the next read (or at seal time) instead of
    /// rescanning the chunk on every duplicate insert.
    pub(crate) dirty: bool,
}

/// What [`Chunk::insert`] did, for index and rollup maintenance.
enum ChunkInsert {
    /// A new observation was added.
    Added,
    /// An existing timestamp's value was replaced.
    Overwrote,
}

impl Chunk {
    fn new_plain(key: Timestamp) -> Chunk {
        Chunk {
            key,
            data: ChunkData::Plain {
                times: Vec::new(),
                values: Vec::new(),
            },
            summary: Summary::new(),
            dirty: false,
        }
    }

    /// Number of observations.
    pub(crate) fn len(&self) -> usize {
        match &self.data {
            ChunkData::Plain { times, .. } => times.len(),
            ChunkData::Sealed(b) => b.n(),
        }
    }

    pub(crate) fn is_sealed(&self) -> bool {
        matches!(self.data, ChunkData::Sealed(_))
    }

    /// Inserts keeping `times` sorted; fast path for append. Overwrites
    /// on duplicate timestamp. Only valid on a plain chunk — the store
    /// unseals before inserting.
    fn insert(&mut self, t: Timestamp, v: f64) -> ChunkInsert {
        let ChunkData::Plain { times, values } = &mut self.data else {
            unreachable!("insert into sealed chunk");
        };
        match times.last() {
            Some(&last) if t > last => {
                times.push(t);
                values.push(v);
                if !self.dirty {
                    self.summary.add(v);
                }
                ChunkInsert::Added
            }
            None => {
                times.push(t);
                values.push(v);
                if !self.dirty {
                    self.summary.add(v);
                }
                ChunkInsert::Added
            }
            _ => match times.binary_search(&t) {
                Ok(i) => {
                    let old = values[i];
                    values[i] = v;
                    if !self.dirty {
                        if old == self.summary.min || old == self.summary.max || old.is_nan() {
                            // the overwritten value may have defined an
                            // extreme (or poisoned the sum): defer the
                            // O(n) rebuild to the next summary read
                            self.dirty = true;
                        } else {
                            // interior overwrite: O(1) patch
                            self.summary.sum += v - old;
                            if v < self.summary.min {
                                self.summary.min = v;
                            }
                            if v > self.summary.max {
                                self.summary.max = v;
                            }
                        }
                    }
                    ChunkInsert::Overwrote
                }
                Err(i) => {
                    times.insert(i, t);
                    values.insert(i, v);
                    if !self.dirty {
                        self.summary.add(v);
                    }
                    ChunkInsert::Added
                }
            },
        }
    }

    /// The chunk summary, rebuilt on the fly if an overwrite left it
    /// stale.
    pub(crate) fn current_summary(&self) -> Summary {
        if !self.dirty {
            return self.summary;
        }
        match &self.data {
            ChunkData::Plain { values, .. } => Summary::of(values),
            // sealed chunks are never dirty: seal() refreshes first
            ChunkData::Sealed(_) => self.summary,
        }
    }

    /// Rebuilds a stale summary in place.
    fn refresh_summary(&mut self) {
        if !self.dirty {
            return;
        }
        if let ChunkData::Plain { values, .. } = &self.data {
            self.summary = Summary::of(values);
        }
        self.dirty = false;
    }

    /// Compresses a plain chunk; returns `(raw, compressed)` byte sizes
    /// when a seal actually happened.
    fn seal(&mut self) -> Option<(usize, usize)> {
        self.refresh_summary();
        let ChunkData::Plain { times, values } = &self.data else {
            return None;
        };
        if times.is_empty() {
            return None;
        }
        let block = SealedBlock::seal(self.key, times, values);
        let sizes = (block.raw_bytes(), block.compressed_bytes());
        self.data = ChunkData::Sealed(block);
        Some(sizes)
    }

    /// Decompresses a sealed chunk back to plain arrays; returns the
    /// `(raw, compressed)` sizes it occupied when it was sealed.
    fn unseal(&mut self) -> Option<(usize, usize)> {
        let ChunkData::Sealed(b) = &self.data else {
            return None;
        };
        let sizes = (b.raw_bytes(), b.compressed_bytes());
        let (mut times, mut values) = (Vec::new(), Vec::new());
        b.decode_into(self.key, &mut times, &mut values)
            .expect("sealed block is self-consistent");
        self.data = ChunkData::Plain { times, values };
        Some(sizes)
    }

    /// `(raw, compressed)` sizes when sealed, `None` when plain.
    pub(crate) fn sealed_sizes(&self) -> Option<(usize, usize)> {
        match &self.data {
            ChunkData::Sealed(b) => Some((b.raw_bytes(), b.compressed_bytes())),
            ChunkData::Plain { .. } => None,
        }
    }

    /// Runs `f` over the chunk's columns, decoding sealed data into
    /// scratch buffers first.
    pub(crate) fn with_cols<R>(&self, f: impl FnOnce(&[Timestamp], &[f64]) -> R) -> R {
        match &self.data {
            ChunkData::Plain { times, values } => f(times, values),
            ChunkData::Sealed(b) => {
                let (mut times, mut values) = (Vec::new(), Vec::new());
                b.decode_into(self.key, &mut times, &mut values)
                    .expect("sealed block is self-consistent");
                f(&times, &values)
            }
        }
    }

    /// Folds every in-range observation into `acc`, one `add` at a
    /// time (the boundary-chunk scan).
    fn add_range_into(&self, interval: &Interval, acc: &mut Summary) {
        self.with_cols(|times, values| {
            let lo = times.partition_point(|&t| t < interval.start);
            let hi = times.partition_point(|&t| t < interval.end);
            for &v in &values[lo..hi] {
                acc.add(v);
            }
        })
    }
}

/// The cached rollup index of one series: the chunk keys (for interval
/// → leaf-position mapping) and the pyramid over the non-head chunk
/// summaries. The head chunk is deliberately excluded so appends never
/// touch the pyramid.
#[derive(Clone, Debug)]
struct SeriesRollup {
    keys: Vec<Timestamp>,
    pyr: Pyramid,
}

/// Per-series chunk index.
#[derive(Debug, Default)]
pub(crate) struct SeriesChunks {
    pub(crate) chunks: BTreeMap<Timestamp, Chunk>,
    pub(crate) len: usize,
    /// Lazily-built rollup cache. Interior mutability lets read paths
    /// build it under `&self` (required by the parallel batch
    /// operators); writers maintain or invalidate it lock-free through
    /// `get_mut`.
    rollup: Mutex<Option<Arc<SeriesRollup>>>,
}

impl Clone for SeriesChunks {
    fn clone(&self) -> Self {
        let cache = self
            .rollup
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        Self {
            chunks: self.chunks.clone(),
            len: self.len,
            rollup: Mutex::new(cache),
        }
    }
}

impl SeriesChunks {
    /// Assembles a series index from decoded parts (the persistence
    /// codec's entry point; the rollup cache starts cold).
    pub(crate) fn from_parts(chunks: BTreeMap<Timestamp, Chunk>, len: usize) -> Self {
        Self {
            chunks,
            len,
            rollup: Mutex::new(None),
        }
    }

    /// The rollup index, building and caching it on first use.
    fn rollup(&self, fanout: usize) -> Arc<SeriesRollup> {
        let mut guard = self.rollup.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(r) = guard.as_ref() {
            return Arc::clone(r);
        }
        let keys: Vec<Timestamp> = self.chunks.keys().copied().collect();
        let n_leaves = keys.len().saturating_sub(1);
        let leaves: Vec<Summary> = self
            .chunks
            .values()
            .take(n_leaves)
            .map(Chunk::current_summary)
            .collect();
        let r = Arc::new(SeriesRollup {
            keys,
            pyr: Pyramid::build(leaves, fanout),
        });
        *guard = Some(Arc::clone(&r));
        r
    }

    fn invalidate_rollup(&mut self) {
        *self.rollup.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Pyramid queries only pay off past a handful of chunks; below this
/// the per-chunk loop is used. Path choice is a pure function of the
/// chunk count, so results stay deterministic per store state.
const ROLLUP_MIN_CHUNKS: usize = 4;

/// Emits the process-wide gauge deltas for a chunk entering
/// (`sign = 1`) or leaving (`sign = -1`) the sealed state.
pub(crate) fn note_sealed_delta(sizes: Option<(usize, usize)>, sign: i64) {
    if let Some((raw, comp)) = sizes {
        if let Some(m) = hygraph_metrics::get() {
            m.ts.sealed_chunks.add(sign);
            m.ts.raw_bytes.add(sign * raw as i64);
            m.ts.compressed_bytes.add(sign * comp as i64);
        }
    }
}

/// A chunked, time-partitioned store for many series.
#[derive(Clone, Debug)]
pub struct TsStore {
    pub(crate) chunk_width: Duration,
    pub(crate) opts: TsOptions,
    pub(crate) series: BTreeMap<SeriesId, SeriesChunks>,
}

impl TsStore {
    /// Default chunk width: one day — TimescaleDB's usual starting point.
    pub const DEFAULT_CHUNK: Duration = Duration(86_400_000);

    /// Creates a store with the default one-day chunk width and the
    /// environment-configured storage options.
    pub fn new() -> Self {
        Self::with_chunk_width(Self::DEFAULT_CHUNK)
    }

    /// Creates a store with a custom chunk width and the
    /// environment-configured storage options.
    pub fn with_chunk_width(chunk_width: Duration) -> Self {
        Self::with_options(chunk_width, TsOptions::from_env())
    }

    /// Creates a store with explicit storage options (bypassing
    /// `HYGRAPH_TS_COMPRESS` / `HYGRAPH_TS_ROLLUP_FANOUT`).
    pub fn with_options(chunk_width: Duration, opts: TsOptions) -> Self {
        assert!(chunk_width.is_positive(), "chunk width must be positive");
        Self {
            chunk_width,
            opts,
            series: BTreeMap::new(),
        }
    }

    /// The configured chunk width.
    pub fn chunk_width(&self) -> Duration {
        self.chunk_width
    }

    /// The storage options this store runs with.
    pub fn options(&self) -> TsOptions {
        self.opts
    }

    /// Registers an empty series (idempotent).
    pub fn create_series(&mut self, id: SeriesId) {
        self.series.entry(id).or_default();
    }

    /// Whether the series exists.
    pub fn contains(&self, id: SeriesId) -> bool {
        self.series.contains_key(&id)
    }

    /// All series ids, in order.
    pub fn series_ids(&self) -> impl Iterator<Item = SeriesId> + '_ {
        self.series.keys().copied()
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Number of observations in a series.
    pub fn len(&self, id: SeriesId) -> usize {
        self.series.get(&id).map_or(0, |s| s.len)
    }

    /// Whether the store holds no observations at all.
    pub fn is_empty(&self) -> bool {
        self.series.values().all(|s| s.len == 0)
    }

    /// Number of chunks backing a series.
    pub fn chunk_count(&self, id: SeriesId) -> usize {
        self.series.get(&id).map_or(0, |s| s.chunks.len())
    }

    /// Aggregate compression statistics across all series.
    pub fn compression_stats(&self) -> CompressionStats {
        let mut stats = CompressionStats::default();
        for sc in self.series.values() {
            for chunk in sc.chunks.values() {
                if let Some((raw, comp)) = chunk.sealed_sizes() {
                    stats.sealed_chunks += 1;
                    stats.raw_bytes += raw as u64;
                    stats.compressed_bytes += comp as u64;
                }
            }
        }
        stats
    }

    /// Inserts one observation (creates the series if needed). Supports
    /// out-of-order and duplicate timestamps (last write wins) — the R3
    /// "replace stale data" requirement.
    pub fn insert(&mut self, id: SeriesId, t: Timestamp, v: f64) {
        self.insert_inner(id, t, v);
        if let Some(m) = hygraph_metrics::get() {
            m.ts.inserts.inc();
            m.ts.points_inserted.inc();
        }
    }

    fn insert_inner(&mut self, id: SeriesId, t: Timestamp, v: f64) {
        let opts = self.opts;
        let sc = self.series.entry(id).or_default();
        let key = t.truncate(self.chunk_width);
        if !sc.chunks.contains_key(&key) {
            let prev_head = sc.chunks.last_key_value().map(|(&k, _)| k);
            if prev_head.is_none_or(|k| key > k) {
                // head advance: everything below the new head is cold —
                // seal it (when compression is on) …
                if opts.compress {
                    for chunk in sc.chunks.values_mut() {
                        note_sealed_delta(chunk.seal(), 1);
                    }
                }
                // … and the old head becomes a pyramid leaf
                let cache = sc.rollup.get_mut().unwrap_or_else(|e| e.into_inner());
                if let Some(r) = cache.as_mut() {
                    let r = Arc::make_mut(r);
                    if let Some(k) = prev_head {
                        let s = sc
                            .chunks
                            .get(&k)
                            .expect("old head exists")
                            .current_summary();
                        r.pyr.push_leaf(s);
                    }
                    r.keys.push(key);
                }
            } else {
                // a chunk materialised in the middle of history: leaf
                // positions shift, rebuild the cache lazily
                sc.invalidate_rollup();
            }
            let mut chunk = Chunk::new_plain(key);
            chunk.insert(t, v);
            sc.chunks.insert(key, chunk);
            sc.len += 1;
            return;
        }
        let is_head = sc.chunks.last_key_value().map(|(&k, _)| k) == Some(key);
        let chunk = sc.chunks.get_mut(&key).expect("presence checked above");
        note_sealed_delta(chunk.unseal(), -1);
        if matches!(chunk.insert(t, v), ChunkInsert::Added) {
            sc.len += 1;
        }
        if !is_head {
            // keep the cached pyramid leaf in sync (the head is outside
            // the pyramid, so head writes never touch it)
            let (summary, dirty) = (chunk.summary, chunk.dirty);
            let cache = sc.rollup.get_mut().unwrap_or_else(|e| e.into_inner());
            if cache.is_some() {
                if dirty {
                    *cache = None;
                } else if let Some(r) = cache.as_mut() {
                    let pos = r
                        .keys
                        .binary_search(&key)
                        .expect("cached keys mirror the chunk index");
                    Arc::make_mut(r).pyr.set_leaf(pos, summary);
                }
            }
        }
    }

    /// Bulk-appends a whole series.
    pub fn insert_series(&mut self, id: SeriesId, s: &TimeSeries) {
        let mut points = 0u64;
        for (t, v) in s.iter() {
            self.insert_inner(id, t, v);
            points += 1;
        }
        if let Some(m) = hygraph_metrics::get() {
            m.ts.inserts.inc();
            m.ts.points_inserted.add(points);
        }
    }

    /// Seals every remaining plain chunk — the bulk-load epilogue, so a
    /// freshly-loaded corpus is fully compressed instead of waiting for
    /// the next head advance. No-op when compression is off.
    pub fn seal_all(&mut self) {
        if !self.opts.compress {
            return;
        }
        for sc in self.series.values_mut() {
            for chunk in sc.chunks.values_mut() {
                note_sealed_delta(chunk.seal(), 1);
            }
        }
    }

    /// The exact value at `t`, if observed.
    pub fn value_at(&self, id: SeriesId, t: Timestamp) -> Option<f64> {
        let sc = self.series.get(&id)?;
        let chunk = sc.chunks.get(&t.truncate(self.chunk_width))?;
        chunk.with_cols(|times, values| times.binary_search(&t).ok().map(|i| values[i]))
    }

    /// The most recent observation at or before `t`.
    pub fn value_at_or_before(&self, id: SeriesId, t: Timestamp) -> Option<(Timestamp, f64)> {
        let sc = self.series.get(&id)?;
        let key = t.truncate(self.chunk_width);
        // walk chunk index backwards starting at t's chunk
        for (_, chunk) in sc.chunks.range(..=key).rev() {
            let hit = chunk.with_cols(|times, values| {
                let i = times.partition_point(|&ct| ct <= t);
                (i > 0).then(|| (times[i - 1], values[i - 1]))
            });
            if hit.is_some() {
                return hit;
            }
        }
        None
    }

    /// Materialises the observations of `id` inside `interval`, chunk-pruned.
    pub fn range(&self, id: SeriesId, interval: &Interval) -> TimeSeries {
        let mut out = TimeSeries::new();
        // chunks are visited in time order, so push preserves order
        self.scan(id, interval, |t, v| {
            out.push(t, v).expect("chunks are time-ordered");
        });
        out
    }

    /// Visits each observation of `id` inside `interval` without
    /// materialising, in time order.
    pub fn scan(&self, id: SeriesId, interval: &Interval, mut f: impl FnMut(Timestamp, f64)) {
        let Some(sc) = self.series.get(&id) else {
            return;
        };
        let first_key = interval.start.truncate(self.chunk_width);
        for (_, chunk) in sc.chunks.range(first_key..interval.end) {
            chunk.with_cols(|times, values| {
                let lo = times.partition_point(|&t| t < interval.start);
                let hi = times.partition_point(|&t| t < interval.end);
                for i in lo..hi {
                    f(times[i], values[i]);
                }
            });
        }
    }

    /// Computes a summary over `interval`. Large series ride the rollup
    /// pyramid: O(F·log #chunks) precomputed merges plus at most two
    /// boundary-chunk scans. Small series use the per-chunk loop
    /// directly. Path choice depends only on store state, so repeated
    /// calls are bit-identical.
    pub fn summarize(&self, id: SeriesId, interval: &Interval) -> Summary {
        let Some(sc) = self.series.get(&id) else {
            return Summary::new();
        };
        if sc.chunks.len() < ROLLUP_MIN_CHUNKS {
            self.summarize_chunks(sc, interval)
        } else {
            self.summarize_rollup(sc, interval)
        }
    }

    /// The pre-pyramid reference aggregate path: merge every covered
    /// chunk's summary, scan the boundary chunks. Kept public so the
    /// benchmarks and equivalence tests can pin the baseline the
    /// pyramid is measured against.
    pub fn summarize_naive(&self, id: SeriesId, interval: &Interval) -> Summary {
        match self.series.get(&id) {
            Some(sc) => self.summarize_chunks(sc, interval),
            None => Summary::new(),
        }
    }

    fn summarize_chunks(&self, sc: &SeriesChunks, interval: &Interval) -> Summary {
        let mut acc = Summary::new();
        let first_key = interval.start.truncate(self.chunk_width);
        for (&key, chunk) in sc.chunks.range(first_key..interval.end) {
            let chunk_iv = Interval::new(key, key + self.chunk_width);
            if interval.contains_interval(&chunk_iv) {
                acc.merge(&chunk.current_summary());
            } else {
                chunk.add_range_into(interval, &mut acc);
            }
        }
        acc
    }

    fn summarize_rollup(&self, sc: &SeriesChunks, interval: &Interval) -> Summary {
        let r = sc.rollup(self.opts.rollup_fanout);
        let first_key = interval.start.truncate(self.chunk_width);
        let mut a = r.keys.partition_point(|&k| k < first_key);
        let mut b = r.keys.partition_point(|&k| k < interval.end);
        let mut acc = Summary::new();
        let mut hits = 0u64;
        let mut boundary_decodes = 0u64;
        // left boundary chunk, if the interval starts inside it
        if a < b && r.keys[a] < interval.start {
            let chunk = &sc.chunks[&r.keys[a]];
            if chunk.is_sealed() {
                boundary_decodes += 1;
            }
            chunk.add_range_into(interval, &mut acc);
            a += 1;
        }
        // right boundary chunk, if it extends past the interval
        let right_partial = b > a && r.keys[b - 1] + self.chunk_width > interval.end;
        if right_partial {
            b -= 1;
        }
        // fully-covered span: pyramid nodes first, then whatever falls
        // past the pyramid (only ever the head chunk)
        let pyr_end = b.min(r.pyr.len());
        if a < pyr_end {
            let (s, nodes) = r.pyr.range(a, pyr_end);
            acc.merge(&s);
            hits += nodes as u64;
        }
        for pos in pyr_end.max(a)..b {
            acc.merge(&sc.chunks[&r.keys[pos]].current_summary());
        }
        if right_partial {
            let chunk = &sc.chunks[&r.keys[b]];
            if chunk.is_sealed() {
                boundary_decodes += 1;
            }
            chunk.add_range_into(interval, &mut acc);
        }
        if let Some(m) = hygraph_metrics::get() {
            m.ts.rollup_hits.add(hits);
            m.ts.rollup_boundary_decodes.add(boundary_decodes);
        }
        acc
    }

    /// Single aggregate over a range.
    pub fn aggregate(&self, id: SeriesId, interval: &Interval, kind: AggKind) -> Option<f64> {
        self.summarize(id, interval).get(kind)
    }

    /// [`summarize`](Self::summarize) over many series at once, returned
    /// in input order. Per-series summaries are independent, so the
    /// batch fans out across threads for large id sets (the multi-series
    /// scan queries Q4/Q5/Q8 of the storage experiment) with results
    /// identical to calling `summarize` in a loop.
    pub fn summarize_batch(&self, ids: &[SeriesId], interval: &Interval) -> Vec<Summary> {
        self.summarize_batch_mode(ids, interval, ExecMode::Auto)
    }

    /// [`summarize_batch`](Self::summarize_batch) with an explicit
    /// execution mode.
    pub fn summarize_batch_mode(
        &self,
        ids: &[SeriesId],
        interval: &Interval,
        mode: ExecMode,
    ) -> Vec<Summary> {
        if should_parallelize(mode, ids.len()) {
            ids.par_iter()
                .map(|&id| self.summarize(id, interval))
                .collect()
        } else {
            ids.iter().map(|&id| self.summarize(id, interval)).collect()
        }
    }

    /// [`aggregate`](Self::aggregate) over many series at once, in input
    /// order.
    pub fn aggregate_batch(
        &self,
        ids: &[SeriesId],
        interval: &Interval,
        kind: AggKind,
    ) -> Vec<Option<f64>> {
        self.aggregate_batch_mode(ids, interval, kind, ExecMode::Auto)
    }

    /// [`aggregate_batch`](Self::aggregate_batch) with an explicit
    /// execution mode.
    pub fn aggregate_batch_mode(
        &self,
        ids: &[SeriesId],
        interval: &Interval,
        kind: AggKind,
        mode: ExecMode,
    ) -> Vec<Option<f64>> {
        self.summarize_batch_mode(ids, interval, mode)
            .iter()
            .map(|s| s.get(kind))
            .collect()
    }

    /// Bucketed aggregation: one summary per tumbling window of width
    /// `bucket` across `interval`. Returns `(bucket_start, summary)` pairs
    /// for non-empty buckets.
    ///
    /// Fast path: when `bucket` is a whole multiple of the chunk width,
    /// fully-covered chunks contribute their precomputed summaries in
    /// O(1) each (TimescaleDB-style chunk-wise aggregation); only
    /// interval-boundary chunks are scanned.
    pub fn aggregate_buckets(
        &self,
        id: SeriesId,
        interval: &Interval,
        bucket: Duration,
    ) -> Vec<(Timestamp, Summary)> {
        let mut out: Vec<(Timestamp, Summary)> = Vec::new();
        let aligned = bucket.millis() > 0 && bucket.millis() % self.chunk_width.millis() == 0;
        if aligned {
            if let Some(sc) = self.series.get(&id) {
                let first_key = interval.start.truncate(self.chunk_width);
                for (&key, chunk) in sc.chunks.range(first_key..interval.end) {
                    let chunk_iv = Interval::new(key, key + self.chunk_width);
                    let bucket_key = key.truncate(bucket);
                    if interval.contains_interval(&chunk_iv) {
                        let s = chunk.current_summary();
                        match out.last_mut() {
                            Some((last, acc)) if *last == bucket_key => acc.merge(&s),
                            _ => out.push((bucket_key, s)),
                        }
                    } else {
                        chunk.with_cols(|times, values| {
                            let lo = times.partition_point(|&t| t < interval.start);
                            let hi = times.partition_point(|&t| t < interval.end);
                            for i in lo..hi {
                                let bk = times[i].truncate(bucket);
                                match out.last_mut() {
                                    Some((last, s)) if *last == bk => s.add(values[i]),
                                    _ => {
                                        let mut s = Summary::new();
                                        s.add(values[i]);
                                        out.push((bk, s));
                                    }
                                }
                            }
                        });
                    }
                }
            }
            return out;
        }
        self.scan(id, interval, |t, v| {
            let key = t.truncate(bucket);
            match out.last_mut() {
                Some((last_key, s)) if *last_key == key => s.add(v),
                _ => {
                    let mut s = Summary::new();
                    s.add(v);
                    out.push((key, s));
                }
            }
        });
        out
    }

    /// Removes a series entirely; returns whether it existed.
    pub fn drop_series(&mut self, id: SeriesId) -> bool {
        match self.series.remove(&id) {
            Some(sc) => {
                for chunk in sc.chunks.values() {
                    note_sealed_delta(chunk.sealed_sizes(), -1);
                }
                true
            }
            None => false,
        }
    }

    /// Removes all observations strictly before `t` (retention policy).
    /// Whole chunks are dropped in O(log n); the boundary chunk is trimmed.
    pub fn retain_from(&mut self, id: SeriesId, t: Timestamp) -> Result<()> {
        let sc = self
            .series
            .get_mut(&id)
            .ok_or(HyGraphError::SeriesNotFound(id))?;
        let boundary_key = t.truncate(self.chunk_width);
        // drop whole chunks before the boundary chunk
        let dead: Vec<Timestamp> = sc.chunks.range(..boundary_key).map(|(&k, _)| k).collect();
        for k in dead {
            let c = sc.chunks.remove(&k).expect("key just listed");
            sc.len -= c.len();
            note_sealed_delta(c.sealed_sizes(), -1);
        }
        // trim the boundary chunk (reopening it if sealed)
        if let Some(chunk) = sc.chunks.get_mut(&boundary_key) {
            note_sealed_delta(chunk.unseal(), -1);
            let ChunkData::Plain { times, values } = &mut chunk.data else {
                unreachable!("chunk just unsealed");
            };
            let cut = times.partition_point(|&ct| ct < t);
            if cut > 0 {
                times.drain(..cut);
                values.drain(..cut);
                sc.len -= cut;
                chunk.summary = Summary::of(values);
                chunk.dirty = false;
            }
            if chunk.len() == 0 {
                sc.chunks.remove(&boundary_key);
            }
        }
        sc.invalidate_rollup();
        Ok(())
    }
}

impl Default for TsStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn store_100ms() -> TsStore {
        TsStore::with_chunk_width(Duration::from_millis(100))
    }

    #[test]
    fn insert_and_range_across_chunks() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for i in 0..10 {
            st.insert(id, ts(i * 50), i as f64);
        }
        assert_eq!(st.len(id), 10);
        assert_eq!(st.chunk_count(id), 5, "two points per 100ms chunk");
        let r = st.range(id, &Interval::new(ts(100), ts(300)));
        assert_eq!(r.values(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.times()[0], ts(100));
    }

    #[test]
    fn duplicate_overwrite_rebuilds_chunk_summary() {
        // regression: overwriting the value that held a chunk's min or
        // max must rebuild the sparse summary, not just patch the value
        // vector — otherwise covered-chunk aggregates report stale
        // extremes
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(10), 100.0); // chunk max
        st.insert(id, ts(20), -100.0); // chunk min
        st.insert(id, ts(30), 1.0);
        // overwrite both extremes with interior values (same chunk)
        st.insert(id, ts(10), 2.0);
        st.insert(id, ts(20), 3.0);
        // interval covering the whole chunk takes the precomputed-summary
        // path
        let whole = Interval::new(ts(0), ts(100));
        let s = st.summarize(id, &whole);
        assert_eq!(s.count, 3, "overwrite must not add observations");
        assert_eq!(s.min, 1.0, "stale min -100 must be gone");
        assert_eq!(s.max, 3.0, "stale max 100 must be gone");
        assert_eq!(s.sum, 6.0);
        assert_eq!(st.aggregate(id, &whole, AggKind::Mean), Some(2.0));
        // and the summary path agrees with a raw partial-chunk scan
        let partial = st.summarize(id, &Interval::new(ts(0), ts(99)));
        assert_eq!(partial.min, s.min);
        assert_eq!(partial.max, s.max);
        assert_eq!(partial.sum, s.sum);
    }

    #[test]
    fn duplicate_heavy_ingest_is_not_quadratic() {
        // regression for the O(n²) duplicate-heavy ingest: every
        // overwrite used to rescan the whole chunk to rebuild its
        // summary; now interior overwrites patch in O(1) and extreme
        // overwrites defer one rebuild to the next read. At this size
        // the old path performs ~10¹⁰ summary adds and effectively
        // hangs, so merely finishing is the regression check.
        let n: i64 = 100_000;
        let mut st = TsStore::with_options(Duration::from_millis(1 << 40), TsOptions::default());
        let id = SeriesId::new(1);
        for i in 0..n {
            st.insert(id, ts(i), i as f64);
        }
        // interior overwrites: O(1) summary patches
        for i in 1..n - 1 {
            st.insert(id, ts(i), i as f64 + 0.5);
        }
        // extreme overwrites: dirty-mark, rebuilt lazily on read
        st.insert(id, ts(0), 7.25);
        st.insert(id, ts(n - 1), 8.25);
        let s = st.summarize(id, &Interval::ALL);
        let mut naive = Summary::new();
        st.scan(id, &Interval::ALL, |_, v| naive.add(v));
        assert_eq!(s.count, naive.count);
        assert_eq!(s.min, naive.min);
        assert_eq!(s.max, naive.max);
        let rel = (s.sum - naive.sum).abs() / naive.sum.abs();
        assert!(rel < 1e-9, "sum drifted: {} vs {}", s.sum, naive.sum);
    }

    #[test]
    fn batch_summarize_matches_per_series_calls() {
        let mut st = store_100ms();
        let ids: Vec<SeriesId> = (1..=40).map(SeriesId::new).collect();
        for (k, &id) in ids.iter().enumerate() {
            for i in 0..50 {
                st.insert(id, ts(i * 20), (i + k as i64) as f64 * 0.5);
            }
        }
        let iv = Interval::new(ts(40), ts(760));
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let batch = st.summarize_batch_mode(&ids, &iv, mode);
            assert_eq!(batch.len(), ids.len());
            for (&id, b) in ids.iter().zip(&batch) {
                let single = st.summarize(id, &iv);
                assert_eq!(b.count, single.count, "{mode:?}");
                assert_eq!(b.sum.to_bits(), single.sum.to_bits(), "{mode:?}");
                assert_eq!(b.min, single.min);
                assert_eq!(b.max, single.max);
            }
            let aggs = st.aggregate_batch_mode(&ids, &iv, AggKind::Max, mode);
            for (&id, a) in ids.iter().zip(&aggs) {
                assert_eq!(*a, st.aggregate(id, &iv, AggKind::Max));
            }
        }
    }

    #[test]
    fn out_of_order_and_duplicate_inserts() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(250), 2.5);
        st.insert(id, ts(50), 0.5);
        st.insert(id, ts(150), 1.5);
        st.insert(id, ts(150), 9.9); // overwrite
        assert_eq!(st.len(id), 3);
        let r = st.range(id, &Interval::ALL);
        assert_eq!(r.times(), &[ts(50), ts(150), ts(250)]);
        assert_eq!(r.values(), &[0.5, 9.9, 2.5]);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn value_lookups() {
        let mut st = store_100ms();
        let id = SeriesId::new(7);
        st.insert(id, ts(10), 1.0);
        st.insert(id, ts(210), 2.0);
        assert_eq!(st.value_at(id, ts(10)), Some(1.0));
        assert_eq!(st.value_at(id, ts(11)), None);
        assert_eq!(st.value_at_or_before(id, ts(209)), Some((ts(10), 1.0)));
        assert_eq!(st.value_at_or_before(id, ts(210)), Some((ts(210), 2.0)));
        assert_eq!(st.value_at_or_before(id, ts(9)), None);
        assert_eq!(st.value_at(SeriesId::new(99), ts(10)), None);
    }

    #[test]
    fn summarize_matches_naive() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 100, |i| (i % 7) as f64);
        st.insert_series(id, &s);
        let iv = Interval::new(ts(95), ts(805));
        let fast = st.summarize(id, &iv);
        let slow = Summary::of(s.range(&iv).values);
        assert_eq!(fast.count, slow.count);
        assert!((fast.sum - slow.sum).abs() < 1e-9);
        assert_eq!(fast.min, slow.min);
        assert_eq!(fast.max, slow.max);
    }

    #[test]
    fn pyramid_path_matches_reference_path() {
        // enough chunks for the rollup path, with out-of-order inserts,
        // overwrites, and both compression settings
        for compress in [false, true] {
            let mut st = TsStore::with_options(
                Duration::from_millis(100),
                TsOptions::default().compress(compress).rollup_fanout(4),
            );
            let id = SeriesId::new(1);
            for i in 0..400 {
                st.insert(id, ts(i * 7), ((i * 31) % 23) as f64 - 11.0);
            }
            st.insert(id, ts(3), -50.0); // out-of-order into chunk 0
            st.insert(id, ts(700), 50.0); // overwrite mid-history
            assert!(st.chunk_count(id) >= ROLLUP_MIN_CHUNKS);
            for (lo, hi) in [
                (0, 2800),
                (95, 805),
                (100, 800),
                (0, 100),
                (250, 260),
                (2700, 2800),
                (1, 2799),
            ] {
                let iv = Interval::new(ts(lo), ts(hi));
                let fast = st.summarize(id, &iv);
                let slow = st.summarize_naive(id, &iv);
                assert_eq!(fast.count, slow.count, "compress={compress} [{lo},{hi})");
                assert_eq!(fast.min, slow.min, "compress={compress} [{lo},{hi})");
                assert_eq!(fast.max, slow.max, "compress={compress} [{lo},{hi})");
                assert!(
                    (fast.sum - slow.sum).abs() < 1e-9,
                    "compress={compress} [{lo},{hi}): {} vs {}",
                    fast.sum,
                    slow.sum
                );
            }
        }
    }

    #[test]
    fn seal_lifecycle() {
        let mut st = TsStore::with_options(
            Duration::from_millis(100),
            TsOptions::default().compress(true),
        );
        let id = SeriesId::new(1);
        for i in 0..50 {
            st.insert(id, ts(i * 10), ((i * 13) % 11) as f64);
        }
        assert_eq!(st.chunk_count(id), 5);
        let stats = st.compression_stats();
        assert_eq!(stats.sealed_chunks, 4, "head chunk stays plain");
        assert!(stats.compressed_bytes > 0);
        st.seal_all();
        assert_eq!(st.compression_stats().sealed_chunks, 5);
        // out-of-order insert reopens exactly one chunk
        st.insert(id, ts(5), 99.0);
        assert_eq!(st.compression_stats().sealed_chunks, 4);
        assert_eq!(st.value_at(id, ts(5)), Some(99.0));
        // a twin built without compression answers identically
        let mut plain = TsStore::with_options(
            Duration::from_millis(100),
            TsOptions::default().compress(false),
        );
        for i in 0..50 {
            plain.insert(id, ts(i * 10), ((i * 13) % 11) as f64);
        }
        plain.insert(id, ts(5), 99.0);
        assert_eq!(plain.compression_stats(), CompressionStats::default());
        let (a, b) = (
            st.range(id, &Interval::ALL),
            plain.range(id, &Interval::ALL),
        );
        assert_eq!(a.times(), b.times());
        assert_eq!(a.values(), b.values());
        let (sa, sb) = (
            st.summarize(id, &Interval::ALL),
            plain.summarize(id, &Interval::ALL),
        );
        assert_eq!(sa.count, sb.count);
        assert_eq!(sa.sum.to_bits(), sb.sum.to_bits());
        assert_eq!(sa.min, sb.min);
        assert_eq!(sa.max, sb.max);
    }

    #[test]
    fn regular_corpus_compresses_at_least_2x() {
        // Table-1-shaped data: regular ticks, integer-valued readings
        let mut st = TsStore::with_options(
            Duration::from_millis(10_000),
            TsOptions::default().compress(true),
        );
        let id = SeriesId::new(1);
        for i in 0..5_000 {
            st.insert(id, ts(i * 100), ((i * 17) % 30) as f64);
        }
        st.seal_all();
        let stats = st.compression_stats();
        assert!(
            stats.ratio() >= 2.0,
            "expected ≥2x compression, got {:.2} ({} → {} bytes)",
            stats.ratio(),
            stats.raw_bytes,
            stats.compressed_bytes
        );
    }

    #[test]
    fn aggregate_kinds() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for (i, v) in [3.0, 1.0, 4.0, 1.0, 5.0].iter().enumerate() {
            st.insert(id, ts(i as i64 * 10), *v);
        }
        let iv = Interval::ALL;
        assert_eq!(st.aggregate(id, &iv, AggKind::Count), Some(5.0));
        assert_eq!(st.aggregate(id, &iv, AggKind::Sum), Some(14.0));
        assert_eq!(st.aggregate(id, &iv, AggKind::Mean), Some(2.8));
        assert_eq!(st.aggregate(id, &iv, AggKind::Min), Some(1.0));
        assert_eq!(st.aggregate(id, &iv, AggKind::Max), Some(5.0));
        // empty range
        let empty = Interval::new(ts(1000), ts(2000));
        assert_eq!(st.aggregate(id, &empty, AggKind::Mean), None);
        assert_eq!(st.aggregate(id, &empty, AggKind::Count), Some(0.0));
    }

    #[test]
    fn bucketed_aggregation() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for i in 0..6 {
            st.insert(id, ts(i * 50), 1.0);
        }
        let buckets = st.aggregate_buckets(id, &Interval::ALL, Duration::from_millis(100));
        assert_eq!(buckets.len(), 3);
        for (_, s) in &buckets {
            assert_eq!(s.count, 2);
        }
        assert_eq!(buckets[0].0, ts(0));
        assert_eq!(buckets[2].0, ts(200));
    }

    #[test]
    fn retention() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for i in 0..10 {
            st.insert(id, ts(i * 50), i as f64);
        }
        st.retain_from(id, ts(225)).unwrap();
        let r = st.range(id, &Interval::ALL);
        assert_eq!(r.times()[0], ts(250));
        assert_eq!(st.len(id), 5);
        // summaries still correct after trim
        assert_eq!(st.aggregate(id, &Interval::ALL, AggKind::Min), Some(5.0));
        assert!(st.retain_from(SeriesId::new(9), ts(0)).is_err());
    }

    #[test]
    fn negative_timestamps_supported() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(-250), 1.0);
        st.insert(id, ts(-50), 2.0);
        st.insert(id, ts(50), 3.0);
        let r = st.range(id, &Interval::new(ts(-300), ts(0)));
        assert_eq!(r.values(), &[1.0, 2.0]);
        assert_eq!(st.summarize(id, &Interval::ALL).count, 3);
    }

    #[test]
    fn agg_kind_parse() {
        assert_eq!(AggKind::parse("AVG").unwrap(), AggKind::Mean);
        assert_eq!(AggKind::parse("mean").unwrap(), AggKind::Mean);
        assert_eq!(AggKind::parse("count").unwrap(), AggKind::Count);
        let err = AggKind::parse("median").unwrap_err().to_string();
        assert!(err.contains("median"), "error names the typo: {err}");
        assert!(err.contains("valid:"), "error lists valid kinds: {err}");
    }

    #[test]
    fn drop_series() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(0), 1.0);
        assert!(st.drop_series(id));
        assert!(!st.drop_series(id));
        assert_eq!(st.len(id), 0);
        assert!(st.is_empty());
    }

    #[test]
    fn aligned_bucket_fast_path_matches_scan_path() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        let s = TimeSeries::generate(ts(7), Duration::from_millis(13), 200, |i| {
            ((i * 31) % 17) as f64
        });
        st.insert_series(id, &s);
        // bucket = 2 chunks (aligned fast path) vs odd bucket (scan path)
        for (a, b) in [(200i64, 200i64)] {
            let iv = Interval::new(ts(37), ts(2_000));
            let fast = st.aggregate_buckets(id, &iv, Duration::from_millis(a));
            // recompute naively from a materialised range
            let r = st.range(id, &iv);
            let mut naive: Vec<(Timestamp, Summary)> = Vec::new();
            for (t, v) in r.iter() {
                let key = t.truncate(Duration::from_millis(b));
                match naive.last_mut() {
                    Some((k, su)) if *k == key => su.add(v),
                    _ => {
                        let mut su = Summary::new();
                        su.add(v);
                        naive.push((key, su));
                    }
                }
            }
            assert_eq!(fast.len(), naive.len());
            for ((tk, fs), (nk, ns)) in fast.iter().zip(&naive) {
                assert_eq!(tk, nk);
                assert_eq!(fs.count, ns.count);
                assert!((fs.sum - ns.sum).abs() < 1e-9);
                assert_eq!(fs.min, ns.min);
                assert_eq!(fs.max, ns.max);
            }
        }
    }

    #[test]
    fn summary_merge_and_get() {
        let mut a = Summary::of(&[1.0, 2.0]);
        let b = Summary::of(&[10.0]);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.get(AggKind::Max), Some(10.0));
        assert_eq!(a.get(AggKind::Min), Some(1.0));
        let e = Summary::new();
        assert_eq!(e.get(AggKind::Sum), None);
        assert_eq!(e.get(AggKind::Count), Some(0.0));
        assert_eq!(e.mean(), None);
    }
}
