//! Hypertable-style chunked time-series store.
//!
//! [`TsStore`] is the dedicated time-series engine behind the paper's
//! *polyglot persistence* design (TimeTravelDB = graph store +
//! TimescaleDB). It borrows TimescaleDB's two load-bearing mechanisms:
//!
//! 1. **Time partitioning** — each series is split into fixed-width
//!    chunks keyed by chunk start time, held in an ordered index
//!    (`BTreeMap`). A range query touches only the chunks intersecting
//!    the interval (chunk pruning).
//! 2. **Per-chunk sparse aggregates** — every chunk maintains
//!    count/sum/min/max incrementally, so aggregate queries read whole
//!    covered chunks in O(1) and only scan the (at most two) boundary
//!    chunks.
//!
//! This is exactly the access-path asymmetry that produces the Table-1
//! speedups over the all-in-graph layout.

use crate::series::TimeSeries;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::{Duration, HyGraphError, Interval, Result, SeriesId, Timestamp};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Aggregate functions supported by the store and the query engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Number of observations.
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

impl AggKind {
    /// Parses an aggregate name as used in HyQL (`mean`, `avg`, ...),
    /// case-insensitively. Unknown names are a typed error listing the
    /// valid kinds, so typos surface at the HyQL layer instead of being
    /// swallowed as `None`.
    pub fn parse(s: &str) -> Result<AggKind> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "mean" | "avg" => AggKind::Mean,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            _ => {
                return Err(HyGraphError::invalid(format!(
                    "unknown aggregate kind '{s}' (valid: count, sum, mean, avg, min, max)"
                )))
            }
        })
    }
}

/// Incrementally-maintained statistics of a chunk (or any value set).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value (`+∞` when empty).
    pub min: f64,
    /// Maximum value (`-∞` when empty).
    pub max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges another summary in.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the summarised values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Extracts the requested aggregate; `None` when empty (except Count,
    /// which is 0).
    pub fn get(&self, kind: AggKind) -> Option<f64> {
        match kind {
            AggKind::Count => Some(self.count as f64),
            AggKind::Sum => (self.count > 0).then_some(self.sum),
            AggKind::Mean => self.mean(),
            AggKind::Min => (self.count > 0).then_some(self.min),
            AggKind::Max => (self.count > 0).then_some(self.max),
        }
    }

    /// Builds a summary by scanning a value slice.
    pub fn of(values: &[f64]) -> Summary {
        let mut s = Summary::new();
        for &v in values {
            s.add(v);
        }
        s
    }
}

/// One time partition of one series.
#[derive(Clone, Debug, Default)]
pub(crate) struct Chunk {
    pub(crate) times: Vec<Timestamp>,
    pub(crate) values: Vec<f64>,
    pub(crate) summary: Summary,
}

impl Chunk {
    /// Inserts keeping `times` sorted; fast path for append. Overwrites on
    /// duplicate timestamp and rebuilds the summary in that case.
    fn insert(&mut self, t: Timestamp, v: f64) {
        match self.times.last() {
            Some(&last) if t > last => {
                self.times.push(t);
                self.values.push(v);
                self.summary.add(v);
            }
            None => {
                self.times.push(t);
                self.values.push(v);
                self.summary.add(v);
            }
            _ => match self.times.binary_search(&t) {
                Ok(i) => {
                    self.values[i] = v;
                    self.summary = Summary::of(&self.values);
                }
                Err(i) => {
                    self.times.insert(i, t);
                    self.values.insert(i, v);
                    self.summary.add(v);
                }
            },
        }
    }

    fn range_indices(&self, interval: &Interval) -> (usize, usize) {
        let lo = self.times.partition_point(|&t| t < interval.start);
        let hi = self.times.partition_point(|&t| t < interval.end);
        (lo, hi)
    }
}

/// Per-series chunk index.
#[derive(Clone, Debug, Default)]
pub(crate) struct SeriesChunks {
    pub(crate) chunks: BTreeMap<Timestamp, Chunk>,
    pub(crate) len: usize,
}

/// A chunked, time-partitioned store for many series.
#[derive(Clone, Debug)]
pub struct TsStore {
    pub(crate) chunk_width: Duration,
    pub(crate) series: BTreeMap<SeriesId, SeriesChunks>,
}

impl TsStore {
    /// Default chunk width: one day — TimescaleDB's usual starting point.
    pub const DEFAULT_CHUNK: Duration = Duration(86_400_000);

    /// Creates a store with the default one-day chunk width.
    pub fn new() -> Self {
        Self::with_chunk_width(Self::DEFAULT_CHUNK)
    }

    /// Creates a store with a custom chunk width.
    pub fn with_chunk_width(chunk_width: Duration) -> Self {
        assert!(chunk_width.is_positive(), "chunk width must be positive");
        Self {
            chunk_width,
            series: BTreeMap::new(),
        }
    }

    /// The configured chunk width.
    pub fn chunk_width(&self) -> Duration {
        self.chunk_width
    }

    /// Registers an empty series (idempotent).
    pub fn create_series(&mut self, id: SeriesId) {
        self.series.entry(id).or_default();
    }

    /// Whether the series exists.
    pub fn contains(&self, id: SeriesId) -> bool {
        self.series.contains_key(&id)
    }

    /// All series ids, in order.
    pub fn series_ids(&self) -> impl Iterator<Item = SeriesId> + '_ {
        self.series.keys().copied()
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Number of observations in a series.
    pub fn len(&self, id: SeriesId) -> usize {
        self.series.get(&id).map_or(0, |s| s.len)
    }

    /// Whether the store holds no observations at all.
    pub fn is_empty(&self) -> bool {
        self.series.values().all(|s| s.len == 0)
    }

    /// Number of chunks backing a series.
    pub fn chunk_count(&self, id: SeriesId) -> usize {
        self.series.get(&id).map_or(0, |s| s.chunks.len())
    }

    /// Inserts one observation (creates the series if needed). Supports
    /// out-of-order and duplicate timestamps (last write wins) — the R3
    /// "replace stale data" requirement.
    pub fn insert(&mut self, id: SeriesId, t: Timestamp, v: f64) {
        self.insert_inner(id, t, v);
        if let Some(m) = hygraph_metrics::get() {
            m.ts.inserts.inc();
            m.ts.points_inserted.inc();
        }
    }

    fn insert_inner(&mut self, id: SeriesId, t: Timestamp, v: f64) {
        let sc = self.series.entry(id).or_default();
        let key = t.truncate(self.chunk_width);
        let chunk = sc.chunks.entry(key).or_default();
        let before = chunk.times.len();
        chunk.insert(t, v);
        sc.len += chunk.times.len() - before;
    }

    /// Bulk-appends a whole series.
    pub fn insert_series(&mut self, id: SeriesId, s: &TimeSeries) {
        let mut points = 0u64;
        for (t, v) in s.iter() {
            self.insert_inner(id, t, v);
            points += 1;
        }
        if let Some(m) = hygraph_metrics::get() {
            m.ts.inserts.inc();
            m.ts.points_inserted.add(points);
        }
    }

    /// The exact value at `t`, if observed.
    pub fn value_at(&self, id: SeriesId, t: Timestamp) -> Option<f64> {
        let sc = self.series.get(&id)?;
        let chunk = sc.chunks.get(&t.truncate(self.chunk_width))?;
        chunk.times.binary_search(&t).ok().map(|i| chunk.values[i])
    }

    /// The most recent observation at or before `t`.
    pub fn value_at_or_before(&self, id: SeriesId, t: Timestamp) -> Option<(Timestamp, f64)> {
        let sc = self.series.get(&id)?;
        let key = t.truncate(self.chunk_width);
        // walk chunk index backwards starting at t's chunk
        for (_, chunk) in sc.chunks.range(..=key).rev() {
            let i = chunk.times.partition_point(|&ct| ct <= t);
            if i > 0 {
                return Some((chunk.times[i - 1], chunk.values[i - 1]));
            }
        }
        None
    }

    /// Materialises the observations of `id` inside `interval`, chunk-pruned.
    pub fn range(&self, id: SeriesId, interval: &Interval) -> TimeSeries {
        let mut out = TimeSeries::new();
        let Some(sc) = self.series.get(&id) else {
            return out;
        };
        let first_key = interval.start.truncate(self.chunk_width);
        for (_, chunk) in sc.chunks.range(first_key..interval.end) {
            let (lo, hi) = chunk.range_indices(interval);
            for i in lo..hi {
                // chunks are visited in time order, so push preserves order
                out.push(chunk.times[i], chunk.values[i])
                    .expect("chunks are time-ordered");
            }
        }
        out
    }

    /// Visits each observation of `id` inside `interval` without
    /// materialising, in time order.
    pub fn scan(&self, id: SeriesId, interval: &Interval, mut f: impl FnMut(Timestamp, f64)) {
        let Some(sc) = self.series.get(&id) else {
            return;
        };
        let first_key = interval.start.truncate(self.chunk_width);
        for (_, chunk) in sc.chunks.range(first_key..interval.end) {
            let (lo, hi) = chunk.range_indices(interval);
            for i in lo..hi {
                f(chunk.times[i], chunk.values[i]);
            }
        }
    }

    /// Computes a summary over `interval`, using per-chunk sparse
    /// aggregates for fully-covered chunks and scanning only boundary
    /// chunks — the polyglot backend's O(#chunks + boundary) aggregate
    /// path.
    pub fn summarize(&self, id: SeriesId, interval: &Interval) -> Summary {
        let mut acc = Summary::new();
        let Some(sc) = self.series.get(&id) else {
            return acc;
        };
        let first_key = interval.start.truncate(self.chunk_width);
        for (&key, chunk) in sc.chunks.range(first_key..interval.end) {
            let chunk_iv = Interval::new(key, key + self.chunk_width);
            if interval.contains_interval(&chunk_iv) {
                acc.merge(&chunk.summary);
            } else {
                let (lo, hi) = chunk.range_indices(interval);
                for &v in &chunk.values[lo..hi] {
                    acc.add(v);
                }
            }
        }
        acc
    }

    /// Single aggregate over a range.
    pub fn aggregate(&self, id: SeriesId, interval: &Interval, kind: AggKind) -> Option<f64> {
        self.summarize(id, interval).get(kind)
    }

    /// [`summarize`](Self::summarize) over many series at once, returned
    /// in input order. Per-series summaries are independent, so the
    /// batch fans out across threads for large id sets (the multi-series
    /// scan queries Q4/Q5/Q8 of the storage experiment) with results
    /// identical to calling `summarize` in a loop.
    pub fn summarize_batch(&self, ids: &[SeriesId], interval: &Interval) -> Vec<Summary> {
        self.summarize_batch_mode(ids, interval, ExecMode::Auto)
    }

    /// [`summarize_batch`](Self::summarize_batch) with an explicit
    /// execution mode.
    pub fn summarize_batch_mode(
        &self,
        ids: &[SeriesId],
        interval: &Interval,
        mode: ExecMode,
    ) -> Vec<Summary> {
        if should_parallelize(mode, ids.len()) {
            ids.par_iter()
                .map(|&id| self.summarize(id, interval))
                .collect()
        } else {
            ids.iter().map(|&id| self.summarize(id, interval)).collect()
        }
    }

    /// [`aggregate`](Self::aggregate) over many series at once, in input
    /// order.
    pub fn aggregate_batch(
        &self,
        ids: &[SeriesId],
        interval: &Interval,
        kind: AggKind,
    ) -> Vec<Option<f64>> {
        self.aggregate_batch_mode(ids, interval, kind, ExecMode::Auto)
    }

    /// [`aggregate_batch`](Self::aggregate_batch) with an explicit
    /// execution mode.
    pub fn aggregate_batch_mode(
        &self,
        ids: &[SeriesId],
        interval: &Interval,
        kind: AggKind,
        mode: ExecMode,
    ) -> Vec<Option<f64>> {
        self.summarize_batch_mode(ids, interval, mode)
            .iter()
            .map(|s| s.get(kind))
            .collect()
    }

    /// Bucketed aggregation: one summary per tumbling window of width
    /// `bucket` across `interval`. Returns `(bucket_start, summary)` pairs
    /// for non-empty buckets.
    ///
    /// Fast path: when `bucket` is a whole multiple of the chunk width,
    /// fully-covered chunks contribute their precomputed summaries in
    /// O(1) each (TimescaleDB-style chunk-wise aggregation); only
    /// interval-boundary chunks are scanned.
    pub fn aggregate_buckets(
        &self,
        id: SeriesId,
        interval: &Interval,
        bucket: Duration,
    ) -> Vec<(Timestamp, Summary)> {
        let mut out: Vec<(Timestamp, Summary)> = Vec::new();
        let aligned = bucket.millis() > 0 && bucket.millis() % self.chunk_width.millis() == 0;
        if aligned {
            if let Some(sc) = self.series.get(&id) {
                let first_key = interval.start.truncate(self.chunk_width);
                for (&key, chunk) in sc.chunks.range(first_key..interval.end) {
                    let chunk_iv = Interval::new(key, key + self.chunk_width);
                    let bucket_key = key.truncate(bucket);
                    if interval.contains_interval(&chunk_iv) {
                        match out.last_mut() {
                            Some((last, s)) if *last == bucket_key => s.merge(&chunk.summary),
                            _ => out.push((bucket_key, chunk.summary)),
                        }
                    } else {
                        let (lo, hi) = chunk.range_indices(interval);
                        for i in lo..hi {
                            let bk = chunk.times[i].truncate(bucket);
                            match out.last_mut() {
                                Some((last, s)) if *last == bk => s.add(chunk.values[i]),
                                _ => {
                                    let mut s = Summary::new();
                                    s.add(chunk.values[i]);
                                    out.push((bk, s));
                                }
                            }
                        }
                    }
                }
            }
            return out;
        }
        self.scan(id, interval, |t, v| {
            let key = t.truncate(bucket);
            match out.last_mut() {
                Some((last_key, s)) if *last_key == key => s.add(v),
                _ => {
                    let mut s = Summary::new();
                    s.add(v);
                    out.push((key, s));
                }
            }
        });
        out
    }

    /// Removes a series entirely; returns whether it existed.
    pub fn drop_series(&mut self, id: SeriesId) -> bool {
        self.series.remove(&id).is_some()
    }

    /// Removes all observations strictly before `t` (retention policy).
    /// Whole chunks are dropped in O(log n); the boundary chunk is trimmed.
    pub fn retain_from(&mut self, id: SeriesId, t: Timestamp) -> Result<()> {
        let sc = self
            .series
            .get_mut(&id)
            .ok_or(HyGraphError::SeriesNotFound(id))?;
        let boundary_key = t.truncate(self.chunk_width);
        // drop whole chunks before the boundary chunk
        let dead: Vec<Timestamp> = sc.chunks.range(..boundary_key).map(|(&k, _)| k).collect();
        for k in dead {
            let c = sc.chunks.remove(&k).expect("key just listed");
            sc.len -= c.times.len();
        }
        // trim the boundary chunk
        if let Some(chunk) = sc.chunks.get_mut(&boundary_key) {
            let cut = chunk.times.partition_point(|&ct| ct < t);
            if cut > 0 {
                chunk.times.drain(..cut);
                chunk.values.drain(..cut);
                sc.len -= cut;
                chunk.summary = Summary::of(&chunk.values);
            }
            if chunk.times.is_empty() {
                sc.chunks.remove(&boundary_key);
            }
        }
        Ok(())
    }
}

impl Default for TsStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn store_100ms() -> TsStore {
        TsStore::with_chunk_width(Duration::from_millis(100))
    }

    #[test]
    fn insert_and_range_across_chunks() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for i in 0..10 {
            st.insert(id, ts(i * 50), i as f64);
        }
        assert_eq!(st.len(id), 10);
        assert_eq!(st.chunk_count(id), 5, "two points per 100ms chunk");
        let r = st.range(id, &Interval::new(ts(100), ts(300)));
        assert_eq!(r.values(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.times()[0], ts(100));
    }

    #[test]
    fn duplicate_overwrite_rebuilds_chunk_summary() {
        // regression: overwriting the value that held a chunk's min or
        // max must rebuild the sparse summary, not just patch the value
        // vector — otherwise covered-chunk aggregates report stale
        // extremes
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(10), 100.0); // chunk max
        st.insert(id, ts(20), -100.0); // chunk min
        st.insert(id, ts(30), 1.0);
        // overwrite both extremes with interior values (same chunk)
        st.insert(id, ts(10), 2.0);
        st.insert(id, ts(20), 3.0);
        // interval covering the whole chunk takes the precomputed-summary
        // path
        let whole = Interval::new(ts(0), ts(100));
        let s = st.summarize(id, &whole);
        assert_eq!(s.count, 3, "overwrite must not add observations");
        assert_eq!(s.min, 1.0, "stale min -100 must be gone");
        assert_eq!(s.max, 3.0, "stale max 100 must be gone");
        assert_eq!(s.sum, 6.0);
        assert_eq!(st.aggregate(id, &whole, AggKind::Mean), Some(2.0));
        // and the summary path agrees with a raw partial-chunk scan
        let partial = st.summarize(id, &Interval::new(ts(0), ts(99)));
        assert_eq!(partial.min, s.min);
        assert_eq!(partial.max, s.max);
        assert_eq!(partial.sum, s.sum);
    }

    #[test]
    fn batch_summarize_matches_per_series_calls() {
        let mut st = store_100ms();
        let ids: Vec<SeriesId> = (1..=40).map(SeriesId::new).collect();
        for (k, &id) in ids.iter().enumerate() {
            for i in 0..50 {
                st.insert(id, ts(i * 20), (i + k as i64) as f64 * 0.5);
            }
        }
        let iv = Interval::new(ts(40), ts(760));
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let batch = st.summarize_batch_mode(&ids, &iv, mode);
            assert_eq!(batch.len(), ids.len());
            for (&id, b) in ids.iter().zip(&batch) {
                let single = st.summarize(id, &iv);
                assert_eq!(b.count, single.count, "{mode:?}");
                assert_eq!(b.sum.to_bits(), single.sum.to_bits(), "{mode:?}");
                assert_eq!(b.min, single.min);
                assert_eq!(b.max, single.max);
            }
            let aggs = st.aggregate_batch_mode(&ids, &iv, AggKind::Max, mode);
            for (&id, a) in ids.iter().zip(&aggs) {
                assert_eq!(*a, st.aggregate(id, &iv, AggKind::Max));
            }
        }
    }

    #[test]
    fn out_of_order_and_duplicate_inserts() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(250), 2.5);
        st.insert(id, ts(50), 0.5);
        st.insert(id, ts(150), 1.5);
        st.insert(id, ts(150), 9.9); // overwrite
        assert_eq!(st.len(id), 3);
        let r = st.range(id, &Interval::ALL);
        assert_eq!(r.times(), &[ts(50), ts(150), ts(250)]);
        assert_eq!(r.values(), &[0.5, 9.9, 2.5]);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn value_lookups() {
        let mut st = store_100ms();
        let id = SeriesId::new(7);
        st.insert(id, ts(10), 1.0);
        st.insert(id, ts(210), 2.0);
        assert_eq!(st.value_at(id, ts(10)), Some(1.0));
        assert_eq!(st.value_at(id, ts(11)), None);
        assert_eq!(st.value_at_or_before(id, ts(209)), Some((ts(10), 1.0)));
        assert_eq!(st.value_at_or_before(id, ts(210)), Some((ts(210), 2.0)));
        assert_eq!(st.value_at_or_before(id, ts(9)), None);
        assert_eq!(st.value_at(SeriesId::new(99), ts(10)), None);
    }

    #[test]
    fn summarize_matches_naive() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 100, |i| (i % 7) as f64);
        st.insert_series(id, &s);
        let iv = Interval::new(ts(95), ts(805));
        let fast = st.summarize(id, &iv);
        let slow = Summary::of(s.range(&iv).values);
        assert_eq!(fast.count, slow.count);
        assert!((fast.sum - slow.sum).abs() < 1e-9);
        assert_eq!(fast.min, slow.min);
        assert_eq!(fast.max, slow.max);
    }

    #[test]
    fn aggregate_kinds() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for (i, v) in [3.0, 1.0, 4.0, 1.0, 5.0].iter().enumerate() {
            st.insert(id, ts(i as i64 * 10), *v);
        }
        let iv = Interval::ALL;
        assert_eq!(st.aggregate(id, &iv, AggKind::Count), Some(5.0));
        assert_eq!(st.aggregate(id, &iv, AggKind::Sum), Some(14.0));
        assert_eq!(st.aggregate(id, &iv, AggKind::Mean), Some(2.8));
        assert_eq!(st.aggregate(id, &iv, AggKind::Min), Some(1.0));
        assert_eq!(st.aggregate(id, &iv, AggKind::Max), Some(5.0));
        // empty range
        let empty = Interval::new(ts(1000), ts(2000));
        assert_eq!(st.aggregate(id, &empty, AggKind::Mean), None);
        assert_eq!(st.aggregate(id, &empty, AggKind::Count), Some(0.0));
    }

    #[test]
    fn bucketed_aggregation() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for i in 0..6 {
            st.insert(id, ts(i * 50), 1.0);
        }
        let buckets = st.aggregate_buckets(id, &Interval::ALL, Duration::from_millis(100));
        assert_eq!(buckets.len(), 3);
        for (_, s) in &buckets {
            assert_eq!(s.count, 2);
        }
        assert_eq!(buckets[0].0, ts(0));
        assert_eq!(buckets[2].0, ts(200));
    }

    #[test]
    fn retention() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        for i in 0..10 {
            st.insert(id, ts(i * 50), i as f64);
        }
        st.retain_from(id, ts(225)).unwrap();
        let r = st.range(id, &Interval::ALL);
        assert_eq!(r.times()[0], ts(250));
        assert_eq!(st.len(id), 5);
        // summaries still correct after trim
        assert_eq!(st.aggregate(id, &Interval::ALL, AggKind::Min), Some(5.0));
        assert!(st.retain_from(SeriesId::new(9), ts(0)).is_err());
    }

    #[test]
    fn negative_timestamps_supported() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(-250), 1.0);
        st.insert(id, ts(-50), 2.0);
        st.insert(id, ts(50), 3.0);
        let r = st.range(id, &Interval::new(ts(-300), ts(0)));
        assert_eq!(r.values(), &[1.0, 2.0]);
        assert_eq!(st.summarize(id, &Interval::ALL).count, 3);
    }

    #[test]
    fn agg_kind_parse() {
        assert_eq!(AggKind::parse("AVG").unwrap(), AggKind::Mean);
        assert_eq!(AggKind::parse("mean").unwrap(), AggKind::Mean);
        assert_eq!(AggKind::parse("count").unwrap(), AggKind::Count);
        let err = AggKind::parse("median").unwrap_err().to_string();
        assert!(err.contains("median"), "error names the typo: {err}");
        assert!(err.contains("valid:"), "error lists valid kinds: {err}");
    }

    #[test]
    fn drop_series() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        st.insert(id, ts(0), 1.0);
        assert!(st.drop_series(id));
        assert!(!st.drop_series(id));
        assert_eq!(st.len(id), 0);
        assert!(st.is_empty());
    }

    #[test]
    fn aligned_bucket_fast_path_matches_scan_path() {
        let mut st = store_100ms();
        let id = SeriesId::new(1);
        let s = TimeSeries::generate(ts(7), Duration::from_millis(13), 200, |i| {
            ((i * 31) % 17) as f64
        });
        st.insert_series(id, &s);
        // bucket = 2 chunks (aligned fast path) vs odd bucket (scan path)
        for (a, b) in [(200i64, 200i64)] {
            let iv = Interval::new(ts(37), ts(2_000));
            let fast = st.aggregate_buckets(id, &iv, Duration::from_millis(a));
            // recompute naively from a materialised range
            let r = st.range(id, &iv);
            let mut naive: Vec<(Timestamp, Summary)> = Vec::new();
            for (t, v) in r.iter() {
                let key = t.truncate(Duration::from_millis(b));
                match naive.last_mut() {
                    Some((k, su)) if *k == key => su.add(v),
                    _ => {
                        let mut su = Summary::new();
                        su.add(v);
                        naive.push((key, su));
                    }
                }
            }
            assert_eq!(fast.len(), naive.len());
            for ((tk, fs), (nk, ns)) in fast.iter().zip(&naive) {
                assert_eq!(tk, nk);
                assert_eq!(fs.count, ns.count);
                assert!((fs.sum - ns.sum).abs() < 1e-9);
                assert_eq!(fs.min, ns.min);
                assert_eq!(fs.max, ns.max);
            }
        }
    }

    #[test]
    fn summary_merge_and_get() {
        let mut a = Summary::of(&[1.0, 2.0]);
        let b = Summary::of(&[10.0]);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.get(AggKind::Max), Some(10.0));
        assert_eq!(a.get(AggKind::Min), Some(1.0));
        let e = Summary::new();
        assert_eq!(e.get(AggKind::Sum), None);
        assert_eq!(e.get(AggKind::Count), Some(0.0));
        assert_eq!(e.mean(), None);
    }
}
