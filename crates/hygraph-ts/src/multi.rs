//! Multivariate time series.
//!
//! The paper defines a multivariate series as an ordered set of tuples
//! `ts = {(t₁,y₁), …, (tₙ,yₙ)}` where each `y = (val₁, …, val_k)` is a
//! tuple of `k` variable values. [`MultiSeries`] stores this column-wise:
//! one shared timestamp axis plus `k` named value columns — the layout
//! Xarray uses in the paper's Python prototype.

use crate::config::TsOptions;
use crate::rollup::Pyramid;
use crate::series::TimeSeries;
use crate::store::Summary;
use hygraph_types::{HyGraphError, Interval, Result, Timestamp};
use std::fmt;

/// Rows per precomputed summary block (see [`MultiSeries::summarize`]).
pub const SUMMARY_BLOCK: usize = 512;

/// A multivariate time series: one time axis, `k` named variables.
///
/// Alongside the raw columns the series maintains per-column summary
/// blocks — one incrementally-updated [`Summary`] per [`SUMMARY_BLOCK`]
/// rows — plus a rollup [`Pyramid`] over each column's *completed*
/// blocks, so interval aggregates via [`Self::summarize`] cost
/// O(F·log blocks) pyramid merges instead of O(blocks touched). The
/// blocks and pyramids are derived data: they never participate in
/// equality or serialization.
#[derive(Clone, Default)]
pub struct MultiSeries {
    times: Vec<Timestamp>,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    block_sums: Vec<Vec<Summary>>,
    /// Per-column pyramid whose leaves are the completed (full) summary
    /// blocks; the trailing partial block stays outside so appends only
    /// touch it on block completion.
    block_pyrs: Vec<Pyramid>,
}

impl PartialEq for MultiSeries {
    fn eq(&self, other: &Self) -> bool {
        // block_sums is derived from the other fields, so it is excluded
        self.times == other.times && self.names == other.names && self.columns == other.columns
    }
}

impl MultiSeries {
    /// An empty multivariate series with the given variable names.
    pub fn new(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let columns: Vec<Vec<f64>> = names.iter().map(|_| Vec::new()).collect();
        let block_sums = names.iter().map(|_| Vec::new()).collect();
        let fanout = TsOptions::from_env().rollup_fanout;
        let block_pyrs = names
            .iter()
            .map(|_| Pyramid::build(Vec::new(), fanout))
            .collect();
        Self {
            times: Vec::new(),
            names,
            columns,
            block_sums,
            block_pyrs,
        }
    }

    /// Number of *completed* summary blocks (the trailing partial block
    /// is excluded — it is still growing).
    fn completed_blocks(&self) -> usize {
        self.times.len() / SUMMARY_BLOCK
    }

    /// Rebuilds every summary block and block pyramid from the raw
    /// columns (bulk constructors; `push` maintains them incrementally).
    fn rebuild_blocks(&mut self) {
        self.block_sums = self
            .columns
            .iter()
            .map(|col| col.chunks(SUMMARY_BLOCK).map(Summary::of).collect())
            .collect();
        let fanout = TsOptions::from_env().rollup_fanout;
        let full = self.completed_blocks();
        self.block_pyrs = self
            .block_sums
            .iter()
            .map(|blocks| Pyramid::build(blocks[..full].to_vec(), fanout))
            .collect();
    }

    /// Wraps a single univariate series as a 1-column multivariate one.
    pub fn from_univariate(name: impl Into<String>, s: &TimeSeries) -> Self {
        let mut m = Self {
            times: s.times().to_vec(),
            names: vec![name.into()],
            columns: vec![s.values().to_vec()],
            block_sums: Vec::new(),
            block_pyrs: Vec::new(),
        };
        m.rebuild_blocks();
        m
    }

    /// Builds from already-aligned univariate series (all must share the
    /// exact same time axis).
    pub fn from_aligned(parts: impl IntoIterator<Item = (String, TimeSeries)>) -> Result<Self> {
        let mut names = Vec::new();
        let mut columns = Vec::new();
        let mut times: Option<Vec<Timestamp>> = None;
        for (name, s) in parts {
            match &times {
                None => times = Some(s.times().to_vec()),
                Some(t) => {
                    if t.as_slice() != s.times() {
                        return Err(HyGraphError::invalid(format!(
                            "variable '{name}' is not aligned with the shared time axis"
                        )));
                    }
                }
            }
            names.push(name);
            columns.push(s.values().to_vec());
        }
        let times = times.ok_or(HyGraphError::EmptyInput("MultiSeries::from_aligned"))?;
        let mut m = Self {
            times,
            names,
            columns,
            block_sums: Vec::new(),
            block_pyrs: Vec::new(),
        };
        m.rebuild_blocks();
        Ok(m)
    }

    /// Number of observations (length of the time axis).
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of variables `k`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Variable names in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The shared time axis.
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// Index of the variable called `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The raw value column at position `idx`.
    pub fn column(&self, idx: usize) -> Option<&[f64]> {
        self.columns.get(idx).map(Vec::as_slice)
    }

    /// The raw value column for variable `name`.
    pub fn column_by_name(&self, name: &str) -> Option<&[f64]> {
        self.column(self.column_index(name)?)
    }

    /// Appends an observation tuple; errors on arity mismatch or
    /// out-of-order timestamp.
    pub fn push(&mut self, t: Timestamp, y: &[f64]) -> Result<()> {
        if y.len() != self.arity() {
            return Err(HyGraphError::ArityMismatch {
                expected: self.arity(),
                got: y.len(),
            });
        }
        if let Some(&last) = self.times.last() {
            if t <= last {
                return Err(HyGraphError::OutOfOrder { at: t, last });
            }
        }
        self.times.push(t);
        let block = (self.times.len() - 1) / SUMMARY_BLOCK;
        let completes_block = self.times.len().is_multiple_of(SUMMARY_BLOCK);
        for ((col, blocks), (pyr, &v)) in self
            .columns
            .iter_mut()
            .zip(&mut self.block_sums)
            .zip(self.block_pyrs.iter_mut().zip(y))
        {
            col.push(v);
            if blocks.len() <= block {
                blocks.push(Summary::new());
            }
            blocks[block].add(v);
            if completes_block {
                // the block just filled: it becomes a pyramid leaf
                pyr.push_leaf(blocks[block]);
            }
        }
        Ok(())
    }

    /// The observation tuple at time `t`, if present.
    pub fn row_at(&self, t: Timestamp) -> Option<Vec<f64>> {
        let i = self.times.binary_search(&t).ok()?;
        Some(self.columns.iter().map(|c| c[i]).collect())
    }

    /// The observation tuple at position `i`.
    pub fn row(&self, i: usize) -> Option<(Timestamp, Vec<f64>)> {
        let t = *self.times.get(i)?;
        Some((t, self.columns.iter().map(|c| c[i]).collect()))
    }

    /// Extracts one variable as an owned univariate [`TimeSeries`] — the
    /// bridge from multivariate storage to the univariate operator library.
    pub fn to_univariate(&self, name: &str) -> Option<TimeSeries> {
        let idx = self.column_index(name)?;
        Some(TimeSeries::from_pairs(
            self.times
                .iter()
                .copied()
                .zip(self.columns[idx].iter().copied()),
        ))
    }

    /// Owned sub-series of the observations inside `interval`.
    pub fn slice(&self, interval: &Interval) -> MultiSeries {
        let lo = self.times.partition_point(|&t| t < interval.start);
        let hi = self.times.partition_point(|&t| t < interval.end);
        let mut m = MultiSeries {
            times: self.times[lo..hi].to_vec(),
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c[lo..hi].to_vec()).collect(),
            block_sums: Vec::new(),
            block_pyrs: Vec::new(),
        };
        m.rebuild_blocks();
        m
    }

    /// Summary of one column's values inside `interval`, served from the
    /// block pyramid: runs of fully-covered blocks merge O(F·log blocks)
    /// precomputed pyramid nodes, only the (at most two) boundary blocks
    /// are scanned. `None` when `col` is out of bounds; an empty range
    /// yields an empty summary (count 0).
    ///
    /// This is the one aggregate kernel shared by every query-execution
    /// path, so interpreter and planner results are bit-identical by
    /// construction.
    pub fn summarize(&self, interval: &Interval, col: usize) -> Option<Summary> {
        let column = self.columns.get(col)?;
        let blocks = &self.block_sums[col];
        let pyr = &self.block_pyrs[col];
        let lo = self.times.partition_point(|&t| t < interval.start);
        let hi = self.times.partition_point(|&t| t < interval.end);
        let mut acc = Summary::new();
        let mut i = lo;
        while i < hi {
            let b = i / SUMMARY_BLOCK;
            let bstart = b * SUMMARY_BLOCK;
            let bend = (bstart + SUMMARY_BLOCK).min(column.len());
            if i == bstart && bend <= hi {
                if b < pyr.len() {
                    // run of covered complete blocks → pyramid nodes
                    let run_end = (hi / SUMMARY_BLOCK).min(pyr.len());
                    let (s, _) = pyr.range(b, run_end);
                    acc.merge(&s);
                    i = run_end * SUMMARY_BLOCK;
                    continue;
                }
                // covered trailing partial block (outside the pyramid)
                acc.merge(&blocks[b]);
            } else {
                for &v in &column[i..hi.min(bend)] {
                    acc.add(v);
                }
            }
            i = bend;
        }
        Some(acc)
    }

    /// Adds a new variable column aligned to the existing time axis.
    pub fn add_column(&mut self, name: impl Into<String>, values: Vec<f64>) -> Result<()> {
        if values.len() != self.len() {
            return Err(HyGraphError::ArityMismatch {
                expected: self.len(),
                got: values.len(),
            });
        }
        let blocks: Vec<Summary> = values.chunks(SUMMARY_BLOCK).map(Summary::of).collect();
        self.block_pyrs.push(Pyramid::build(
            blocks[..self.completed_blocks()].to_vec(),
            TsOptions::from_env().rollup_fanout,
        ));
        self.block_sums.push(blocks);
        self.names.push(name.into());
        self.columns.push(values);
        Ok(())
    }

    /// Iterates `(Timestamp, row)` pairs. Rows are freshly allocated per
    /// item; prefer [`Self::column`] access in hot loops.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Timestamp, Vec<f64>)> + '_ {
        (0..self.len()).map(move |i| self.row(i).expect("index in range"))
    }

    /// Checks chronological integrity and column alignment.
    pub fn validate(&self) -> Result<()> {
        for col in &self.columns {
            if col.len() != self.times.len() {
                return Err(HyGraphError::invalid("column length mismatch"));
            }
        }
        for w in self.times.windows(2) {
            if w[0] >= w[1] {
                return Err(HyGraphError::DuplicateTimestamp(w[1]));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for MultiSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MultiSeries(len={}, vars={:?})", self.len(), self.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Duration;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn sample() -> MultiSeries {
        let mut m = MultiSeries::new(["price", "volume"]);
        m.push(ts(10), &[100.0, 5.0]).unwrap();
        m.push(ts(20), &[101.0, 7.0]).unwrap();
        m.push(ts(30), &[99.5, 2.0]).unwrap();
        m
    }

    #[test]
    fn push_and_access() {
        let m = sample();
        assert_eq!(m.len(), 3);
        assert_eq!(m.arity(), 2);
        assert_eq!(m.row_at(ts(20)), Some(vec![101.0, 7.0]));
        assert_eq!(m.row_at(ts(21)), None);
        assert_eq!(m.column_by_name("volume"), Some(&[5.0, 7.0, 2.0][..]));
        assert_eq!(m.column_by_name("missing"), None);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut m = sample();
        let err = m.push(ts(40), &[1.0]).unwrap_err();
        assert_eq!(
            err,
            HyGraphError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn out_of_order_rejected() {
        let mut m = sample();
        assert!(matches!(
            m.push(ts(30), &[0.0, 0.0]).unwrap_err(),
            HyGraphError::OutOfOrder { .. }
        ));
    }

    #[test]
    fn univariate_roundtrip() {
        let m = sample();
        let price = m.to_univariate("price").unwrap();
        assert_eq!(price.values(), &[100.0, 101.0, 99.5]);
        let back = MultiSeries::from_univariate("price", &price);
        assert_eq!(back.column_by_name("price"), m.column_by_name("price"));
        assert_eq!(back.times(), m.times());
    }

    #[test]
    fn from_aligned_checks_axis() {
        let a = TimeSeries::generate(ts(0), Duration::from_millis(10), 3, |i| i as f64);
        let b = TimeSeries::generate(ts(0), Duration::from_millis(10), 3, |i| i as f64 * 2.0);
        let m =
            MultiSeries::from_aligned([("a".to_owned(), a.clone()), ("b".to_owned(), b)]).unwrap();
        assert_eq!(m.arity(), 2);
        let misaligned = TimeSeries::generate(ts(5), Duration::from_millis(10), 3, |_| 0.0);
        assert!(
            MultiSeries::from_aligned([("a".to_owned(), a), ("c".to_owned(), misaligned)]).is_err()
        );
        assert!(MultiSeries::from_aligned(std::iter::empty::<(String, TimeSeries)>()).is_err());
    }

    #[test]
    fn slice_multivariate() {
        let m = sample();
        let sub = m.slice(&Interval::new(ts(15), ts(35)));
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.column_by_name("price"), Some(&[101.0, 99.5][..]));
        assert_eq!(sub.arity(), 2);
    }

    #[test]
    fn add_column_aligned() {
        let mut m = sample();
        m.add_column("spread", vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(m.arity(), 3);
        assert!(m.add_column("bad", vec![1.0]).is_err());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn iter_rows_order() {
        let m = sample();
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows[0], (ts(10), vec![100.0, 5.0]));
        assert_eq!(rows[2], (ts(30), vec![99.5, 2.0]));
    }

    #[test]
    fn summarize_small_series_matches_scan() {
        let m = sample();
        let s = m.summarize(&Interval::new(ts(15), ts(35)), 0).unwrap();
        let want = Summary::of(&[101.0, 99.5]);
        assert_eq!(s.count, want.count);
        assert_eq!(s.sum.to_bits(), want.sum.to_bits());
        assert_eq!(s.min, want.min);
        assert_eq!(s.max, want.max);
        // empty range: empty summary, not None
        let empty = m.summarize(&Interval::new(ts(100), ts(200)), 0).unwrap();
        assert_eq!(empty.count, 0);
        // out-of-bounds column
        assert!(m.summarize(&Interval::ALL, 9).is_none());
    }

    #[test]
    fn summarize_uses_blocks_across_many_rows() {
        // > 2 blocks so full-block merges, boundary scans, and the
        // incremental push path all get exercised; integer values keep
        // the merged sum exact
        let mut m = MultiSeries::new(["v"]);
        let n = 3 * SUMMARY_BLOCK + 77;
        for i in 0..n {
            m.push(ts(i as i64), &[(i % 13) as f64]).unwrap();
        }
        for (lo, hi) in [(0, n), (100, 600), (511, 513), (0, 512), (700, 701)] {
            let s = m
                .summarize(&Interval::new(ts(lo as i64), ts(hi as i64)), 0)
                .unwrap();
            let want = Summary::of(&m.column(0).unwrap()[lo..hi]);
            assert_eq!(s.count, want.count, "[{lo},{hi})");
            assert_eq!(s.sum, want.sum, "[{lo},{hi})");
            assert_eq!(s.min, want.min, "[{lo},{hi})");
            assert_eq!(s.max, want.max, "[{lo},{hi})");
        }
        // blocks follow every constructor, not just push
        let sliced = m.slice(&Interval::new(ts(10), ts(1500)));
        let s = sliced.summarize(&Interval::ALL, 0).unwrap();
        assert_eq!(s.count, 1490);
    }

    #[test]
    fn summarize_is_bitwise_construction_independent() {
        // the pyramid is a pure function of the blocks, and the blocks
        // a pure function of the column, so bulk and incremental
        // construction must answer every aggregate bit-identically even
        // for rounding-sensitive values
        let n = 4 * SUMMARY_BLOCK + 3;
        let series = TimeSeries::generate(ts(0), Duration::from_millis(1), n, |i| {
            (i as f64 * 0.7).sin() / 3.0
        });
        let bulk = MultiSeries::from_univariate("v", &series);
        let mut inc = MultiSeries::new(["v"]);
        for (t, v) in series.iter() {
            inc.push(t, &[v]).unwrap();
        }
        for (lo, hi) in [(0, n), (1, n - 1), (0, 512), (512, 2048), (100, 1900)] {
            let iv = Interval::new(ts(lo as i64), ts(hi as i64));
            let a = bulk.summarize(&iv, 0).unwrap();
            let b = inc.summarize(&iv, 0).unwrap();
            assert_eq!(a.count, b.count, "[{lo},{hi})");
            assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "[{lo},{hi})");
            assert_eq!(a.min.to_bits(), b.min.to_bits(), "[{lo},{hi})");
            assert_eq!(a.max.to_bits(), b.max.to_bits(), "[{lo},{hi})");
        }
    }

    #[test]
    fn equality_ignores_derived_blocks() {
        // same data built two ways (bulk vs incremental) compares equal
        let series = TimeSeries::generate(ts(0), Duration::from_millis(10), 50, |i| i as f64);
        let bulk = MultiSeries::from_univariate("v", &series);
        let mut inc = MultiSeries::new(["v"]);
        for (t, v) in series.iter() {
            inc.push(t, &[v]).unwrap();
        }
        assert_eq!(bulk, inc);
    }
}
