//! Multivariate time series.
//!
//! The paper defines a multivariate series as an ordered set of tuples
//! `ts = {(t₁,y₁), …, (tₙ,yₙ)}` where each `y = (val₁, …, val_k)` is a
//! tuple of `k` variable values. [`MultiSeries`] stores this column-wise:
//! one shared timestamp axis plus `k` named value columns — the layout
//! Xarray uses in the paper's Python prototype.

use crate::series::TimeSeries;
use hygraph_types::{HyGraphError, Interval, Result, Timestamp};
use std::fmt;

/// A multivariate time series: one time axis, `k` named variables.
#[derive(Clone, Default, PartialEq)]
pub struct MultiSeries {
    times: Vec<Timestamp>,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl MultiSeries {
    /// An empty multivariate series with the given variable names.
    pub fn new(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let columns = names.iter().map(|_| Vec::new()).collect();
        Self {
            times: Vec::new(),
            names,
            columns,
        }
    }

    /// Wraps a single univariate series as a 1-column multivariate one.
    pub fn from_univariate(name: impl Into<String>, s: &TimeSeries) -> Self {
        Self {
            times: s.times().to_vec(),
            names: vec![name.into()],
            columns: vec![s.values().to_vec()],
        }
    }

    /// Builds from already-aligned univariate series (all must share the
    /// exact same time axis).
    pub fn from_aligned(parts: impl IntoIterator<Item = (String, TimeSeries)>) -> Result<Self> {
        let mut names = Vec::new();
        let mut columns = Vec::new();
        let mut times: Option<Vec<Timestamp>> = None;
        for (name, s) in parts {
            match &times {
                None => times = Some(s.times().to_vec()),
                Some(t) => {
                    if t.as_slice() != s.times() {
                        return Err(HyGraphError::invalid(format!(
                            "variable '{name}' is not aligned with the shared time axis"
                        )));
                    }
                }
            }
            names.push(name);
            columns.push(s.values().to_vec());
        }
        let times = times.ok_or(HyGraphError::EmptyInput("MultiSeries::from_aligned"))?;
        Ok(Self {
            times,
            names,
            columns,
        })
    }

    /// Number of observations (length of the time axis).
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of variables `k`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Variable names in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The shared time axis.
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// Index of the variable called `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The raw value column at position `idx`.
    pub fn column(&self, idx: usize) -> Option<&[f64]> {
        self.columns.get(idx).map(Vec::as_slice)
    }

    /// The raw value column for variable `name`.
    pub fn column_by_name(&self, name: &str) -> Option<&[f64]> {
        self.column(self.column_index(name)?)
    }

    /// Appends an observation tuple; errors on arity mismatch or
    /// out-of-order timestamp.
    pub fn push(&mut self, t: Timestamp, y: &[f64]) -> Result<()> {
        if y.len() != self.arity() {
            return Err(HyGraphError::ArityMismatch {
                expected: self.arity(),
                got: y.len(),
            });
        }
        if let Some(&last) = self.times.last() {
            if t <= last {
                return Err(HyGraphError::OutOfOrder { at: t, last });
            }
        }
        self.times.push(t);
        for (col, &v) in self.columns.iter_mut().zip(y) {
            col.push(v);
        }
        Ok(())
    }

    /// The observation tuple at time `t`, if present.
    pub fn row_at(&self, t: Timestamp) -> Option<Vec<f64>> {
        let i = self.times.binary_search(&t).ok()?;
        Some(self.columns.iter().map(|c| c[i]).collect())
    }

    /// The observation tuple at position `i`.
    pub fn row(&self, i: usize) -> Option<(Timestamp, Vec<f64>)> {
        let t = *self.times.get(i)?;
        Some((t, self.columns.iter().map(|c| c[i]).collect()))
    }

    /// Extracts one variable as an owned univariate [`TimeSeries`] — the
    /// bridge from multivariate storage to the univariate operator library.
    pub fn to_univariate(&self, name: &str) -> Option<TimeSeries> {
        let idx = self.column_index(name)?;
        Some(TimeSeries::from_pairs(
            self.times
                .iter()
                .copied()
                .zip(self.columns[idx].iter().copied()),
        ))
    }

    /// Owned sub-series of the observations inside `interval`.
    pub fn slice(&self, interval: &Interval) -> MultiSeries {
        let lo = self.times.partition_point(|&t| t < interval.start);
        let hi = self.times.partition_point(|&t| t < interval.end);
        MultiSeries {
            times: self.times[lo..hi].to_vec(),
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c[lo..hi].to_vec()).collect(),
        }
    }

    /// Adds a new variable column aligned to the existing time axis.
    pub fn add_column(&mut self, name: impl Into<String>, values: Vec<f64>) -> Result<()> {
        if values.len() != self.len() {
            return Err(HyGraphError::ArityMismatch {
                expected: self.len(),
                got: values.len(),
            });
        }
        self.names.push(name.into());
        self.columns.push(values);
        Ok(())
    }

    /// Iterates `(Timestamp, row)` pairs. Rows are freshly allocated per
    /// item; prefer [`Self::column`] access in hot loops.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Timestamp, Vec<f64>)> + '_ {
        (0..self.len()).map(move |i| self.row(i).expect("index in range"))
    }

    /// Checks chronological integrity and column alignment.
    pub fn validate(&self) -> Result<()> {
        for col in &self.columns {
            if col.len() != self.times.len() {
                return Err(HyGraphError::invalid("column length mismatch"));
            }
        }
        for w in self.times.windows(2) {
            if w[0] >= w[1] {
                return Err(HyGraphError::DuplicateTimestamp(w[1]));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for MultiSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MultiSeries(len={}, vars={:?})", self.len(), self.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Duration;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn sample() -> MultiSeries {
        let mut m = MultiSeries::new(["price", "volume"]);
        m.push(ts(10), &[100.0, 5.0]).unwrap();
        m.push(ts(20), &[101.0, 7.0]).unwrap();
        m.push(ts(30), &[99.5, 2.0]).unwrap();
        m
    }

    #[test]
    fn push_and_access() {
        let m = sample();
        assert_eq!(m.len(), 3);
        assert_eq!(m.arity(), 2);
        assert_eq!(m.row_at(ts(20)), Some(vec![101.0, 7.0]));
        assert_eq!(m.row_at(ts(21)), None);
        assert_eq!(m.column_by_name("volume"), Some(&[5.0, 7.0, 2.0][..]));
        assert_eq!(m.column_by_name("missing"), None);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut m = sample();
        let err = m.push(ts(40), &[1.0]).unwrap_err();
        assert_eq!(
            err,
            HyGraphError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn out_of_order_rejected() {
        let mut m = sample();
        assert!(matches!(
            m.push(ts(30), &[0.0, 0.0]).unwrap_err(),
            HyGraphError::OutOfOrder { .. }
        ));
    }

    #[test]
    fn univariate_roundtrip() {
        let m = sample();
        let price = m.to_univariate("price").unwrap();
        assert_eq!(price.values(), &[100.0, 101.0, 99.5]);
        let back = MultiSeries::from_univariate("price", &price);
        assert_eq!(back.column_by_name("price"), m.column_by_name("price"));
        assert_eq!(back.times(), m.times());
    }

    #[test]
    fn from_aligned_checks_axis() {
        let a = TimeSeries::generate(ts(0), Duration::from_millis(10), 3, |i| i as f64);
        let b = TimeSeries::generate(ts(0), Duration::from_millis(10), 3, |i| i as f64 * 2.0);
        let m =
            MultiSeries::from_aligned([("a".to_owned(), a.clone()), ("b".to_owned(), b)]).unwrap();
        assert_eq!(m.arity(), 2);
        let misaligned = TimeSeries::generate(ts(5), Duration::from_millis(10), 3, |_| 0.0);
        assert!(
            MultiSeries::from_aligned([("a".to_owned(), a), ("c".to_owned(), misaligned)]).is_err()
        );
        assert!(MultiSeries::from_aligned(std::iter::empty::<(String, TimeSeries)>()).is_err());
    }

    #[test]
    fn slice_multivariate() {
        let m = sample();
        let sub = m.slice(&Interval::new(ts(15), ts(35)));
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.column_by_name("price"), Some(&[101.0, 99.5][..]));
        assert_eq!(sub.arity(), 2);
    }

    #[test]
    fn add_column_aligned() {
        let mut m = sample();
        m.add_column("spread", vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(m.arity(), 3);
        assert!(m.add_column("bad", vec![1.0]).is_err());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn iter_rows_order() {
        let m = sample();
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows[0], (ts(10), vec![100.0, 5.0]));
        assert_eq!(rows[2], (ts(30), vec![99.5, 2.0]));
    }
}
