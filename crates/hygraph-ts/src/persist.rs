//! Exact binary state codec for [`TsStore`].
//!
//! Serialises the store's physical layout — per-series chunk maps with
//! each chunk's columns (plain or sealed) *and* its
//! incrementally-maintained sparse [`Summary`] — rather than replaying
//! observations through [`TsStore::insert`]. Re-inserting would
//! recompute chunk summaries in time order, and floating-point
//! accumulation is order-sensitive: a store built from out-of-order
//! inserts could decode to one whose `sum` differs in the last bit.
//! Capturing the summary bits directly makes the round-trip exactly
//! lossless, which the crash-recovery tests in `hygraph-persist` rely
//! on (recovered store must be bit-identical to the committed state).
//!
//! # Format versions
//!
//! * **v1** (pre-compression) started directly with the positive chunk
//!   width; every chunk is plain columns (delta-encoded times, raw
//!   IEEE-754 value bits).
//! * **v2** starts with a zero-duration sentinel — invalid as a v1
//!   chunk width, so the two are unambiguous — followed by an explicit
//!   version number and the real width. Each chunk carries a tag byte:
//!   `0` = plain columns (v1 layout), `1` = a sealed compressed block
//!   ([`SealedBlock`]) as stored in memory, so sealed chunks persist
//!   without a decompress/recompress cycle.
//!
//! Encoding always writes v2; decoding accepts both, so checkpoints and
//! WAL state written before compression landed still load.

use crate::compress::SealedBlock;
use crate::config::TsOptions;
use crate::store::{note_sealed_delta, Chunk, ChunkData, SeriesChunks, Summary, TsStore};
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{Duration, HyGraphError, Result, SeriesId, Timestamp};
use std::collections::BTreeMap;

/// Current store codec version.
const VERSION: u64 = 2;

/// Chunk tag: plain sorted columns.
const TAG_PLAIN: u8 = 0;
/// Chunk tag: sealed compressed block.
const TAG_SEALED: u8 = 1;

/// Encodes the full store state into `w` (always the current version).
pub fn encode_store(store: &TsStore, w: &mut ByteWriter) {
    w.duration(Duration::from_millis(0)); // v2 sentinel (invalid v1 width)
    w.u64(VERSION);
    w.duration(store.chunk_width);
    w.len_of(store.series.len());
    for (id, sc) in &store.series {
        w.u64(id.raw());
        w.len_of(sc.len);
        w.len_of(sc.chunks.len());
        for (key, chunk) in &sc.chunks {
            w.timestamp(*key);
            match &chunk.data {
                ChunkData::Plain { times, values } => {
                    w.u8(TAG_PLAIN);
                    w.len_of(times.len());
                    let mut prev = key.millis();
                    for t in times {
                        w.u64((t.millis() - prev) as u64);
                        prev = t.millis();
                    }
                    for v in values {
                        w.f64(*v);
                    }
                }
                ChunkData::Sealed(block) => {
                    w.u8(TAG_SEALED);
                    block.encode(w);
                }
            }
            // a dirty (stale) summary is never serialised — the codec
            // writes the rebuilt one, and decode starts clean, keeping
            // decode∘encode canonical
            let s = chunk.current_summary();
            w.u64(s.count);
            w.f64(s.sum);
            w.f64(s.min);
            w.f64(s.max);
        }
    }
}

fn decode_plain_columns(
    r: &mut ByteReader<'_>,
    key: Timestamp,
) -> Result<(Vec<Timestamp>, Vec<f64>)> {
    let n = r.len_of()?;
    let mut times = Vec::with_capacity(n);
    let mut prev = key.millis();
    for _ in 0..n {
        let delta = r.u64()?;
        let t = prev
            .checked_add(delta as i64)
            .ok_or_else(|| HyGraphError::corrupt("timestamp delta overflow"))?;
        times.push(Timestamp::from_millis(t));
        prev = t;
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(r.f64()?);
    }
    Ok((times, values))
}

fn decode_summary(r: &mut ByteReader<'_>) -> Result<Summary> {
    Ok(Summary {
        count: r.u64()?,
        sum: r.f64()?,
        min: r.f64()?,
        max: r.f64()?,
    })
}

/// Decodes the per-series section shared by both format versions.
/// `v2` selects whether chunks carry tag bytes (and may be sealed).
fn decode_series_into(r: &mut ByteReader<'_>, store: &mut TsStore, v2: bool) -> Result<()> {
    let n_series = r.len_of()?;
    for _ in 0..n_series {
        let id = SeriesId::new(r.u64()?);
        let total = r.len_of()?;
        let n_chunks = r.len_of()?;
        let mut chunks = BTreeMap::new();
        let mut counted = 0usize;
        for _ in 0..n_chunks {
            let key = r.timestamp()?;
            let tag = if v2 { r.u8()? } else { TAG_PLAIN };
            let data = match tag {
                TAG_PLAIN => {
                    let (times, values) = decode_plain_columns(r, key)?;
                    ChunkData::Plain { times, values }
                }
                TAG_SEALED => {
                    let block = SealedBlock::decode(r)?;
                    // validate the untrusted payload now, so in-memory
                    // decompression can rely on it being self-consistent
                    let (mut ts, mut vs) = (Vec::new(), Vec::new());
                    block.decode_into(key, &mut ts, &mut vs)?;
                    ChunkData::Sealed(block)
                }
                _ => return Err(HyGraphError::corrupt("unknown chunk tag")),
            };
            let summary = decode_summary(r)?;
            let chunk = Chunk {
                key,
                data,
                summary,
                dirty: false,
            };
            counted += chunk.len();
            note_sealed_delta(chunk.sealed_sizes(), 1);
            if chunks.insert(key, chunk).is_some() {
                return Err(HyGraphError::corrupt("duplicate chunk key"));
            }
        }
        if counted != total {
            return Err(HyGraphError::corrupt(
                "series length disagrees with chunk contents",
            ));
        }
        if store
            .series
            .insert(id, SeriesChunks::from_parts(chunks, total))
            .is_some()
        {
            return Err(HyGraphError::corrupt("duplicate series id"));
        }
    }
    Ok(())
}

/// Decodes a store previously written by [`encode_store`] (any format
/// version), using the environment-configured storage options for the
/// resulting store's future behaviour. Already-sealed chunks stay
/// sealed either way.
pub fn decode_store(r: &mut ByteReader<'_>) -> Result<TsStore> {
    decode_store_opts(r, TsOptions::from_env())
}

/// [`decode_store`] with explicit storage options.
pub fn decode_store_opts(r: &mut ByteReader<'_>, opts: TsOptions) -> Result<TsStore> {
    let first = r.duration()?;
    let chunk_width = if first.millis() == 0 {
        // v2+: explicit version then the real width
        let version = r.u64()?;
        if version != VERSION {
            return Err(HyGraphError::corrupt(format!(
                "unsupported ts codec version {version}"
            )));
        }
        r.duration()?
    } else {
        first // v1: the width itself
    };
    if !chunk_width.is_positive() {
        return Err(HyGraphError::corrupt("non-positive chunk width"));
    }
    let mut store = TsStore::with_options(chunk_width, opts);
    decode_series_into(r, &mut store, first.millis() == 0)?;
    Ok(store)
}

/// Convenience: encodes into a fresh byte vector.
pub fn store_to_bytes(store: &TsStore) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_store(store, &mut w);
    w.into_bytes()
}

/// Convenience: decodes from a standalone byte slice, requiring the
/// slice to be fully consumed.
pub fn store_from_bytes(bytes: &[u8]) -> Result<TsStore> {
    let mut r = ByteReader::new(bytes);
    let store = decode_store(&mut r)?;
    r.expect_exhausted()?;
    Ok(store)
}

/// [`store_from_bytes`] with explicit storage options.
pub fn store_from_bytes_with(bytes: &[u8], opts: TsOptions) -> Result<TsStore> {
    let mut r = ByteReader::new(bytes);
    let store = decode_store_opts(&mut r, opts)?;
    r.expect_exhausted()?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Duration, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn sample_opts(opts: TsOptions) -> TsStore {
        let mut st = TsStore::with_options(Duration::from_millis(100), opts);
        let a = SeriesId::new(1);
        let b = SeriesId::new(9);
        for i in 0..25 {
            st.insert(a, ts(i * 40), (i as f64).sin() * 100.0);
        }
        // out-of-order + overwrite: summary bits now depend on op order
        st.insert(b, ts(500), 5.0);
        st.insert(b, ts(100), 1.0);
        st.insert(b, ts(300), 3.0);
        st.insert(b, ts(300), -3.0);
        st.create_series(SeriesId::new(42)); // empty series survives too
        st
    }

    fn sample() -> TsStore {
        sample_opts(TsOptions::default())
    }

    fn assert_stores_equal(a: &TsStore, b: &TsStore) {
        assert_eq!(a.chunk_width(), b.chunk_width());
        assert_eq!(a.series_count(), b.series_count());
        for id in a.series_ids() {
            assert_eq!(a.len(id), b.len(id));
            assert_eq!(a.chunk_count(id), b.chunk_count(id));
            let (s1, s2) = (
                a.summarize(id, &Interval::ALL),
                b.summarize(id, &Interval::ALL),
            );
            assert_eq!(s1.count, s2.count);
            assert_eq!(s1.sum.to_bits(), s2.sum.to_bits());
            assert_eq!(s1.min.to_bits(), s2.min.to_bits());
            assert_eq!(s1.max.to_bits(), s2.max.to_bits());
            let (r1, r2) = (a.range(id, &Interval::ALL), b.range(id, &Interval::ALL));
            assert_eq!(r1.times(), r2.times());
            assert_eq!(r1.values(), r2.values());
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        for compress in [false, true] {
            let st = sample_opts(TsOptions::default().compress(compress));
            let bytes = store_to_bytes(&st);
            let back = store_from_bytes_with(&bytes, st.options()).unwrap();
            assert_eq!(store_to_bytes(&back), bytes, "canonical re-encode");
            assert_stores_equal(&st, &back);
            assert_eq!(
                back.compression_stats(),
                st.compression_stats(),
                "sealed chunks persist as sealed"
            );
        }
    }

    #[test]
    fn decoded_store_keeps_working() {
        let st = sample();
        let mut back = store_from_bytes(&store_to_bytes(&st)).unwrap();
        let id = SeriesId::new(1);
        let before = back.len(id);
        back.insert(id, ts(10_000), 7.0);
        assert_eq!(back.len(id), before + 1);
        back.retain_from(id, ts(200)).unwrap();
        assert!(back.range(id, &Interval::ALL).times()[0] >= ts(200));
    }

    #[test]
    fn dirty_summary_is_rebuilt_before_encode() {
        // an extreme-value overwrite leaves the chunk summary stale;
        // the codec must write the rebuilt bits, and decode∘encode must
        // still be canonical
        let mut st = TsStore::with_options(
            Duration::from_millis(1_000),
            TsOptions::default().compress(false),
        );
        let id = SeriesId::new(3);
        st.insert(id, ts(10), 100.0);
        st.insert(id, ts(20), 1.0);
        st.insert(id, ts(10), 2.0); // overwrites the max → dirty
        let bytes = store_to_bytes(&st);
        let back = store_from_bytes_with(&bytes, st.options()).unwrap();
        assert_eq!(store_to_bytes(&back), bytes, "canonical re-encode");
        let s = back.summarize(id, &Interval::ALL);
        assert_eq!((s.min, s.max, s.sum), (1.0, 2.0, 3.0));
    }

    #[test]
    fn legacy_v1_checkpoint_still_loads() {
        // hand-written v1 bytes: width, one series, one plain chunk —
        // exactly what the pre-compression codec emitted
        let mut w = ByteWriter::new();
        w.duration(Duration::from_millis(100));
        w.len_of(1); // one series
        w.u64(7); // series id
        w.len_of(2); // total points
        w.len_of(1); // one chunk
        w.timestamp(ts(100)); // chunk key
        w.len_of(2); // chunk points
        w.u64(10); // t=110
        w.u64(50); // t=160
        w.f64(1.5);
        w.f64(2.5);
        w.u64(2); // summary: count
        w.f64(4.0); // sum
        w.f64(1.5); // min
        w.f64(2.5); // max
        let back = store_from_bytes(w.as_bytes()).unwrap();
        let id = SeriesId::new(7);
        assert_eq!(back.len(id), 2);
        assert_eq!(back.value_at(id, ts(110)), Some(1.5));
        assert_eq!(back.value_at(id, ts(160)), Some(2.5));
        let s = back.summarize(id, &Interval::ALL);
        assert_eq!((s.count, s.sum), (2, 4.0));
        // and once re-encoded it becomes a v2 stream
        let v2 = store_to_bytes(&back);
        let again = store_from_bytes(&v2).unwrap();
        assert_eq!(store_to_bytes(&again), v2, "canonical after upgrade");
        assert_stores_equal(&back, &again);
    }

    #[test]
    fn cross_compression_compat() {
        // bytes written by an uncompressed store load into a
        // compression-enabled one (and vice versa) with identical
        // query results — only future sealing behaviour differs
        let plain = sample_opts(TsOptions::default().compress(false));
        let compressed = sample_opts(TsOptions::default().compress(true));
        let plain_into_compressed =
            store_from_bytes_with(&store_to_bytes(&plain), TsOptions::default().compress(true))
                .unwrap();
        let compressed_into_plain = store_from_bytes_with(
            &store_to_bytes(&compressed),
            TsOptions::default().compress(false),
        )
        .unwrap();
        assert_stores_equal(&plain, &plain_into_compressed);
        assert_stores_equal(&compressed, &compressed_into_plain);
        assert_stores_equal(&plain_into_compressed, &compressed_into_plain);
        // sealed state is a property of the bytes, not the options
        assert_eq!(plain_into_compressed.compression_stats().sealed_chunks, 0);
        assert_eq!(
            compressed_into_plain.compression_stats(),
            compressed.compression_stats()
        );
    }

    #[test]
    fn empty_store_roundtrip() {
        let st = TsStore::new();
        let back = store_from_bytes(&store_to_bytes(&st)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.chunk_width(), TsStore::DEFAULT_CHUNK);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let bytes = store_to_bytes(&sample());
        assert!(store_from_bytes(&bytes[..bytes.len() / 3]).is_err());
        assert!(store_from_bytes(&[]).is_err());
        // zero width with no version following (the old zero-width
        // corpus) still errors — it parses as a v2 sentinel with a bad
        // version number
        let mut w = ByteWriter::new();
        w.duration(Duration::from_millis(0));
        w.len_of(0);
        assert!(store_from_bytes(w.as_bytes()).is_err());
        // v2 sentinel + unsupported version
        let mut w = ByteWriter::new();
        w.duration(Duration::from_millis(0));
        w.u64(99);
        w.duration(Duration::from_millis(100));
        w.len_of(0);
        assert!(store_from_bytes(w.as_bytes()).is_err());
        // negative width
        let mut w = ByteWriter::new();
        w.duration(Duration::from_millis(-5));
        w.len_of(0);
        assert!(store_from_bytes(w.as_bytes()).is_err());
        // unknown chunk tag
        let mut w = ByteWriter::new();
        w.duration(Duration::from_millis(0));
        w.u64(VERSION);
        w.duration(Duration::from_millis(100));
        w.len_of(1);
        w.u64(1); // series id
        w.len_of(1);
        w.len_of(1);
        w.timestamp(ts(0));
        w.u8(7); // bogus tag
        assert!(store_from_bytes(w.as_bytes()).is_err());
        // trailing garbage
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(store_from_bytes(&extended).is_err());
        // flipping bytes inside a sealed payload must error or decode
        // to a consistent store, never panic
        let sealed = {
            let mut st = sample_opts(TsOptions::default().compress(true));
            st.seal_all();
            store_to_bytes(&st)
        };
        for i in (0..sealed.len()).step_by(7) {
            let mut corrupted = sealed.clone();
            corrupted[i] ^= 0x5a;
            let _ = store_from_bytes(&corrupted); // must not panic
        }
    }
}
