//! Exact binary state codec for [`TsStore`].
//!
//! Serialises the store's physical layout — per-series chunk maps with
//! each chunk's time/value columns *and* its incrementally-maintained
//! sparse [`Summary`] — rather than replaying observations through
//! [`TsStore::insert`]. Re-inserting would recompute chunk summaries in
//! time order, and floating-point accumulation is order-sensitive: a
//! store built from out-of-order inserts could decode to one whose
//! `sum` differs in the last bit. Capturing the summary bits directly
//! makes the round-trip exactly lossless, which the crash-recovery
//! tests in `hygraph-persist` rely on (recovered store must be
//! bit-identical to the committed state).
//!
//! Times inside a chunk are delta-encoded against the previous
//! timestamp (they are sorted, so deltas are small non-negative
//! varints); values are raw IEEE-754 bits.

use crate::store::{Chunk, SeriesChunks, Summary, TsStore};
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{HyGraphError, Result, SeriesId, Timestamp};
use std::collections::BTreeMap;

/// Encodes the full store state into `w`.
pub fn encode_store(store: &TsStore, w: &mut ByteWriter) {
    w.duration(store.chunk_width);
    w.len_of(store.series.len());
    for (id, sc) in &store.series {
        w.u64(id.raw());
        w.len_of(sc.len);
        w.len_of(sc.chunks.len());
        for (key, chunk) in &sc.chunks {
            w.timestamp(*key);
            w.len_of(chunk.times.len());
            let mut prev = key.millis();
            for t in &chunk.times {
                w.u64((t.millis() - prev) as u64);
                prev = t.millis();
            }
            for v in &chunk.values {
                w.f64(*v);
            }
            w.u64(chunk.summary.count);
            w.f64(chunk.summary.sum);
            w.f64(chunk.summary.min);
            w.f64(chunk.summary.max);
        }
    }
}

/// Decodes a store previously written by [`encode_store`].
pub fn decode_store(r: &mut ByteReader<'_>) -> Result<TsStore> {
    let chunk_width = r.duration()?;
    if !chunk_width.is_positive() {
        return Err(HyGraphError::corrupt("non-positive chunk width"));
    }
    let mut store = TsStore::with_chunk_width(chunk_width);
    let n_series = r.len_of()?;
    for _ in 0..n_series {
        let id = SeriesId::new(r.u64()?);
        let total = r.len_of()?;
        let n_chunks = r.len_of()?;
        let mut sc = SeriesChunks {
            chunks: BTreeMap::new(),
            len: total,
        };
        let mut counted = 0usize;
        for _ in 0..n_chunks {
            let key = r.timestamp()?;
            let n = r.len_of()?;
            let mut times = Vec::with_capacity(n);
            let mut prev = key.millis();
            for _ in 0..n {
                let delta = r.u64()?;
                let t = prev
                    .checked_add(delta as i64)
                    .ok_or_else(|| HyGraphError::corrupt("timestamp delta overflow"))?;
                times.push(Timestamp::from_millis(t));
                prev = t;
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.f64()?);
            }
            let summary = Summary {
                count: r.u64()?,
                sum: r.f64()?,
                min: r.f64()?,
                max: r.f64()?,
            };
            counted += n;
            if sc
                .chunks
                .insert(
                    key,
                    Chunk {
                        times,
                        values,
                        summary,
                    },
                )
                .is_some()
            {
                return Err(HyGraphError::corrupt("duplicate chunk key"));
            }
        }
        if counted != total {
            return Err(HyGraphError::corrupt(
                "series length disagrees with chunk contents",
            ));
        }
        if store.series.insert(id, sc).is_some() {
            return Err(HyGraphError::corrupt("duplicate series id"));
        }
    }
    Ok(store)
}

/// Convenience: encodes into a fresh byte vector.
pub fn store_to_bytes(store: &TsStore) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_store(store, &mut w);
    w.into_bytes()
}

/// Convenience: decodes from a standalone byte slice, requiring the
/// slice to be fully consumed.
pub fn store_from_bytes(bytes: &[u8]) -> Result<TsStore> {
    let mut r = ByteReader::new(bytes);
    let store = decode_store(&mut r)?;
    r.expect_exhausted()?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Duration, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn sample() -> TsStore {
        let mut st = TsStore::with_chunk_width(Duration::from_millis(100));
        let a = SeriesId::new(1);
        let b = SeriesId::new(9);
        for i in 0..25 {
            st.insert(a, ts(i * 40), (i as f64).sin() * 100.0);
        }
        // out-of-order + overwrite: summary bits now depend on op order
        st.insert(b, ts(500), 5.0);
        st.insert(b, ts(100), 1.0);
        st.insert(b, ts(300), 3.0);
        st.insert(b, ts(300), -3.0);
        st.create_series(SeriesId::new(42)); // empty series survives too
        st
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let st = sample();
        let bytes = store_to_bytes(&st);
        let back = store_from_bytes(&bytes).unwrap();
        assert_eq!(store_to_bytes(&back), bytes, "canonical re-encode");
        assert_eq!(back.chunk_width(), st.chunk_width());
        assert_eq!(back.series_count(), st.series_count());
        for id in st.series_ids() {
            assert_eq!(back.len(id), st.len(id));
            assert_eq!(back.chunk_count(id), st.chunk_count(id));
            let (s1, s2) = (
                st.summarize(id, &Interval::ALL),
                back.summarize(id, &Interval::ALL),
            );
            assert_eq!(s1.count, s2.count);
            assert_eq!(s1.sum.to_bits(), s2.sum.to_bits());
            assert_eq!(s1.min.to_bits(), s2.min.to_bits());
            assert_eq!(s1.max.to_bits(), s2.max.to_bits());
            let (r1, r2) = (st.range(id, &Interval::ALL), back.range(id, &Interval::ALL));
            assert_eq!(r1.times(), r2.times());
            assert_eq!(r1.values(), r2.values());
        }
    }

    #[test]
    fn decoded_store_keeps_working() {
        let st = sample();
        let mut back = store_from_bytes(&store_to_bytes(&st)).unwrap();
        let id = SeriesId::new(1);
        let before = back.len(id);
        back.insert(id, ts(10_000), 7.0);
        assert_eq!(back.len(id), before + 1);
        back.retain_from(id, ts(200)).unwrap();
        assert!(back.range(id, &Interval::ALL).times()[0] >= ts(200));
    }

    #[test]
    fn empty_store_roundtrip() {
        let st = TsStore::new();
        let back = store_from_bytes(&store_to_bytes(&st)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.chunk_width(), TsStore::DEFAULT_CHUNK);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let bytes = store_to_bytes(&sample());
        assert!(store_from_bytes(&bytes[..bytes.len() / 3]).is_err());
        assert!(store_from_bytes(&[]).is_err());
        // zero chunk width
        let mut w = ByteWriter::new();
        w.duration(Duration::from_millis(0));
        w.len_of(0);
        assert!(store_from_bytes(w.as_bytes()).is_err());
        // trailing garbage
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(store_from_bytes(&extended).is_err());
    }
}
