//! Univariate time series.
//!
//! A [`TimeSeries`] is an ordered sequence of `(Timestamp, f64)`
//! observations stored column-wise (struct-of-arrays): one sorted `Vec`
//! of timestamps and one parallel `Vec` of values. Column layout makes
//! range scans, aggregation and vector-style math cache-friendly, which
//! matters for the scan-heavy Table-1 queries.
//!
//! Invariant (R2 *chronological integrity*): timestamps are strictly
//! increasing. Appends enforce it with an error; bulk constructors sort
//! and deduplicate (last write wins) so arbitrary input is normalised.

use hygraph_types::{Duration, HyGraphError, Interval, Result, Timestamp};
use std::fmt;

/// An ordered univariate time series.
#[derive(Clone, Default, PartialEq)]
pub struct TimeSeries {
    times: Vec<Timestamp>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty series with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            times: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Builds a series from arbitrary pairs: sorts by timestamp and
    /// deduplicates (the *last* value for a duplicated timestamp wins,
    /// matching "replace stale data" — R3).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Timestamp, f64)>) -> Self {
        let mut v: Vec<(Timestamp, f64)> = pairs.into_iter().collect();
        // stable sort keeps insertion order among equal timestamps, so
        // taking the last occurrence implements last-write-wins.
        v.sort_by_key(|(t, _)| *t);
        let mut out = Self::with_capacity(v.len());
        for (t, x) in v {
            if out.times.last() == Some(&t) {
                *out.values.last_mut().expect("values parallel to times") = x;
            } else {
                out.times.push(t);
                out.values.push(x);
            }
        }
        out
    }

    /// Builds a regular series: `n` observations starting at `start`,
    /// spaced `step` apart, with values produced by `f(i)`.
    pub fn generate(
        start: Timestamp,
        step: Duration,
        n: usize,
        mut f: impl FnMut(usize) -> f64,
    ) -> Self {
        assert!(step.is_positive(), "step must be positive");
        let mut s = Self::with_capacity(n);
        let mut t = start;
        for i in 0..n {
            s.times.push(t);
            s.values.push(f(i));
            t += step;
        }
        s
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sorted timestamp column.
    #[inline]
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// The value column, parallel to [`Self::times`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value column (timestamps stay fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The observation at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<(Timestamp, f64)> {
        Some((*self.times.get(i)?, self.values[i]))
    }

    /// First observation.
    pub fn first(&self) -> Option<(Timestamp, f64)> {
        self.get(0)
    }

    /// Last observation.
    pub fn last(&self) -> Option<(Timestamp, f64)> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// The interval `[first, last+1ms)` spanned by the series, or `None`
    /// when empty.
    pub fn span(&self) -> Option<Interval> {
        let (first, _) = self.first()?;
        let (last, _) = self.last()?;
        Some(Interval::new(first, last + Duration::from_millis(1)))
    }

    /// Appends an observation; must be strictly after the current last
    /// timestamp (amortised O(1) — the hot ingest path, R3).
    pub fn push(&mut self, t: Timestamp, value: f64) -> Result<()> {
        if let Some(&last) = self.times.last() {
            if t <= last {
                return Err(HyGraphError::OutOfOrder { at: t, last });
            }
        }
        self.times.push(t);
        self.values.push(value);
        Ok(())
    }

    /// Inserts an observation at an arbitrary position (O(n) shift for
    /// mid-series inserts, O(log n) locate). Overwrites on duplicate
    /// timestamp (last write wins).
    pub fn upsert(&mut self, t: Timestamp, value: f64) {
        match self.times.binary_search(&t) {
            Ok(i) => self.values[i] = value,
            Err(i) => {
                self.times.insert(i, t);
                self.values.insert(i, value);
            }
        }
    }

    /// The exact value at `t`, if observed.
    pub fn value_at(&self, t: Timestamp) -> Option<f64> {
        self.times.binary_search(&t).ok().map(|i| self.values[i])
    }

    /// The most recent value at or before `t` (last-observation-carried-
    /// forward), if any.
    pub fn value_at_or_before(&self, t: Timestamp) -> Option<f64> {
        match self.times.binary_search(&t) {
            Ok(i) => Some(self.values[i]),
            Err(0) => None,
            Err(i) => Some(self.values[i - 1]),
        }
    }

    /// Index range `[lo, hi)` of observations inside `interval`.
    #[inline]
    pub fn range_indices(&self, interval: &Interval) -> (usize, usize) {
        let lo = self.times.partition_point(|&t| t < interval.start);
        let hi = self.times.partition_point(|&t| t < interval.end);
        (lo, hi)
    }

    /// Borrowed view of the observations inside `interval`.
    pub fn range(&self, interval: &Interval) -> SeriesSlice<'_> {
        let (lo, hi) = self.range_indices(interval);
        SeriesSlice {
            times: &self.times[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Owned sub-series of the observations inside `interval`.
    pub fn slice(&self, interval: &Interval) -> TimeSeries {
        let (lo, hi) = self.range_indices(interval);
        TimeSeries {
            times: self.times[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Iterates `(Timestamp, f64)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Applies `f` to every value, producing a new series on the same
    /// time axis.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries {
            times: self.times.clone(),
            values: self.values.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Keeps only the observations satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(Timestamp, f64) -> bool) -> TimeSeries {
        let mut out = TimeSeries::new();
        for (t, x) in self.iter() {
            if pred(t, x) {
                out.times.push(t);
                out.values.push(x);
            }
        }
        out
    }

    /// Element-wise difference series: `out[i] = self[i+1] - self[i]`,
    /// timestamped at the later point. Length `len-1`.
    pub fn diff(&self) -> TimeSeries {
        let mut out = TimeSeries::with_capacity(self.len().saturating_sub(1));
        for i in 1..self.len() {
            out.times.push(self.times[i]);
            out.values.push(self.values[i] - self.values[i - 1]);
        }
        out
    }

    /// Checks the chronological-integrity invariant explicitly (used by
    /// model validation, R2).
    pub fn validate(&self) -> Result<()> {
        if self.times.len() != self.values.len() {
            return Err(HyGraphError::invalid("times/values length mismatch"));
        }
        for w in self.times.windows(2) {
            if w[0] >= w[1] {
                return Err(HyGraphError::DuplicateTimestamp(w[1]));
            }
        }
        Ok(())
    }
}

impl FromIterator<(Timestamp, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (Timestamp, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeSeries(len={}", self.len())?;
        if let Some(span) = self.span() {
            write!(f, ", span={span}")?;
        }
        f.write_str(")")
    }
}

/// A borrowed, contiguous view into a [`TimeSeries`].
#[derive(Clone, Copy, Debug)]
pub struct SeriesSlice<'a> {
    /// Timestamps in the view.
    pub times: &'a [Timestamp],
    /// Values parallel to `times`.
    pub values: &'a [f64],
}

impl<'a> SeriesSlice<'a> {
    /// Number of observations in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates `(Timestamp, f64)` pairs in the view.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + 'a {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Copies the view into an owned series.
    pub fn to_series(&self) -> TimeSeries {
        TimeSeries {
            times: self.times.to_vec(),
            values: self.values.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn sample() -> TimeSeries {
        TimeSeries::from_pairs([(ts(10), 1.0), (ts(20), 2.0), (ts(30), 3.0), (ts(40), 4.0)])
    }

    #[test]
    fn from_pairs_sorts_and_dedups_last_wins() {
        let s =
            TimeSeries::from_pairs([(ts(30), 3.0), (ts(10), 1.0), (ts(30), 99.0), (ts(20), 2.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.value_at(ts(30)), Some(99.0));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn push_enforces_order() {
        let mut s = TimeSeries::new();
        s.push(ts(10), 1.0).unwrap();
        s.push(ts(20), 2.0).unwrap();
        let err = s.push(ts(20), 3.0).unwrap_err();
        assert_eq!(
            err,
            HyGraphError::OutOfOrder {
                at: ts(20),
                last: ts(20)
            }
        );
        let err = s.push(ts(5), 3.0).unwrap_err();
        assert!(matches!(err, HyGraphError::OutOfOrder { .. }));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn upsert_inserts_and_overwrites() {
        let mut s = sample();
        s.upsert(ts(25), 2.5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.value_at(ts(25)), Some(2.5));
        s.upsert(ts(25), 9.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.value_at(ts(25)), Some(9.0));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn value_lookups() {
        let s = sample();
        assert_eq!(s.value_at(ts(20)), Some(2.0));
        assert_eq!(s.value_at(ts(21)), None);
        assert_eq!(s.value_at_or_before(ts(21)), Some(2.0));
        assert_eq!(s.value_at_or_before(ts(20)), Some(2.0));
        assert_eq!(s.value_at_or_before(ts(9)), None);
        assert_eq!(s.value_at_or_before(ts(1000)), Some(4.0));
    }

    #[test]
    fn range_half_open() {
        let s = sample();
        let r = s.range(&Interval::new(ts(20), ts(40)));
        assert_eq!(r.len(), 2);
        assert_eq!(r.values, &[2.0, 3.0]);
        // full cover
        let r = s.range(&Interval::new(ts(0), ts(1000)));
        assert_eq!(r.len(), 4);
        // empty
        let r = s.range(&Interval::new(ts(41), ts(1000)));
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_owned_copy() {
        let s = sample();
        let sub = s.slice(&Interval::new(ts(15), ts(35)));
        assert_eq!(sub.times(), &[ts(20), ts(30)]);
        assert_eq!(sub.values(), &[2.0, 3.0]);
    }

    #[test]
    fn span_and_ends() {
        let s = sample();
        assert_eq!(s.first(), Some((ts(10), 1.0)));
        assert_eq!(s.last(), Some((ts(40), 4.0)));
        let span = s.span().unwrap();
        assert!(span.contains(ts(40)));
        assert!(!span.contains(ts(41)));
        assert_eq!(TimeSeries::new().span(), None);
    }

    #[test]
    fn generate_regular() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(5), 4, |i| i as f64 * 10.0);
        assert_eq!(s.times(), &[ts(0), ts(5), ts(10), ts(15)]);
        assert_eq!(s.values(), &[0.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn map_filter_diff() {
        let s = sample();
        let doubled = s.map(|x| x * 2.0);
        assert_eq!(doubled.values(), &[2.0, 4.0, 6.0, 8.0]);
        let only_big = s.filter(|_, x| x >= 3.0);
        assert_eq!(only_big.values(), &[3.0, 4.0]);
        let d = s.diff();
        assert_eq!(d.times(), &[ts(20), ts(30), ts(40)]);
        assert_eq!(d.values(), &[1.0, 1.0, 1.0]);
        assert!(TimeSeries::new().diff().is_empty());
    }

    #[test]
    fn validate_catches_corruption() {
        let mut s = sample();
        // corrupt through direct field access within the module
        s.times[1] = ts(10);
        assert!(s.validate().is_err());
    }

    #[test]
    fn slice_view_roundtrip() {
        let s = sample();
        let view = s.range(&Interval::ALL);
        assert_eq!(view.to_series(), s);
        let pairs: Vec<_> = view.iter().collect();
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn empty_series_behaviour() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
        assert_eq!(s.value_at_or_before(ts(0)), None);
        assert!(s.range(&Interval::ALL).is_empty());
        assert!(s.validate().is_ok());
    }
}
