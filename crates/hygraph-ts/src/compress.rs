//! Columnar compression for sealed time-series chunks.
//!
//! A sealed chunk stores its two columns in the formats dedicated TSDBs
//! (Gorilla, TimescaleDB's compressed hypertables) converged on:
//!
//! * **Timestamps** — delta-of-delta varints. The first timestamp is
//!   stored as its offset from the chunk key, the second as a plain
//!   delta, and every later one as the zigzag-encoded *change* of the
//!   delta. Regular ticks (the common case for sensor feeds) collapse
//!   to one byte per point.
//! * **Values** — Gorilla-style XOR bit-packing. Each value is XORed
//!   with its predecessor; a zero XOR costs one bit, and non-zero XORs
//!   reuse the previous leading/trailing-zero window when they fit.
//!   The codec operates on raw `u64` bit patterns, so every `f64` —
//!   NaN payloads, `-0.0`, infinities, denormals — round-trips
//!   bit-identically.
//!
//! Encoding is canonical: the byte streams are a pure function of the
//! `(times, values)` columns, which the persistence layer relies on for
//! its exact re-encode property.

use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{HyGraphError, Result, Timestamp};

/// Cap on the leading-zero count we encode (5 bits in the header).
/// Larger counts are clamped; the extra zeros ride along as meaningful
/// bits, which costs space but never correctness.
const MAX_LEADING: u32 = 31;

/// Append-only MSB-first bit buffer.
#[derive(Clone, Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    /// Total bits written (the final byte may be partially filled).
    bits: u64,
}

impl BitWriter {
    fn write_bit(&mut self, bit: bool) {
        let off = (self.bits % 8) as u8;
        if off == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte just ensured");
            *last |= 1 << (7 - off);
        }
        self.bits += 1;
    }

    /// Writes the low `n` bits of `v`, most significant first.
    fn write_bits(&mut self, v: u64, n: u32) {
        for i in (0..n).rev() {
            self.write_bit((v >> i) & 1 == 1);
        }
    }
}

/// Bounds-checked MSB-first bit cursor over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> Result<bool> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.bytes.len() {
            return Err(HyGraphError::corrupt("value bitstream truncated"));
        }
        let off = (self.pos % 8) as u8;
        self.pos += 1;
        Ok((self.bytes[byte] >> (7 - off)) & 1 == 1)
    }

    fn read_bits(&mut self, n: u32) -> Result<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }
}

/// A compressed, immutable chunk payload: both columns of one sealed
/// time partition.
#[derive(Clone, Debug, PartialEq)]
pub struct SealedBlock {
    n: usize,
    /// Delta-of-delta varint stream for the time column.
    ts_bytes: Vec<u8>,
    /// Gorilla XOR bitstream for the value column.
    val_bytes: Vec<u8>,
    /// Meaningful bits in `val_bytes` (the tail of the last byte is
    /// zero padding).
    val_bits: u64,
}

impl SealedBlock {
    /// Compresses the two columns of a chunk keyed at `base`.
    ///
    /// Requires `times` strictly increasing with `times[0] >= base`
    /// (the chunk invariants) and `times.len() == values.len()`.
    pub fn seal(base: Timestamp, times: &[Timestamp], values: &[f64]) -> SealedBlock {
        assert_eq!(times.len(), values.len(), "column length mismatch");
        // time column: offset, delta, then delta-of-delta
        let mut tw = ByteWriter::new();
        let mut prev = 0i64;
        let mut prev_delta = 0i64;
        for (i, t) in times.iter().enumerate() {
            let ms = t.millis();
            match i {
                0 => {
                    debug_assert!(ms >= base.millis(), "chunk time before chunk key");
                    tw.u64((ms - base.millis()) as u64);
                }
                1 => {
                    debug_assert!(ms > prev, "chunk times not strictly increasing");
                    prev_delta = ms - prev;
                    tw.u64(prev_delta as u64);
                }
                _ => {
                    debug_assert!(ms > prev, "chunk times not strictly increasing");
                    let delta = ms - prev;
                    tw.i64(delta - prev_delta);
                    prev_delta = delta;
                }
            }
            prev = ms;
        }
        // value column: Gorilla XOR
        let mut vw = BitWriter::default();
        let mut prev_bits = 0u64;
        let mut window: Option<(u32, u32)> = None; // (leading, trailing)
        for (i, v) in values.iter().enumerate() {
            let bits = v.to_bits();
            if i == 0 {
                vw.write_bits(bits, 64);
            } else {
                let xor = bits ^ prev_bits;
                if xor == 0 {
                    vw.write_bit(false);
                } else {
                    vw.write_bit(true);
                    let lead = xor.leading_zeros().min(MAX_LEADING);
                    let trail = xor.trailing_zeros();
                    match window {
                        Some((pl, pt)) if lead >= pl && trail >= pt => {
                            // fits the previous window: '10' + bits
                            vw.write_bit(false);
                            let sig = 64 - pl - pt;
                            vw.write_bits(xor >> pt, sig);
                        }
                        _ => {
                            // new window: '11' + 5-bit lead + 6-bit (len-1)
                            vw.write_bit(true);
                            let sig = 64 - lead - trail;
                            vw.write_bits(lead as u64, 5);
                            vw.write_bits((sig - 1) as u64, 6);
                            vw.write_bits(xor >> trail, sig);
                            window = Some((lead, trail));
                        }
                    }
                }
            }
            prev_bits = bits;
        }
        SealedBlock {
            n: times.len(),
            ts_bytes: tw.into_bytes(),
            val_bytes: vw.bytes,
            val_bits: vw.bits,
        }
    }

    /// Decompresses both columns into the provided buffers (cleared
    /// first). Errors — never panics — on any inconsistency, so blocks
    /// reconstructed from untrusted checkpoint bytes can be validated
    /// by decoding.
    pub fn decode_into(
        &self,
        base: Timestamp,
        times: &mut Vec<Timestamp>,
        values: &mut Vec<f64>,
    ) -> Result<()> {
        times.clear();
        values.clear();
        times.reserve(self.n);
        values.reserve(self.n);
        // time column
        let mut tr = ByteReader::new(&self.ts_bytes);
        let mut prev = 0i64;
        let mut delta = 0i64;
        for i in 0..self.n {
            let ms = match i {
                0 => {
                    let off = tr.u64()?;
                    if off > i64::MAX as u64 {
                        return Err(HyGraphError::corrupt("timestamp offset overflow"));
                    }
                    base.millis()
                        .checked_add(off as i64)
                        .ok_or_else(|| HyGraphError::corrupt("timestamp offset overflow"))?
                }
                1 => {
                    let d = tr.u64()?;
                    if d == 0 || d > i64::MAX as u64 {
                        return Err(HyGraphError::corrupt("non-increasing timestamp delta"));
                    }
                    delta = d as i64;
                    prev.checked_add(delta)
                        .ok_or_else(|| HyGraphError::corrupt("timestamp delta overflow"))?
                }
                _ => {
                    let dod = tr.i64()?;
                    delta = delta
                        .checked_add(dod)
                        .ok_or_else(|| HyGraphError::corrupt("timestamp delta overflow"))?;
                    if delta <= 0 {
                        return Err(HyGraphError::corrupt("non-increasing timestamp delta"));
                    }
                    prev.checked_add(delta)
                        .ok_or_else(|| HyGraphError::corrupt("timestamp delta overflow"))?
                }
            };
            times.push(Timestamp::from_millis(ms));
            prev = ms;
        }
        tr.expect_exhausted()?;
        // value column
        let mut vr = BitReader::new(&self.val_bytes);
        let mut prev_bits = 0u64;
        let mut window = (0u32, 0u32);
        for i in 0..self.n {
            let bits = if i == 0 {
                vr.read_bits(64)?
            } else if !vr.read_bit()? {
                prev_bits
            } else if !vr.read_bit()? {
                let (lead, trail) = window;
                let sig = 64 - lead - trail;
                prev_bits ^ (vr.read_bits(sig)? << trail)
            } else {
                let lead = vr.read_bits(5)? as u32;
                let sig = vr.read_bits(6)? as u32 + 1;
                if lead + sig > 64 {
                    return Err(HyGraphError::corrupt("XOR window exceeds 64 bits"));
                }
                let trail = 64 - lead - sig;
                window = (lead, trail);
                prev_bits ^ (vr.read_bits(sig)? << trail)
            };
            values.push(f64::from_bits(bits));
            prev_bits = bits;
        }
        if vr.pos != self.val_bits || self.val_bits.div_ceil(8) != self.val_bytes.len() as u64 {
            return Err(HyGraphError::corrupt("value bitstream length mismatch"));
        }
        Ok(())
    }

    /// Number of observations in the block.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes occupied by the compressed column streams.
    pub fn compressed_bytes(&self) -> usize {
        self.ts_bytes.len() + self.val_bytes.len()
    }

    /// Bytes the same columns occupy uncompressed (`16n`: one `i64`
    /// timestamp plus one `f64` value per observation).
    pub fn raw_bytes(&self) -> usize {
        self.n * 16
    }

    /// Serialises the block payload (used by the versioned chunk record
    /// of the checkpoint codec).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.len_of(self.n);
        w.len_of(self.ts_bytes.len());
        w.raw(&self.ts_bytes);
        w.u64(self.val_bits);
        w.len_of(self.val_bytes.len());
        w.raw(&self.val_bytes);
    }

    /// Deserialises a block payload written by [`SealedBlock::encode`].
    /// The streams are *not* validated here — callers decoding
    /// untrusted bytes must follow up with [`SealedBlock::decode_into`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<SealedBlock> {
        let n = r.len_of()?;
        let ts_len = r.len_of()?;
        let ts_bytes = r.raw(ts_len)?.to_vec();
        let val_bits = r.u64()?;
        let val_len = r.len_of()?;
        let val_bytes = r.raw(val_len)?.to_vec();
        Ok(SealedBlock {
            n,
            ts_bytes,
            val_bytes,
            val_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn roundtrip(base: i64, times: &[i64], values: &[f64]) -> (Vec<Timestamp>, Vec<f64>) {
        let times: Vec<Timestamp> = times.iter().copied().map(ts).collect();
        let block = SealedBlock::seal(ts(base), &times, values);
        let (mut t, mut v) = (Vec::new(), Vec::new());
        block
            .decode_into(ts(base), &mut t, &mut v)
            .expect("decodes");
        assert_eq!(t, times, "time column roundtrip");
        assert_eq!(v.len(), values.len());
        for (a, b) in v.iter().zip(values) {
            assert_eq!(a.to_bits(), b.to_bits(), "value bits roundtrip");
        }
        (t, v)
    }

    #[test]
    fn empty_and_single_point() {
        roundtrip(0, &[], &[]);
        roundtrip(100, &[100], &[1.5]);
        roundtrip(100, &[137], &[f64::NAN]);
    }

    #[test]
    fn regular_ticks_compress_well() {
        let times: Vec<i64> = (0..500).map(|i| 1_000 + i * 60_000).collect();
        let values: Vec<f64> = (0..500).map(|i| (i % 7) as f64).collect();
        let blk = SealedBlock::seal(
            ts(0),
            &times.iter().copied().map(ts).collect::<Vec<_>>(),
            &values,
        );
        roundtrip(0, &times, &values);
        assert!(
            blk.compressed_bytes() * 2 < blk.raw_bytes(),
            "regular integer-valued ticks must compress >2x: {} vs {}",
            blk.compressed_bytes(),
            blk.raw_bytes()
        );
    }

    #[test]
    fn hostile_values_roundtrip_bit_exact() {
        let values = [
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::from_bits(0xfff0_0000_0000_0001), // signalling-ish NaN
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::from_bits(1), // smallest denormal
            -f64::MIN_POSITIVE / 2.0,
            f64::MAX,
            f64::MIN,
            1.0,
            -1.0,
            std::f64::consts::PI,
        ];
        let times: Vec<i64> = (0..values.len() as i64).map(|i| i * 3 + 1).collect();
        roundtrip(0, &times, &values);
    }

    #[test]
    fn irregular_gaps_roundtrip() {
        let times = [5, 6, 100, 101, 102, 5_000_000, 5_000_001];
        let values = [1.0, 1.0, 2.5, -2.5, 2.5, 0.125, 1e300];
        roundtrip(0, &times, &values);
    }

    #[test]
    fn negative_base_roundtrip() {
        roundtrip(-1000, &[-999, -500, -2], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn payload_codec_is_canonical() {
        let times: Vec<Timestamp> = (0..100).map(|i| ts(i * 17 + 3)).collect();
        let values: Vec<f64> = (0..100).map(|i| ((i * 31) % 11) as f64 * 0.5).collect();
        let blk = SealedBlock::seal(ts(0), &times, &values);
        let mut w = ByteWriter::new();
        blk.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = SealedBlock::decode(&mut r).expect("payload decodes");
        r.expect_exhausted().expect("payload fully consumed");
        assert_eq!(back, blk);
        let mut w2 = ByteWriter::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "canonical re-encode");
    }

    #[test]
    fn corrupt_payloads_error_not_panic() {
        let times: Vec<Timestamp> = (0..10).map(|i| ts(i * 10)).collect();
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let blk = SealedBlock::seal(ts(0), &times, &values);
        let (mut t, mut v) = (Vec::new(), Vec::new());
        // truncated value stream
        let mut bad = blk.clone();
        bad.val_bytes.pop();
        assert!(bad.decode_into(ts(0), &mut t, &mut v).is_err());
        // claimed count larger than the streams hold
        let mut bad = blk.clone();
        bad.n += 5;
        assert!(bad.decode_into(ts(0), &mut t, &mut v).is_err());
        // trailing garbage in the time stream
        let mut bad = blk.clone();
        bad.ts_bytes.push(0);
        assert!(bad.decode_into(ts(0), &mut t, &mut v).is_err());
        // bit-length disagreeing with the byte buffer
        let mut bad = blk;
        bad.val_bits += 8;
        assert!(bad.decode_into(ts(0), &mut t, &mut v).is_err());
    }
}
