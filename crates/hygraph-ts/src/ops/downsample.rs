//! Downsampling (Table 2, row Q2 — time-series side).
//!
//! Two strategies:
//! * **bucket mean** — classic tumbling-window mean reduction; pairs with
//!   graph aggregation in the hybrid Q2 operator ("adjust the frequency of
//!   associated time series to a user-defined granularity").
//! * **LTTB** (Largest-Triangle-Three-Buckets) — shape-preserving
//!   downsampling to a fixed point budget, the standard for visual and
//!   sketch-level reduction.

use crate::ops::aggregate;
use crate::series::TimeSeries;
use crate::store::AggKind;
use hygraph_types::{Duration, Interval};

/// Reduces `s` to one mean point per `bucket`-wide window.
pub fn bucket_mean(s: &TimeSeries, bucket: Duration) -> TimeSeries {
    aggregate::tumbling(s, &Interval::ALL, bucket, AggKind::Mean)
}

/// Reduces `s` to one `kind` aggregate point per `bucket`-wide window.
pub fn bucket_agg(s: &TimeSeries, bucket: Duration, kind: AggKind) -> TimeSeries {
    aggregate::tumbling(s, &Interval::ALL, bucket, kind)
}

/// Largest-Triangle-Three-Buckets downsampling to at most `threshold`
/// points. Keeps the first and last points, and from each interior bucket
/// the point forming the largest triangle with the previously selected
/// point and the next bucket's centroid.
///
/// Returns a copy of the input when `threshold >= len` or `threshold < 3`.
pub fn lttb(s: &TimeSeries, threshold: usize) -> TimeSeries {
    let n = s.len();
    if threshold >= n || threshold < 3 || n < 3 {
        return s.clone();
    }
    let times = s.times();
    let values = s.values();
    let mut out = TimeSeries::with_capacity(threshold);
    out.push(times[0], values[0]).expect("first point");

    // interior buckets over indices [1, n-1)
    let bucket_count = threshold - 2;
    let span = (n - 2) as f64 / bucket_count as f64;
    let mut prev_idx = 0usize;

    for b in 0..bucket_count {
        let start = (b as f64 * span) as usize + 1;
        let end = (((b + 1) as f64 * span) as usize + 1).min(n - 1);
        // centroid of the NEXT bucket (or the final point for the last one)
        let (next_start, next_end) = if b + 1 < bucket_count {
            (
                ((b + 1) as f64 * span) as usize + 1,
                ((((b + 2) as f64 * span) as usize) + 1).min(n - 1),
            )
        } else {
            (n - 1, n)
        };
        let m = (next_end - next_start).max(1) as f64;
        let cx: f64 = times[next_start..next_end]
            .iter()
            .map(|t| t.millis() as f64)
            .sum::<f64>()
            / m;
        let cy: f64 = values[next_start..next_end].iter().sum::<f64>() / m;

        let ax = times[prev_idx].millis() as f64;
        let ay = values[prev_idx];
        let mut best = start;
        let mut best_area = -1.0f64;
        for i in start..end.max(start + 1) {
            let bx = times[i].millis() as f64;
            let by = values[i];
            let area = ((ax - cx) * (by - ay) - (ax - bx) * (cy - ay)).abs();
            if area > best_area {
                best_area = area;
                best = i;
            }
        }
        out.push(times[best], values[best])
            .expect("indices increase");
        prev_idx = best;
    }

    out.push(times[n - 1], values[n - 1]).expect("last point");
    out
}

/// Keeps every `k`-th observation (systematic sampling).
pub fn stride(s: &TimeSeries, k: usize) -> TimeSeries {
    assert!(k > 0, "stride must be positive");
    TimeSeries::from_pairs(s.iter().step_by(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Timestamp;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn bucket_mean_reduces() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 100, |i| i as f64);
        let d = bucket_mean(&s, Duration::from_millis(100));
        assert_eq!(d.len(), 10);
        assert_eq!(d.values()[0], 4.5, "mean of 0..=9");
        assert_eq!(d.values()[9], 94.5);
    }

    #[test]
    fn bucket_agg_max() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 20, |i| (i % 5) as f64);
        let d = bucket_agg(&s, Duration::from_millis(50), AggKind::Max);
        assert!(d.values().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn lttb_endpoints_and_budget() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 1000, |i| {
            ((i as f64) * 0.05).sin()
        });
        let d = lttb(&s, 50);
        assert_eq!(d.len(), 50);
        assert_eq!(d.first(), s.first());
        assert_eq!(d.last(), s.last());
        assert!(d.validate().is_ok(), "selected points stay ordered");
    }

    #[test]
    fn lttb_keeps_spike() {
        // flat signal with one tall spike: LTTB must keep the spike
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 500, |i| {
            if i == 250 {
                100.0
            } else {
                0.0
            }
        });
        let d = lttb(&s, 10);
        assert!(
            d.values().contains(&100.0),
            "spike must survive downsampling"
        );
    }

    #[test]
    fn lttb_small_inputs_pass_through() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 5, |i| i as f64);
        assert_eq!(lttb(&s, 10), s, "threshold >= len");
        assert_eq!(lttb(&s, 2), s, "threshold < 3");
        let tiny = TimeSeries::from_pairs([(ts(0), 1.0), (ts(1), 2.0)]);
        assert_eq!(lttb(&tiny, 3), tiny);
    }

    #[test]
    fn stride_sampling() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 10, |i| i as f64);
        let d = stride(&s, 3);
        assert_eq!(d.values(), &[0.0, 3.0, 6.0, 9.0]);
        assert_eq!(stride(&s, 1), s);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn stride_zero_panics() {
        let s = TimeSeries::new();
        let _ = stride(&s, 0);
    }
}
