//! Range and windowed aggregation over series.
//!
//! These are the series-side primitives behind HyQL's `AGG` clauses and
//! the Table-1 aggregate queries. The store offers chunk-accelerated
//! versions of the same computations; this module is the reference
//! implementation over in-memory series and the provider of windowed
//! (tumbling / sliding) variants.

use crate::series::TimeSeries;
use crate::store::{AggKind, Summary};
use hygraph_types::{Duration, Interval, Timestamp};

/// Aggregates the observations of `s` inside `interval`.
pub fn aggregate(s: &TimeSeries, interval: &Interval, kind: AggKind) -> Option<f64> {
    let view = s.range(interval);
    Summary::of(view.values).get(kind)
}

/// Full-series summary.
pub fn summarize(s: &TimeSeries) -> Summary {
    Summary::of(s.values())
}

/// Tumbling-window aggregation: one output point per `bucket`-wide window
/// (timestamped at the window start). Empty windows are skipped.
pub fn tumbling(
    s: &TimeSeries,
    interval: &Interval,
    bucket: Duration,
    kind: AggKind,
) -> TimeSeries {
    assert!(bucket.is_positive(), "bucket width must be positive");
    let mut out = TimeSeries::new();
    let mut cur_key: Option<Timestamp> = None;
    let mut acc = Summary::new();
    let view = s.range(interval);
    for (t, v) in view.iter() {
        let key = t.truncate(bucket);
        match cur_key {
            Some(k) if k == key => acc.add(v),
            Some(k) => {
                if let Some(x) = acc.get(kind) {
                    out.push(k, x).expect("keys increase");
                }
                acc = Summary::new();
                acc.add(v);
                cur_key = Some(key);
            }
            None => {
                acc.add(v);
                cur_key = Some(key);
            }
        }
    }
    if let (Some(k), Some(x)) = (cur_key, acc.get(kind)) {
        out.push(k, x).expect("keys increase");
    }
    out
}

/// Sliding-window aggregation: for every observation, aggregates the
/// window `[t - width, t]` ending at it. O(n) for Count/Sum/Mean via a
/// two-pointer pass; Min/Max use a monotonic deque, also O(n).
pub fn sliding(s: &TimeSeries, width: Duration, kind: AggKind) -> TimeSeries {
    assert!(
        width.is_positive() || width == Duration::ZERO,
        "width must be non-negative"
    );
    let times = s.times();
    let values = s.values();
    let mut out = TimeSeries::with_capacity(s.len());
    match kind {
        AggKind::Count | AggKind::Sum | AggKind::Mean => {
            let mut lo = 0usize;
            let mut sum = 0.0f64;
            for hi in 0..s.len() {
                sum += values[hi];
                let win_start = times[hi] - width;
                while times[lo] < win_start {
                    sum -= values[lo];
                    lo += 1;
                }
                let n = (hi - lo + 1) as f64;
                let x = match kind {
                    AggKind::Count => n,
                    AggKind::Sum => sum,
                    AggKind::Mean => sum / n,
                    _ => unreachable!(),
                };
                out.push(times[hi], x).expect("input is ordered");
            }
        }
        AggKind::Min | AggKind::Max => {
            // monotonic deque of indices
            let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
            let better = |a: f64, b: f64| match kind {
                AggKind::Min => a <= b,
                AggKind::Max => a >= b,
                _ => unreachable!(),
            };
            let mut lo = 0usize;
            for hi in 0..s.len() {
                while deque.back().is_some_and(|&j| better(values[hi], values[j])) {
                    deque.pop_back();
                }
                deque.push_back(hi);
                let win_start = times[hi] - width;
                while times[lo] < win_start {
                    lo += 1;
                }
                while deque.front().is_some_and(|&j| j < lo) {
                    deque.pop_front();
                }
                let x = values[*deque.front().expect("hi was just pushed")];
                out.push(times[hi], x).expect("input is ordered");
            }
        }
    }
    out
}

/// Cumulative sum on the same time axis.
pub fn cumsum(s: &TimeSeries) -> TimeSeries {
    let mut acc = 0.0;
    let mut out = TimeSeries::with_capacity(s.len());
    for (t, v) in s.iter() {
        acc += v;
        out.push(t, acc).expect("input is ordered");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn series() -> TimeSeries {
        // t: 0,10,...,90; v: 0..9
        TimeSeries::generate(ts(0), Duration::from_millis(10), 10, |i| i as f64)
    }

    #[test]
    fn range_aggregate() {
        let s = series();
        let iv = Interval::new(ts(20), ts(60));
        assert_eq!(aggregate(&s, &iv, AggKind::Count), Some(4.0));
        assert_eq!(
            aggregate(&s, &iv, AggKind::Sum),
            Some(2.0 + 3.0 + 4.0 + 5.0)
        );
        assert_eq!(aggregate(&s, &iv, AggKind::Mean), Some(3.5));
        assert_eq!(aggregate(&s, &iv, AggKind::Min), Some(2.0));
        assert_eq!(aggregate(&s, &iv, AggKind::Max), Some(5.0));
        let empty = Interval::new(ts(500), ts(600));
        assert_eq!(aggregate(&s, &empty, AggKind::Mean), None);
    }

    #[test]
    fn tumbling_means() {
        let s = series();
        let out = tumbling(&s, &Interval::ALL, Duration::from_millis(30), AggKind::Mean);
        // windows: [0,30): 0,1,2 -> 1; [30,60): 3,4,5 -> 4; [60,90): 6,7,8 -> 7; [90,120): 9
        assert_eq!(out.times(), &[ts(0), ts(30), ts(60), ts(90)]);
        assert_eq!(out.values(), &[1.0, 4.0, 7.0, 9.0]);
    }

    #[test]
    fn tumbling_respects_interval() {
        let s = series();
        let out = tumbling(
            &s,
            &Interval::new(ts(25), ts(65)),
            Duration::from_millis(30),
            AggKind::Count,
        );
        // visible points: 30,40,50,60 -> windows [30,60): 3 points, [60,90): 1 point
        assert_eq!(out.values(), &[3.0, 1.0]);
    }

    #[test]
    fn sliding_mean_matches_naive() {
        let s = series();
        let w = Duration::from_millis(25);
        let out = sliding(&s, w, AggKind::Mean);
        assert_eq!(out.len(), s.len());
        for (i, (t, got)) in out.iter().enumerate() {
            let lo = t - w;
            let expect: Vec<f64> = s
                .iter()
                .filter(|(u, _)| *u >= lo && *u <= t)
                .map(|(_, v)| v)
                .collect();
            let m = expect.iter().sum::<f64>() / expect.len() as f64;
            assert!((got - m).abs() < 1e-12, "at index {i}");
        }
    }

    #[test]
    fn sliding_min_max_monotonic_deque() {
        let s = TimeSeries::from_pairs([
            (ts(0), 5.0),
            (ts(10), 1.0),
            (ts(20), 4.0),
            (ts(30), 2.0),
            (ts(40), 8.0),
        ]);
        let w = Duration::from_millis(20);
        let mins = sliding(&s, w, AggKind::Min);
        assert_eq!(mins.values(), &[5.0, 1.0, 1.0, 1.0, 2.0]);
        let maxs = sliding(&s, w, AggKind::Max);
        assert_eq!(maxs.values(), &[5.0, 5.0, 5.0, 4.0, 8.0]);
    }

    #[test]
    fn sliding_zero_width_is_identity_for_mean() {
        let s = series();
        let out = sliding(&s, Duration::ZERO, AggKind::Mean);
        assert_eq!(out.values(), s.values());
    }

    #[test]
    fn cumsum_works() {
        let s = TimeSeries::from_pairs([(ts(0), 1.0), (ts(1), 2.0), (ts(2), 3.0)]);
        assert_eq!(cumsum(&s).values(), &[1.0, 3.0, 6.0]);
        assert!(cumsum(&TimeSeries::new()).is_empty());
    }

    #[test]
    fn summarize_full() {
        let s = series();
        let sm = summarize(&s);
        assert_eq!(sm.count, 10);
        assert_eq!(sm.min, 0.0);
        assert_eq!(sm.max, 9.0);
    }
}
