//! Resampling and alignment onto regular time grids.
//!
//! Correlation, PCA and multivariate construction all need series on a
//! shared time axis; this module provides the interpolation strategies
//! to get there.

use crate::series::TimeSeries;
use hygraph_types::{Duration, Timestamp};

/// How to fill grid points that fall between observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillMethod {
    /// Linear interpolation between the surrounding observations.
    Linear,
    /// Last observation carried forward (step function).
    Previous,
    /// Value of the nearest observation in time.
    Nearest,
}

/// Resamples `s` onto the regular grid `start, start+step, …` with `n`
/// points. Grid points outside the observed span are clamped to the
/// first/last observation. Returns an empty series if `s` is empty.
pub fn resample(
    s: &TimeSeries,
    start: Timestamp,
    step: Duration,
    n: usize,
    method: FillMethod,
) -> TimeSeries {
    assert!(step.is_positive(), "step must be positive");
    if s.is_empty() {
        return TimeSeries::new();
    }
    let times = s.times();
    let values = s.values();
    let mut out = TimeSeries::with_capacity(n);
    let mut t = start;
    for _ in 0..n {
        let v = interpolate_at(times, values, t, method);
        out.push(t, v).expect("grid is increasing");
        t += step;
    }
    out
}

/// Aligns two series onto a common regular grid covering the overlap of
/// their spans. Returns `None` when the spans do not overlap (or either
/// series is empty).
pub fn align(
    a: &TimeSeries,
    b: &TimeSeries,
    step: Duration,
    method: FillMethod,
) -> Option<(TimeSeries, TimeSeries)> {
    let sa = a.span()?;
    let sb = b.span()?;
    let overlap = sa.intersect(&sb)?;
    let n = (overlap.len().millis() / step.millis()).max(1) as usize;
    let ra = resample(a, overlap.start, step, n, method);
    let rb = resample(b, overlap.start, step, n, method);
    Some((ra, rb))
}

/// Interpolated value of the (sorted) observation columns at time `t`.
pub fn interpolate_at(
    times: &[Timestamp],
    values: &[f64],
    t: Timestamp,
    method: FillMethod,
) -> f64 {
    debug_assert!(!times.is_empty());
    match times.binary_search(&t) {
        Ok(i) => values[i],
        Err(0) => values[0],
        Err(i) if i == times.len() => values[times.len() - 1],
        Err(i) => {
            let (t0, v0) = (times[i - 1], values[i - 1]);
            let (t1, v1) = (times[i], values[i]);
            match method {
                FillMethod::Previous => v0,
                FillMethod::Nearest => {
                    if (t - t0) <= (t1 - t) {
                        v0
                    } else {
                        v1
                    }
                }
                FillMethod::Linear => {
                    let span = (t1 - t0).millis() as f64;
                    let frac = (t - t0).millis() as f64 / span;
                    v0 + (v1 - v0) * frac
                }
            }
        }
    }
}

/// Fills gaps larger than `max_gap` with NaN markers removed — i.e.
/// returns the sub-series split points where the sampling interval
/// exceeds `max_gap`. Useful for detecting sensor outages before
/// resampling across them.
pub fn gap_split(s: &TimeSeries, max_gap: Duration) -> Vec<TimeSeries> {
    if s.is_empty() {
        return Vec::new();
    }
    let mut parts = Vec::new();
    let mut cur = TimeSeries::new();
    let mut prev: Option<Timestamp> = None;
    for (t, v) in s.iter() {
        if let Some(p) = prev {
            if t - p > max_gap {
                parts.push(std::mem::take(&mut cur));
            }
        }
        cur.push(t, v).expect("input ordered");
        prev = Some(t);
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn linear_interpolation() {
        let s = TimeSeries::from_pairs([(ts(0), 0.0), (ts(10), 10.0)]);
        let r = resample(&s, ts(0), Duration::from_millis(5), 3, FillMethod::Linear);
        assert_eq!(r.values(), &[0.0, 5.0, 10.0]);
    }

    #[test]
    fn previous_fill() {
        let s = TimeSeries::from_pairs([(ts(0), 1.0), (ts(10), 2.0)]);
        let r = resample(&s, ts(0), Duration::from_millis(4), 3, FillMethod::Previous);
        assert_eq!(r.values(), &[1.0, 1.0, 1.0]);
        let r = resample(&s, ts(2), Duration::from_millis(8), 2, FillMethod::Previous);
        assert_eq!(
            r.values(),
            &[1.0, 2.0],
            "exact hit at t=10 uses the observation"
        );
    }

    #[test]
    fn nearest_fill_tie_goes_left() {
        let s = TimeSeries::from_pairs([(ts(0), 1.0), (ts(10), 2.0)]);
        assert_eq!(
            interpolate_at(s.times(), s.values(), ts(5), FillMethod::Nearest),
            1.0
        );
        assert_eq!(
            interpolate_at(s.times(), s.values(), ts(6), FillMethod::Nearest),
            2.0
        );
        assert_eq!(
            interpolate_at(s.times(), s.values(), ts(4), FillMethod::Nearest),
            1.0
        );
    }

    #[test]
    fn clamping_outside_span() {
        let s = TimeSeries::from_pairs([(ts(10), 5.0), (ts(20), 7.0)]);
        assert_eq!(
            interpolate_at(s.times(), s.values(), ts(0), FillMethod::Linear),
            5.0
        );
        assert_eq!(
            interpolate_at(s.times(), s.values(), ts(100), FillMethod::Linear),
            7.0
        );
    }

    #[test]
    fn empty_series_resamples_empty() {
        let r = resample(
            &TimeSeries::new(),
            ts(0),
            Duration::from_millis(1),
            5,
            FillMethod::Linear,
        );
        assert!(r.is_empty());
    }

    #[test]
    fn align_overlapping() {
        let a = TimeSeries::generate(ts(0), Duration::from_millis(10), 10, |i| i as f64);
        let b = TimeSeries::generate(ts(50), Duration::from_millis(10), 10, |i| i as f64);
        let (ra, rb) = align(&a, &b, Duration::from_millis(10), FillMethod::Linear).unwrap();
        assert_eq!(ra.len(), rb.len());
        assert_eq!(ra.times(), rb.times());
        assert_eq!(ra.first().unwrap().0, ts(50));
    }

    #[test]
    fn align_disjoint_is_none() {
        let a = TimeSeries::generate(ts(0), Duration::from_millis(1), 5, |_| 0.0);
        let b = TimeSeries::generate(ts(100), Duration::from_millis(1), 5, |_| 0.0);
        assert!(align(&a, &b, Duration::from_millis(1), FillMethod::Linear).is_none());
        assert!(align(
            &a,
            &TimeSeries::new(),
            Duration::from_millis(1),
            FillMethod::Linear
        )
        .is_none());
    }

    #[test]
    fn gap_split_detects_outage() {
        let s = TimeSeries::from_pairs([
            (ts(0), 1.0),
            (ts(10), 2.0),
            (ts(20), 3.0),
            (ts(500), 4.0), // outage
            (ts(510), 5.0),
        ]);
        let parts = gap_split(&s, Duration::from_millis(50));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 2);
        assert!(gap_split(&TimeSeries::new(), Duration::from_millis(1)).is_empty());
    }
}
