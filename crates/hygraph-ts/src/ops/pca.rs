//! Principal component analysis via power iteration with deflation —
//! the paper's proposed tool "PCA for time-series aspects" of the hybrid
//! embedding (Table 2, row E).
//!
//! Operates on row-major data matrices (one row per sample). Suitable for
//! projecting per-vertex time-series feature matrices down to a few
//! dimensions before concatenation with structural embeddings.

use crate::ops::stats;

/// Result of a PCA fit.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Column means subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal components, one row per component (unit vectors).
    pub components: Vec<Vec<f64>>,
    /// Variance explained by each component.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits `k` principal components to `rows` (samples × features).
    /// Returns `None` for empty input, inconsistent row lengths, or
    /// `k == 0`.
    pub fn fit(rows: &[Vec<f64>], k: usize) -> Option<Pca> {
        let n = rows.len();
        if n == 0 || k == 0 {
            return None;
        }
        let dim = rows[0].len();
        if dim == 0 || rows.iter().any(|r| r.len() != dim) {
            return None;
        }
        let k = k.min(dim);

        // centre the data
        let mut mean = vec![0.0; dim];
        for r in rows {
            for (m, &x) in mean.iter_mut().zip(r) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut centred: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().zip(&mean).map(|(x, m)| x - m).collect())
            .collect();

        let mut components = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);

        for c in 0..k {
            match dominant_direction(&centred, 200, 1e-10, c) {
                Some((dir, var)) if var > f64::EPSILON => {
                    // deflate: remove the component from the data
                    for row in &mut centred {
                        let proj: f64 = row.iter().zip(&dir).map(|(x, d)| x * d).sum();
                        for (x, d) in row.iter_mut().zip(&dir) {
                            *x -= proj * d;
                        }
                    }
                    components.push(dir);
                    explained.push(var);
                }
                _ => break, // remaining variance is zero
            }
        }
        if components.is_empty() {
            // degenerate (constant) data: return the first axis with zero variance
            let mut e0 = vec![0.0; dim];
            e0[0] = 1.0;
            components.push(e0);
            explained.push(0.0);
        }
        Some(Pca {
            mean,
            components,
            explained_variance: explained,
        })
    }

    /// Number of fitted components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Projects one sample onto the fitted components.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        self.components
            .iter()
            .map(|comp| {
                row.iter()
                    .zip(&self.mean)
                    .zip(comp)
                    .map(|((x, m), c)| (x - m) * c)
                    .sum()
            })
            .collect()
    }

    /// Projects many samples.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Fraction of total variance captured by the fitted components,
    /// relative to the original per-column variances.
    pub fn explained_ratio(&self, rows: &[Vec<f64>]) -> f64 {
        let dim = self.mean.len();
        let mut total = 0.0;
        for c in 0..dim {
            let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
            total += stats::variance(&col).unwrap_or(0.0);
        }
        if total <= f64::EPSILON {
            return 1.0;
        }
        self.explained_variance.iter().sum::<f64>() / total
    }
}

/// Power iteration for the dominant eigenvector of the covariance of
/// `centred` (already mean-free). Returns the unit direction and the
/// variance along it. `seed_axis` picks a deterministic start vector.
fn dominant_direction(
    centred: &[Vec<f64>],
    max_iter: usize,
    tol: f64,
    seed_axis: usize,
) -> Option<(Vec<f64>, f64)> {
    let n = centred.len();
    let dim = centred[0].len();
    // deterministic start: unit axis rotated by seed, plus small ramp to
    // avoid pathological orthogonal starts
    let mut v: Vec<f64> = (0..dim)
        .map(|i| {
            if i == seed_axis % dim {
                1.0
            } else {
                1e-3 * ((i + 1) as f64)
            }
        })
        .collect();
    normalize(&mut v)?;

    let mut lambda = 0.0;
    for _ in 0..max_iter {
        // w = Cov · v computed as Xᵀ(Xv)/n without materialising Cov
        let mut xv = vec![0.0; n];
        for (i, row) in centred.iter().enumerate() {
            xv[i] = row.iter().zip(&v).map(|(x, b)| x * b).sum();
        }
        let mut w = vec![0.0; dim];
        for (i, row) in centred.iter().enumerate() {
            for (wj, &x) in w.iter_mut().zip(row) {
                *wj += xv[i] * x;
            }
        }
        for wj in &mut w {
            *wj /= n as f64;
        }
        let new_lambda = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if new_lambda <= f64::EPSILON {
            return Some((v, 0.0));
        }
        for wj in &mut w {
            *wj /= new_lambda;
        }
        let delta: f64 = w
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        v = w;
        lambda = new_lambda;
        if delta < tol {
            break;
        }
    }
    Some((v, lambda))
}

/// PCA similarity factor between two multivariate series (Yang &
/// Shahabi, 2004): fits `k` principal components to each series' rows
/// and measures subspace alignment as `(1/k) Σᵢⱼ cos²θᵢⱼ` over the two
/// component sets — 1.0 for identical subspaces, → 0 for orthogonal
/// ones. Returns `None` when either side has too little data or the
/// arities differ.
pub fn pca_similarity(
    a: &crate::multi::MultiSeries,
    b: &crate::multi::MultiSeries,
    k: usize,
) -> Option<f64> {
    if a.arity() != b.arity() || a.arity() == 0 || k == 0 {
        return None;
    }
    let rows = |m: &crate::multi::MultiSeries| -> Vec<Vec<f64>> {
        (0..m.len())
            .map(|i| m.row(i).expect("index in range").1)
            .collect()
    };
    let pa = Pca::fit(&rows(a), k)?;
    let pb = Pca::fit(&rows(b), k)?;
    let k_eff = pa.k().min(pb.k());
    if k_eff == 0 {
        return None;
    }
    let mut acc = 0.0;
    for ca in pa.components.iter().take(k_eff) {
        for cb in pb.components.iter().take(k_eff) {
            let dot: f64 = ca.iter().zip(cb).map(|(x, y)| x * y).sum();
            acc += dot * dot;
        }
    }
    Some((acc / k_eff as f64).clamp(0.0, 1.0))
}

fn normalize(v: &mut [f64]) -> Option<()> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm <= f64::EPSILON {
        return None;
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Samples spread along the direction (3, 4)/5 with small noise in the
    /// orthogonal direction.
    fn anisotropic() -> Vec<Vec<f64>> {
        (0..100)
            .map(|i| {
                let t = (i as f64 - 50.0) / 10.0;
                let noise = ((i * 7919) % 13) as f64 / 13.0 - 0.5; // deterministic pseudo-noise
                vec![3.0 * t - 4.0 * 0.05 * noise, 4.0 * t + 3.0 * 0.05 * noise]
            })
            .collect()
    }

    #[test]
    fn first_component_is_main_axis() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 1).unwrap();
        let c = &pca.components[0];
        // direction (0.6, 0.8) up to sign
        let dot = (c[0] * 0.6 + c[1] * 0.8).abs();
        assert!(dot > 0.999, "component {c:?} not aligned, |dot|={dot}");
        assert!(pca.explained_variance[0] > 1.0);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 2).unwrap();
        assert_eq!(pca.k(), 2);
        for c in &pca.components {
            let norm: f64 = c.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6);
        }
        let dot: f64 = pca.components[0]
            .iter()
            .zip(&pca.components[1])
            .map(|(a, b)| a * b)
            .sum();
        assert!(dot.abs() < 1e-6, "components not orthogonal: {dot}");
    }

    #[test]
    fn transform_reduces_dimension() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 1).unwrap();
        let projected = pca.transform_all(&data);
        assert_eq!(projected.len(), data.len());
        assert_eq!(projected[0].len(), 1);
        // the 1-D projection still separates the extremes
        let first = projected[0][0];
        let last = projected[99][0];
        assert!((first - last).abs() > 10.0);
    }

    #[test]
    fn explained_ratio_near_one_for_low_rank_data() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 1).unwrap();
        let r = pca.explained_ratio(&data);
        assert!(r > 0.99, "one component should explain nearly all, got {r}");
    }

    #[test]
    fn variance_ordering() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.explained_variance[0] >= pca.explained_variance[1]);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Pca::fit(&[], 2).is_none());
        assert!(Pca::fit(&[vec![1.0, 2.0]], 0).is_none());
        assert!(
            Pca::fit(&[vec![1.0], vec![1.0, 2.0]], 1).is_none(),
            "ragged rows"
        );
        // constant data: one zero-variance component
        let constant = vec![vec![5.0, 5.0]; 10];
        let pca = Pca::fit(&constant, 2).unwrap();
        assert_eq!(pca.explained_variance[0], 0.0);
        let p = pca.transform(&[5.0, 5.0]);
        assert!(p.iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn pca_similarity_multivariate() {
        use crate::multi::MultiSeries;
        use hygraph_types::Timestamp;
        let mk = |f: &dyn Fn(usize) -> (f64, f64)| {
            let mut m = MultiSeries::new(["x", "y"]);
            for i in 0..80 {
                let (x, y) = f(i);
                m.push(Timestamp::from_millis(i as i64), &[x, y]).unwrap();
            }
            m
        };
        // a and b vary along the same direction (1, 2); c along (2, -1)
        let a = mk(&|i| {
            let t = (i as f64 * 0.3).sin();
            (t, 2.0 * t)
        });
        let b = mk(&|i| {
            let t = (i as f64 * 0.17).cos() * 5.0;
            (t, 2.0 * t)
        });
        let c = mk(&|i| {
            let t = (i as f64 * 0.3).sin();
            (2.0 * t, -t)
        });
        let same = pca_similarity(&a, &b, 1).unwrap();
        let diff = pca_similarity(&a, &c, 1).unwrap();
        assert!(same > 0.99, "aligned subspaces: {same}");
        assert!(diff < 0.05, "orthogonal subspaces: {diff}");
        // degenerate inputs
        let one_var = MultiSeries::new(["only"]);
        assert!(pca_similarity(&a, &one_var, 1).is_none(), "arity mismatch");
        assert!(pca_similarity(&a, &b, 0).is_none());
        // full-rank comparison is symmetric
        let s_ab = pca_similarity(&a, &b, 2).unwrap();
        let s_ba = pca_similarity(&b, &a, 2).unwrap();
        assert!((s_ab - s_ba).abs() < 1e-9);
    }

    #[test]
    fn k_clamped_to_dim() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 10).unwrap();
        assert!(pca.k() <= 2);
    }
}
