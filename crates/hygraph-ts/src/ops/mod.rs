//! Time-series operators — the TS column of the paper's Table 2.
//!
//! Each submodule implements one taxonomy row; see the crate docs for the
//! full mapping. All operators take borrowed series/slices and return
//! owned results, so they compose freely with the store's chunk-pruned
//! range scans.

pub mod aggregate;
pub mod anomaly;
pub mod correlate;
pub mod downsample;
pub mod features;
pub mod forecast;
pub mod motif;
pub mod pca;
pub mod resample;
pub mod sax;
pub mod segment;
pub mod stats;
pub mod stream;
pub mod subsequence;
