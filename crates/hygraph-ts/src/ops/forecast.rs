//! Forecasting (the paper's §1/§2 "predictive tasks": micromobility
//! demand prediction).
//!
//! Three classical forecasters, from baseline to seasonal:
//! * **seasonal naive** — repeat the last observed season;
//! * **AR(p)** — autoregression fit by Yule-Walker (Levinson-Durbin);
//! * **Holt-Winters** — additive triple exponential smoothing.
//!
//! All operate on regularly-sampled series and forecast a fixed horizon
//! on the same grid. The hybrid demand-prediction example combines these
//! with graph context (correlated neighbour stations).

use crate::ops::stats;
use crate::series::TimeSeries;
use hygraph_types::{Duration, HyGraphError, Result, Timestamp};

/// Infers the (regular) sampling step of a series; errors when the
/// series has fewer than 2 points or irregular spacing.
pub fn sampling_step(s: &TimeSeries) -> Result<Duration> {
    if s.len() < 2 {
        return Err(HyGraphError::EmptyInput("sampling_step needs >= 2 points"));
    }
    let times = s.times();
    let step = times[1] - times[0];
    for w in times.windows(2) {
        if w[1] - w[0] != step {
            return Err(HyGraphError::invalid(
                "series is not regularly sampled; resample first",
            ));
        }
    }
    Ok(step)
}

fn horizon_axis(s: &TimeSeries, step: Duration, horizon: usize) -> Vec<Timestamp> {
    let (last, _) = s.last().expect("caller checks non-empty");
    (1..=horizon as i64).map(|k| last + step.scale(k)).collect()
}

/// Seasonal-naive forecast: `ŷ(t+k) = y(t+k-m)` for season length `m`
/// points. Falls back to repeating the last value when the history is
/// shorter than one season.
pub fn seasonal_naive(s: &TimeSeries, season: usize, horizon: usize) -> Result<TimeSeries> {
    let step = sampling_step(s)?;
    let values = s.values();
    let n = values.len();
    let axis = horizon_axis(s, step, horizon);
    let mut out = TimeSeries::with_capacity(horizon);
    for (k, &t) in axis.iter().enumerate() {
        let v = if season > 0 && n >= season {
            values[n - season + (k % season)]
        } else {
            values[n - 1]
        };
        out.push(t, v).expect("axis increases");
    }
    Ok(out)
}

/// Fits AR(p) coefficients by Yule-Walker / Levinson-Durbin on the
/// centred series. Returns `(coefficients, mean)`.
pub fn fit_ar(values: &[f64], p: usize) -> Result<(Vec<f64>, f64)> {
    if values.len() < p + 2 || p == 0 {
        return Err(HyGraphError::invalid(format!(
            "AR({p}) needs at least {} points, got {}",
            p + 2,
            values.len()
        )));
    }
    let mean = stats::mean(values).expect("non-empty");
    let centred: Vec<f64> = values.iter().map(|x| x - mean).collect();
    // autocovariances r[0..=p]
    let n = centred.len() as f64;
    let r: Vec<f64> = (0..=p)
        .map(|k| {
            (0..centred.len() - k)
                .map(|i| centred[i] * centred[i + k])
                .sum::<f64>()
                / n
        })
        .collect();
    if r[0] <= f64::EPSILON {
        return Err(HyGraphError::invalid("constant series has no AR model"));
    }
    // Levinson-Durbin recursion
    let mut a = vec![0.0f64; p];
    let mut e = r[0];
    for k in 0..p {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= a[j] * r[k - j];
        }
        let kappa = acc / e;
        let mut new_a = a.clone();
        new_a[k] = kappa;
        for j in 0..k {
            new_a[j] = a[j] - kappa * a[k - 1 - j];
        }
        a = new_a;
        e *= 1.0 - kappa * kappa;
        if e <= f64::EPSILON {
            break;
        }
    }
    Ok((a, mean))
}

/// AR(p) forecast: fits on the history and iterates the recursion for
/// `horizon` steps.
pub fn ar_forecast(s: &TimeSeries, p: usize, horizon: usize) -> Result<TimeSeries> {
    let step = sampling_step(s)?;
    let (coef, mean) = fit_ar(s.values(), p)?;
    let mut history: Vec<f64> = s.values().iter().map(|x| x - mean).collect();
    let axis = horizon_axis(s, step, horizon);
    let mut out = TimeSeries::with_capacity(horizon);
    for &t in &axis {
        let m = history.len();
        let pred: f64 = coef
            .iter()
            .enumerate()
            .map(|(j, &c)| c * history[m - 1 - j])
            .sum();
        history.push(pred);
        out.push(t, pred + mean).expect("axis increases");
    }
    Ok(out)
}

/// Holt-Winters additive configuration.
#[derive(Clone, Copy, Debug)]
pub struct HoltWinters {
    /// Level smoothing in (0, 1).
    pub alpha: f64,
    /// Trend smoothing in (0, 1).
    pub beta: f64,
    /// Seasonal smoothing in (0, 1).
    pub gamma: f64,
    /// Season length in points (>= 2).
    pub season: usize,
}

impl Default for HoltWinters {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.2,
            season: 24,
        }
    }
}

/// Additive Holt-Winters forecast. Requires at least two full seasons
/// of history.
pub fn holt_winters(s: &TimeSeries, cfg: HoltWinters, horizon: usize) -> Result<TimeSeries> {
    let step = sampling_step(s)?;
    let m = cfg.season;
    let values = s.values();
    if m < 2 || values.len() < 2 * m {
        return Err(HyGraphError::invalid(format!(
            "holt-winters needs >= 2 seasons ({} points), got {}",
            2 * m,
            values.len()
        )));
    }
    for x in [cfg.alpha, cfg.beta, cfg.gamma] {
        if !(0.0..1.0).contains(&x) || x == 0.0 {
            return Err(HyGraphError::invalid("smoothing factors must be in (0, 1)"));
        }
    }
    // initialisation: first-season mean level, mean first-difference of
    // season means for trend, first-season deviations for seasonals
    let season1 = &values[..m];
    let season2 = &values[m..2 * m];
    let mean1 = stats::mean(season1).expect("non-empty");
    let mean2 = stats::mean(season2).expect("non-empty");
    let mut level = mean1;
    let mut trend = (mean2 - mean1) / m as f64;
    let mut seasonal: Vec<f64> = season1.iter().map(|x| x - mean1).collect();

    for (i, &y) in values.iter().enumerate().skip(m) {
        let si = i % m;
        let last_level = level;
        level = cfg.alpha * (y - seasonal[si]) + (1.0 - cfg.alpha) * (level + trend);
        trend = cfg.beta * (level - last_level) + (1.0 - cfg.beta) * trend;
        seasonal[si] = cfg.gamma * (y - level) + (1.0 - cfg.gamma) * seasonal[si];
    }

    let n = values.len();
    let axis = horizon_axis(s, step, horizon);
    let mut out = TimeSeries::with_capacity(horizon);
    for (k, &t) in axis.iter().enumerate() {
        let si = (n + k) % m;
        let pred = level + trend * (k + 1) as f64 + seasonal[si];
        out.push(t, pred).expect("axis increases");
    }
    Ok(out)
}

/// Mean absolute error between a forecast and the actual continuation
/// (aligned by timestamp; unmatched points are skipped). `None` when no
/// timestamps align.
pub fn mae(forecast: &TimeSeries, actual: &TimeSeries) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0usize;
    for (t, f) in forecast.iter() {
        if let Some(a) = actual.value_at(t) {
            total += (f - a).abs();
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn seasonal_series(n: usize, period: usize) -> TimeSeries {
        TimeSeries::generate(ts(0), Duration::from_mins(1), n, move |i| {
            50.0 + 10.0 * ((i % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
        })
    }

    #[test]
    fn sampling_step_detection() {
        let s = seasonal_series(10, 5);
        assert_eq!(sampling_step(&s).unwrap(), Duration::from_mins(1));
        let irregular = TimeSeries::from_pairs([(ts(0), 1.0), (ts(10), 2.0), (ts(15), 3.0)]);
        assert!(sampling_step(&irregular).is_err());
        let single = TimeSeries::from_pairs([(ts(0), 1.0)]);
        assert!(sampling_step(&single).is_err());
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        let s = seasonal_series(48, 24);
        let f = seasonal_naive(&s, 24, 24).unwrap();
        assert_eq!(f.len(), 24);
        // perfect seasonality: forecast equals the last observed season
        let err = mae(&f, &seasonal_series(96, 24)).unwrap();
        assert!(err < 1e-9, "mae {err}");
        // forecast axis continues the grid
        assert_eq!(f.first().unwrap().0, ts(48 * 60_000));
    }

    #[test]
    fn seasonal_naive_short_history_fallback() {
        let s = seasonal_series(5, 24);
        let f = seasonal_naive(&s, 24, 3).unwrap();
        let last = s.last().unwrap().1;
        assert!(f.values().iter().all(|&v| v == last));
    }

    #[test]
    fn ar_fits_ar1_process() {
        // stationary AR(1): x_{t+1} = 0.8 x_t + noise (deterministic
        // hash noise so the test is reproducible)
        let noise = |i: usize| {
            let mut x = (i as u64) ^ 0x9E37_79B9_7F4A_7C15;
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 29;
            (x % 1000) as f64 / 1000.0 - 0.5
        };
        let mut x = 0.0f64;
        let s = TimeSeries::generate(ts(0), Duration::from_mins(1), 500, |i| {
            x = 0.8 * x + noise(i);
            x
        });
        let (coef, mean) = fit_ar(s.values(), 1).unwrap();
        assert!((coef[0] - 0.8).abs() < 0.1, "coef {coef:?}");
        // multi-step forecast reverts toward the series mean
        let f = ar_forecast(&s, 1, 50).unwrap();
        let first_dev = (f.values()[0] - mean).abs();
        let last_dev = (f.values()[49] - mean).abs();
        assert!(
            last_dev < first_dev.max(1e-9),
            "mean reversion: {first_dev} -> {last_dev}"
        );
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn ar_rejects_degenerate() {
        let flat = TimeSeries::generate(ts(0), Duration::from_mins(1), 30, |_| 5.0);
        assert!(fit_ar(flat.values(), 2).is_err(), "constant series");
        let tiny = TimeSeries::generate(ts(0), Duration::from_mins(1), 3, |i| i as f64);
        assert!(fit_ar(tiny.values(), 5).is_err(), "too short");
        assert!(fit_ar(tiny.values(), 0).is_err(), "p = 0");
    }

    #[test]
    fn holt_winters_tracks_seasonal_trend() {
        // rising seasonal signal
        let period = 12;
        let s = TimeSeries::generate(ts(0), Duration::from_mins(1), 96, move |i| {
            i as f64 * 0.5
                + 8.0 * ((i % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
        });
        let cfg = HoltWinters {
            season: period,
            ..Default::default()
        };
        let f = holt_winters(&s, cfg, 24).unwrap();
        let actual = TimeSeries::generate(ts(0), Duration::from_mins(1), 120, move |i| {
            i as f64 * 0.5
                + 8.0 * ((i % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
        });
        let err = mae(&f, &actual).unwrap();
        assert!(err < 2.0, "holt-winters mae {err}");
        // must beat seasonal naive (which misses the trend)
        let naive = seasonal_naive(&s, period, 24).unwrap();
        let naive_err = mae(&naive, &actual).unwrap();
        assert!(err < naive_err, "hw {err} vs naive {naive_err}");
    }

    #[test]
    fn holt_winters_rejects_bad_config() {
        let s = seasonal_series(100, 24);
        assert!(holt_winters(
            &s,
            HoltWinters {
                season: 60,
                ..Default::default()
            },
            5
        )
        .is_err());
        assert!(holt_winters(
            &s,
            HoltWinters {
                alpha: 0.0,
                ..Default::default()
            },
            5
        )
        .is_err());
        assert!(holt_winters(
            &s,
            HoltWinters {
                gamma: 1.0,
                ..Default::default()
            },
            5
        )
        .is_err());
    }

    #[test]
    fn mae_alignment() {
        let f = TimeSeries::from_pairs([(ts(10), 5.0), (ts(20), 7.0)]);
        let a = TimeSeries::from_pairs([(ts(10), 6.0), (ts(30), 0.0)]);
        assert_eq!(mae(&f, &a), Some(1.0), "only t=10 aligns");
        assert_eq!(mae(&f, &TimeSeries::new()), None);
    }
}
