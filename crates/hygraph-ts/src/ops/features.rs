//! Temporal feature extraction (Table 2, rows C1/C2 — time-series side).
//!
//! Produces fixed-length feature vectors ("temporal FAT": features,
//! autocorrelation, trends) summarising a series for classification and
//! clustering — the time-series contribution to the hybrid embedding the
//! paper proposes for E/C1/C2.

use crate::ops::stats;
use crate::series::TimeSeries;

/// Number of features produced by [`feature_vector`].
pub const FEATURE_DIM: usize = 10;

/// Names of the features, index-aligned with [`feature_vector`].
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "mean",
    "stddev",
    "min",
    "max",
    "median",
    "trend_slope",
    "acf_lag1",
    "acf_lag2",
    "abs_energy",
    "mean_abs_change",
];

/// Fixed-length statistical summary of a series. Empty series map to the
/// zero vector; undefined entries (e.g. autocorrelation of a constant)
/// are 0.
pub fn feature_vector(s: &TimeSeries) -> [f64; FEATURE_DIM] {
    let xs = s.values();
    if xs.is_empty() {
        return [0.0; FEATURE_DIM];
    }
    let mean = stats::mean(xs).unwrap_or(0.0);
    let sd = stats::stddev(xs).unwrap_or(0.0);
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let median = stats::median(xs).unwrap_or(0.0);
    let slope = stats::linear_fit(xs).map_or(0.0, |(m, _)| m);
    let acf1 = stats::autocorrelation(xs, 1).unwrap_or(0.0);
    let acf2 = stats::autocorrelation(xs, 2).unwrap_or(0.0);
    let energy = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
    let mac = if xs.len() > 1 {
        xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1) as f64
    } else {
        0.0
    };
    [mean, sd, min, max, median, slope, acf1, acf2, energy, mac]
}

/// Z-score normalises a set of feature vectors column-wise, in place —
/// required before distance-based clustering so no single feature
/// dominates. Constant columns become zeros.
pub fn normalize_columns(rows: &mut [Vec<f64>]) {
    if rows.is_empty() {
        return;
    }
    let dim = rows[0].len();
    for c in 0..dim {
        let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
        let m = stats::mean(&col).unwrap_or(0.0);
        let sd = stats::stddev(&col).unwrap_or(0.0);
        for r in rows.iter_mut() {
            r[c] = if sd <= f64::EPSILON {
                0.0
            } else {
                (r[c] - m) / sd
            };
        }
    }
}

/// Euclidean distance between two equal-length feature vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity between two equal-length vectors; 0 when either is
/// the zero vector.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Seasonality strength at period `p`: variance explained by the
/// per-phase means, in `[0, 1]`. 0 for aperiodic or too-short input.
pub fn seasonality_strength(s: &TimeSeries, p: usize) -> f64 {
    let xs = s.values();
    if p < 2 || xs.len() < 2 * p {
        return 0.0;
    }
    let total_var = stats::variance(xs).unwrap_or(0.0);
    if total_var <= f64::EPSILON {
        return 0.0;
    }
    // mean per phase
    let mut phase_sum = vec![0.0; p];
    let mut phase_n = vec![0usize; p];
    for (i, &x) in xs.iter().enumerate() {
        phase_sum[i % p] += x;
        phase_n[i % p] += 1;
    }
    let global = stats::mean(xs).unwrap_or(0.0);
    let mut between = 0.0;
    let mut total_w = 0.0;
    for k in 0..p {
        if phase_n[k] == 0 {
            continue;
        }
        let m = phase_sum[k] / phase_n[k] as f64;
        between += phase_n[k] as f64 * (m - global) * (m - global);
        total_w += phase_n[k] as f64;
    }
    ((between / total_w) / total_var).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Duration, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn feature_vector_basic() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 100, |i| i as f64);
        let f = feature_vector(&s);
        assert!((f[0] - 49.5).abs() < 1e-9, "mean");
        assert_eq!(f[2], 0.0, "min");
        assert_eq!(f[3], 99.0, "max");
        assert!((f[5] - 1.0).abs() < 1e-9, "slope of identity ramp");
        assert!((f[9] - 1.0).abs() < 1e-9, "mean abs change of ramp");
    }

    #[test]
    fn empty_and_single_are_defined() {
        assert_eq!(feature_vector(&TimeSeries::new()), [0.0; FEATURE_DIM]);
        let one = TimeSeries::from_pairs([(ts(0), 5.0)]);
        let f = feature_vector(&one);
        assert_eq!(f[0], 5.0);
        assert_eq!(f[9], 0.0, "mean abs change undefined -> 0");
    }

    #[test]
    fn feature_names_aligned() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
        assert_eq!(FEATURE_NAMES[0], "mean");
        assert_eq!(FEATURE_NAMES[9], "mean_abs_change");
    }

    #[test]
    fn normalize_columns_standardises() {
        let mut rows = vec![vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]];
        normalize_columns(&mut rows);
        for c in 0..2 {
            let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
            assert!(stats::mean(&col).unwrap().abs() < 1e-12);
            assert!((stats::stddev(&col).unwrap() - 1.0).abs() < 1e-12);
        }
        // constant column becomes zeros
        let mut rows = vec![vec![7.0], vec![7.0]];
        normalize_columns(&mut rows);
        assert_eq!(rows, vec![vec![0.0], vec![0.0]]);
        normalize_columns(&mut []);
    }

    #[test]
    fn distances() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0, "zero vector");
    }

    #[test]
    fn seasonality_detects_period() {
        let periodic = TimeSeries::generate(ts(0), Duration::from_millis(1), 200, |i| {
            ((i % 20) as f64 / 20.0 * std::f64::consts::TAU).sin()
        });
        let strength = seasonality_strength(&periodic, 20);
        assert!(
            strength > 0.95,
            "strong period-20 seasonality, got {strength}"
        );
        let wrong_p = seasonality_strength(&periodic, 13);
        assert!(wrong_p < 0.3, "no period-13 seasonality, got {wrong_p}");
        // noise-free ramp: any period explains little
        let ramp = TimeSeries::generate(ts(0), Duration::from_millis(1), 200, |i| i as f64);
        assert!(seasonality_strength(&ramp, 20) < 0.2);
        // degenerate inputs
        assert_eq!(seasonality_strength(&periodic, 1), 0.0);
        assert_eq!(seasonality_strength(&TimeSeries::new(), 10), 0.0);
    }

    #[test]
    fn similar_series_have_similar_features() {
        let a = TimeSeries::generate(ts(0), Duration::from_millis(1), 100, |i| {
            ((i as f64) * 0.2).sin()
        });
        let b = TimeSeries::generate(ts(0), Duration::from_millis(1), 100, |i| {
            ((i as f64) * 0.2).sin() * 1.01
        });
        let c = TimeSeries::generate(ts(0), Duration::from_millis(1), 100, |i| (i as f64) * 5.0);
        let (fa, fb, fc) = (feature_vector(&a), feature_vector(&b), feature_vector(&c));
        assert!(euclidean(&fa, &fb) < euclidean(&fa, &fc));
    }
}
