//! Motif and discord discovery via the matrix profile (Table 2, row PM —
//! time-series side).
//!
//! The matrix profile of a series records, for every subsequence of
//! length `m`, the z-normalised Euclidean distance to its nearest
//! non-trivial neighbour. Its minima are **motifs** (repeated patterns)
//! and its maxima are **discords** (the most unusual subsequences).
//!
//! This is an O(n²·m)-free implementation using the STOMP identity for
//! rolling dot products, giving O(n²) overall — ample for the series
//! sizes of the paper's workloads.

use crate::ops::stats;
use crate::series::TimeSeries;
use hygraph_types::Timestamp;

/// The matrix profile of a series.
#[derive(Clone, Debug)]
pub struct MatrixProfile {
    /// Subsequence length the profile was computed for.
    pub window: usize,
    /// `profile[i]` = distance from subsequence `i` to its nearest
    /// non-trivial neighbour.
    pub profile: Vec<f64>,
    /// `index[i]` = offset of that nearest neighbour.
    pub index: Vec<usize>,
}

/// A discovered motif pair (or discord).
#[derive(Clone, Debug, PartialEq)]
pub struct Motif {
    /// Offset of the first occurrence.
    pub a: usize,
    /// Offset of the second occurrence (nearest neighbour).
    pub b: usize,
    /// Timestamp of the first occurrence.
    pub time_a: Timestamp,
    /// Timestamp of the second occurrence.
    pub time_b: Timestamp,
    /// Z-normalised Euclidean distance between the two occurrences.
    pub distance: f64,
}

/// Computes the matrix profile of `s` with subsequence length `window`.
/// Returns `None` when the series is shorter than `2 * window` (no
/// non-trivial neighbour exists).
pub fn matrix_profile(s: &TimeSeries, window: usize) -> Option<MatrixProfile> {
    let n = s.len();
    let m = window;
    if m < 2 || n < 2 * m {
        return None;
    }
    let values = s.values();
    let n_sub = n - m + 1;

    // per-subsequence mean and stddev via prefix sums
    let mut sum = vec![0.0f64; n + 1];
    let mut sumsq = vec![0.0f64; n + 1];
    for i in 0..n {
        sum[i + 1] = sum[i] + values[i];
        sumsq[i + 1] = sumsq[i] + values[i] * values[i];
    }
    let mf = m as f64;
    let mean = |i: usize| (sum[i + m] - sum[i]) / mf;
    let sd = |i: usize| {
        let mu = mean(i);
        ((sumsq[i + m] - sumsq[i]) / mf - mu * mu).max(0.0).sqrt()
    };

    // exclusion zone (trivial matches): |i - j| < m/2 is excluded
    let excl = (m / 2).max(1);

    let mut profile = vec![f64::INFINITY; n_sub];
    let mut index = vec![0usize; n_sub];

    // initial dot products: q[j] = <sub_0, sub_j>
    let mut q = vec![0.0f64; n_sub];
    for (j, qj) in q.iter_mut().enumerate() {
        let mut acc = 0.0;
        for k in 0..m {
            acc += values[k] * values[j + k];
        }
        *qj = acc;
    }
    let first_row = q.clone();

    for i in 0..n_sub {
        if i > 0 {
            // STOMP update: QT(i,j) = QT(i-1,j-1) - x[i-1]x[j-1] + x[i+m-1]x[j+m-1]
            #[allow(clippy::needless_range_loop)] // j indexes q, q[j-1] and values in lockstep
            for j in (1..n_sub).rev() {
                q[j] = q[j - 1] - values[i - 1] * values[j - 1]
                    + values[i + m - 1] * values[j + m - 1];
            }
            q[0] = first_row[i];
        }
        let mu_i = mean(i);
        let sd_i = sd(i);
        #[allow(clippy::needless_range_loop)] // j drives q, mean(j) and sd(j) together
        for j in 0..n_sub {
            if j.abs_diff(i) < excl {
                continue;
            }
            let sd_j = sd(j);
            let d = if sd_i <= f64::EPSILON || sd_j <= f64::EPSILON {
                // constant subsequence: distance 0 to other constants,
                // max otherwise
                if sd_i <= f64::EPSILON && sd_j <= f64::EPSILON {
                    0.0
                } else {
                    (2.0 * mf).sqrt()
                }
            } else {
                let corr = (q[j] - mf * mu_i * mean(j)) / (mf * sd_i * sd_j);
                (2.0 * mf * (1.0 - corr.clamp(-1.0, 1.0))).max(0.0).sqrt()
            };
            if d < profile[i] {
                profile[i] = d;
                index[i] = j;
            }
        }
    }

    Some(MatrixProfile {
        window,
        profile,
        index,
    })
}

/// Top-`k` motifs: the subsequence pairs with the smallest profile
/// distances, suppressing occurrences overlapping already-reported ones.
pub fn motifs(s: &TimeSeries, window: usize, k: usize) -> Vec<Motif> {
    let Some(mp) = matrix_profile(s, window) else {
        return Vec::new();
    };
    pick(s, &mp, k, false)
}

/// Top-`k` discords: the subsequences *farthest* from any other
/// subsequence — the PM-side anomaly notion.
pub fn discords(s: &TimeSeries, window: usize, k: usize) -> Vec<Motif> {
    let Some(mp) = matrix_profile(s, window) else {
        return Vec::new();
    };
    pick(s, &mp, k, true)
}

fn pick(s: &TimeSeries, mp: &MatrixProfile, k: usize, largest: bool) -> Vec<Motif> {
    let m = mp.window;
    let mut order: Vec<usize> = (0..mp.profile.len())
        .filter(|&i| mp.profile[i].is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        if largest {
            mp.profile[b].total_cmp(&mp.profile[a])
        } else {
            mp.profile[a].total_cmp(&mp.profile[b])
        }
    });
    let mut out: Vec<Motif> = Vec::new();
    let overlaps = |x: usize, y: usize| x.abs_diff(y) < m;
    for i in order {
        if out.len() == k {
            break;
        }
        let j = mp.index[i];
        if out.iter().any(|mo| {
            overlaps(mo.a, i) || overlaps(mo.b, i) || overlaps(mo.a, j) || overlaps(mo.b, j)
        }) {
            continue;
        }
        out.push(Motif {
            a: i,
            b: j,
            time_a: s.times()[i],
            time_b: s.times()[j],
            distance: mp.profile[i],
        });
    }
    out
}

/// Verifies a motif by direct z-normalised distance computation — used in
/// tests and as a safety net for downstream consumers.
pub fn verify_distance(s: &TimeSeries, a: usize, b: usize, window: usize) -> Option<f64> {
    let values = s.values();
    if a + window > values.len() || b + window > values.len() {
        return None;
    }
    let mut xa = values[a..a + window].to_vec();
    let mut xb = values[b..b + window].to_vec();
    stats::znormalize(&mut xa);
    stats::znormalize(&mut xb);
    Some(
        xa.iter()
            .zip(&xb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Duration;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Pseudo-noise background (so no two background windows match under
    /// z-normalisation) with the same bump planted at offsets 100 and
    /// 400, and a unique large sawtooth discord at 250.
    fn planted() -> TimeSeries {
        // deterministic hash noise (murmur-style finalizer, no sequential
        // structure), aperiodic over the series length
        let noise = |i: usize| {
            let mut x = (i as u64) ^ 0x9E37_79B9_7F4A_7C15;
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            x ^= x >> 33;
            (x % 1000) as f64 / 1000.0 - 0.5
        };
        TimeSeries::generate(ts(0), Duration::from_millis(1), 600, |i| {
            let bump = |o: usize| {
                let x = (i as f64 - o as f64) / 10.0;
                (-(x * x)).exp() * 20.0
            };
            let mut v = noise(i) * 0.6;
            if (80..140).contains(&i) {
                v += bump(100);
            }
            if (380..440).contains(&i) {
                v += bump(400);
            }
            if (245..265).contains(&i) {
                v += ((i % 4) as f64) * 8.0; // jagged discord
            }
            v
        })
    }

    #[test]
    fn motif_finds_planted_pair() {
        let s = planted();
        let found = motifs(&s, 40, 1);
        assert_eq!(found.len(), 1);
        let m = &found[0];
        let (lo, hi) = (m.a.min(m.b), m.a.max(m.b));
        // the two bump occurrences are exactly 300 samples apart; any
        // window pair straddling them shares that displacement
        assert_eq!(hi - lo, 300, "expected displacement 300, got ({lo}, {hi})");
        assert!(
            (60..=120).contains(&lo),
            "window should cover bump 1, got {lo}"
        );
        // profile distance agrees with direct computation
        let direct = verify_distance(&s, m.a, m.b, 40).unwrap();
        assert!((direct - m.distance).abs() < 1e-6);
    }

    #[test]
    fn discord_finds_anomalous_region() {
        // periodic background: every normal window has a near-perfect
        // neighbour one period away; the dent at 250..270 has none.
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 600, |i| {
            let base = ((i as f64) / 50.0 * std::f64::consts::TAU).sin();
            if (250..270).contains(&i) {
                base + 3.0 * (((i - 250) as f64 / 20.0 * std::f64::consts::PI).sin())
            } else {
                base
            }
        });
        let found = discords(&s, 25, 1);
        assert_eq!(found.len(), 1);
        let d = &found[0];
        assert!(
            (226..=270).contains(&d.a),
            "expected discord overlapping [250,270), got {}",
            d.a
        );
    }

    #[test]
    fn too_short_series_yields_nothing() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 30, |i| i as f64);
        assert!(matrix_profile(&s, 20).is_none());
        assert!(motifs(&s, 20, 3).is_empty());
        assert!(discords(&s, 20, 3).is_empty());
    }

    #[test]
    fn exclusion_zone_blocks_trivial_matches() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 200, |i| {
            ((i as f64) * 0.1).sin()
        });
        let mp = matrix_profile(&s, 20).unwrap();
        for (i, &j) in mp.index.iter().enumerate() {
            if mp.profile[i].is_finite() {
                assert!(i.abs_diff(j) >= 10, "trivial self-match at ({i},{j})");
            }
        }
    }

    #[test]
    fn multiple_motifs_do_not_overlap() {
        let s = planted();
        let found = motifs(&s, 30, 3);
        for x in 0..found.len() {
            for y in (x + 1)..found.len() {
                let occ_x = [found[x].a, found[x].b];
                let occ_y = [found[y].a, found[y].b];
                for &ox in &occ_x {
                    for &oy in &occ_y {
                        assert!(ox.abs_diff(oy) >= 30, "overlapping occurrences");
                    }
                }
            }
        }
    }

    #[test]
    fn profile_matches_bruteforce_on_small_input() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 64, |i| {
            ((i as f64) * 0.37).sin() + ((i as f64) * 0.11).cos()
        });
        let m = 8;
        let mp = matrix_profile(&s, m).unwrap();
        let n_sub = s.len() - m + 1;
        for i in 0..n_sub {
            let mut best = f64::INFINITY;
            for j in 0..n_sub {
                if i.abs_diff(j) < m / 2 {
                    continue;
                }
                let d = verify_distance(&s, i, j, m).unwrap();
                if d < best {
                    best = d;
                }
            }
            assert!(
                (best - mp.profile[i]).abs() < 1e-6,
                "profile mismatch at {i}: brute {best} vs stomp {}",
                mp.profile[i]
            );
        }
    }
}
