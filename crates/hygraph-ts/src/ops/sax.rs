//! Symbolic Aggregate approXimation (SAX) — the discretisation behind
//! sequence pattern mining (Table 2, row PM).
//!
//! SAX reduces a series to a short word over a small alphabet: the series
//! is z-normalised, piecewise-aggregated (PAA) into `word_len` frames,
//! and each frame mean is mapped to a symbol via Gaussian breakpoints.
//! Frequent-word counting over sliding windows yields frequent temporal
//! patterns, which the hybrid PM operator joins with frequent subgraphs.

use crate::ops::stats;
use crate::series::TimeSeries;
use hygraph_types::{HyGraphError, Result};
use std::collections::HashMap;

/// Gaussian breakpoints for alphabet sizes 2..=8 (standard SAX tables).
/// Out-of-range sizes are an error, never a panic — these parameters
/// arrive from untrusted callers (e.g. over the serving layer).
fn breakpoints(alphabet: usize) -> Result<&'static [f64]> {
    Ok(match alphabet {
        2 => &[0.0],
        3 => &[-0.43, 0.43],
        4 => &[-0.67, 0.0, 0.67],
        5 => &[-0.84, -0.25, 0.25, 0.84],
        6 => &[-0.97, -0.43, 0.0, 0.43, 0.97],
        7 => &[-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
        8 => &[-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
        _ => {
            return Err(HyGraphError::invalid(format!(
                "SAX alphabet size must be in 2..=8, got {alphabet}"
            )))
        }
    })
}

/// Piecewise Aggregate Approximation: mean of each of `frames` equal
/// slices of `xs` (last frame absorbs the remainder).
pub fn paa(xs: &[f64], frames: usize) -> Vec<f64> {
    assert!(frames > 0, "frames must be positive");
    if xs.is_empty() {
        return Vec::new();
    }
    let frames = frames.min(xs.len());
    let n = xs.len() as f64;
    let w = n / frames as f64;
    (0..frames)
        .map(|f| {
            let lo = (f as f64 * w).round() as usize;
            let hi = (((f + 1) as f64 * w).round() as usize)
                .min(xs.len())
                .max(lo + 1);
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// SAX word of a value slice: z-normalise, PAA, symbolise.
/// Symbols are lowercase letters starting at `'a'`. Errors on an
/// alphabet outside 2..=8 or a zero word length.
pub fn sax_word(xs: &[f64], word_len: usize, alphabet: usize) -> Result<String> {
    let bps = breakpoints(alphabet)?;
    if word_len == 0 {
        return Err(HyGraphError::invalid("SAX word length must be positive"));
    }
    let mut z = xs.to_vec();
    stats::znormalize(&mut z);
    Ok(paa(&z, word_len)
        .into_iter()
        .map(|v| {
            let idx = bps.partition_point(|&b| b <= v);
            (b'a' + idx as u8) as char
        })
        .collect())
}

/// Slides a window of `window` points over the series and emits the SAX
/// word of each window, with *numerosity reduction*: consecutive
/// identical words are collapsed to one occurrence (standard in SAX
/// mining to avoid trivially repeated words).
pub fn sax_windows(
    s: &TimeSeries,
    window: usize,
    word_len: usize,
    alphabet: usize,
) -> Result<Vec<(usize, String)>> {
    // validate parameters up front so an empty result never masks them
    breakpoints(alphabet)?;
    let values = s.values();
    if window == 0 || values.len() < window {
        return Ok(Vec::new());
    }
    let mut out: Vec<(usize, String)> = Vec::new();
    for off in 0..=(values.len() - window) {
        let w = sax_word(&values[off..off + window], word_len, alphabet)?;
        if out.last().map(|(_, prev)| prev.as_str()) != Some(w.as_str()) {
            out.push((off, w));
        }
    }
    Ok(out)
}

/// Counts word frequencies over sliding windows and returns the words
/// occurring at least `min_support` times, most frequent first.
pub fn frequent_words(
    s: &TimeSeries,
    window: usize,
    word_len: usize,
    alphabet: usize,
    min_support: usize,
) -> Result<Vec<(String, usize)>> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for (_, w) in sax_windows(s, window, word_len, alphabet)? {
        *counts.entry(w).or_insert(0) += 1;
    }
    let mut out: Vec<(String, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(out)
}

/// MINDIST lower bound between two SAX words of equal length (Lin et al.):
/// zero for adjacent symbols, breakpoint gap otherwise, scaled by the
/// original window length `n`. `None` for mismatched/empty words, an
/// out-of-range alphabet, or symbols outside it.
pub fn mindist(a: &str, b: &str, alphabet: usize, n: usize) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    let bps = breakpoints(alphabet).ok()?;
    let sym = |c: char| (c as u8).wrapping_sub(b'a') as usize;
    let w = a.len() as f64;
    let mut acc = 0.0;
    for (ca, cb) in a.chars().zip(b.chars()) {
        let (i, j) = (sym(ca), sym(cb));
        if i >= alphabet || j >= alphabet {
            return None;
        }
        if i.abs_diff(j) > 1 {
            let hi = i.max(j);
            let lo = i.min(j);
            let gap = bps[hi - 1] - bps[lo];
            acc += gap * gap;
        }
    }
    Some(((n as f64) / w).sqrt() * acc.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Duration, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn paa_means() {
        let xs = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert_eq!(paa(&xs, 3), vec![1.0, 2.0, 3.0]);
        assert_eq!(paa(&xs, 1), vec![2.0]);
        assert!(paa(&[], 3).is_empty());
        // more frames than points clamps to one point per frame
        assert_eq!(paa(&[1.0, 2.0], 5), vec![1.0, 2.0]);
    }

    #[test]
    fn sax_word_shape() {
        // rising ramp: symbols must be non-decreasing
        let xs: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let w = sax_word(&xs, 4, 4).unwrap();
        assert_eq!(w.len(), 4);
        let bytes = w.as_bytes();
        assert!(
            bytes.windows(2).all(|p| p[0] <= p[1]),
            "ramp word {w} not sorted"
        );
        assert_eq!(bytes[0], b'a');
        assert_eq!(bytes[3], b'd');
    }

    #[test]
    fn sax_constant_is_middle_symbols() {
        let xs = vec![5.0; 16];
        let w = sax_word(&xs, 4, 4).unwrap();
        // znormalize maps constants to 0.0; 0.0 falls just above the middle breakpoint
        assert!(w.chars().all(|c| c == 'c'), "got {w}");
    }

    #[test]
    fn numerosity_reduction() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 100, |i| {
            ((i as f64) * 0.2).sin()
        });
        let wins = sax_windows(&s, 20, 4, 4).unwrap();
        for p in wins.windows(2) {
            assert_ne!(p[0].1, p[1].1, "consecutive duplicate word survived");
        }
    }

    #[test]
    fn frequent_words_on_periodic_signal() {
        // periodic signal: the same few words recur
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 400, |i| {
            ((i % 40) as f64 / 40.0 * std::f64::consts::TAU).sin()
        });
        let freq = frequent_words(&s, 40, 4, 4, 2).unwrap();
        assert!(!freq.is_empty());
        assert!(freq[0].1 >= 2);
        // sorted descending by count
        for w in freq.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn mindist_properties() {
        // identical words have distance 0
        assert_eq!(mindist("abca", "abca", 4, 32), Some(0.0));
        // adjacent symbols contribute 0
        assert_eq!(mindist("ab", "ba", 4, 32), Some(0.0));
        // distant symbols contribute
        let d = mindist("aa", "dd", 4, 32).unwrap();
        assert!(d > 0.0);
        // invalid inputs
        assert_eq!(mindist("abc", "ab", 4, 32), None);
        assert_eq!(mindist("", "", 4, 32), None);
        assert_eq!(mindist("az", "aa", 4, 32), None, "symbol outside alphabet");
    }

    #[test]
    fn out_of_range_parameters_error_not_panic() {
        // regression: these panicked before the serving layer existed;
        // a server must never be killed by client-supplied parameters
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 32, |i| i as f64);
        for bad in [0usize, 1, 9, 100] {
            assert!(sax_word(&[1.0, 2.0], 2, bad).is_err(), "alphabet {bad}");
            assert!(sax_windows(&s, 8, 4, bad).is_err(), "alphabet {bad}");
            assert!(frequent_words(&s, 8, 4, bad, 1).is_err(), "alphabet {bad}");
            assert_eq!(mindist("ab", "ba", bad, 32), None, "alphabet {bad}");
        }
        assert!(sax_word(&[1.0, 2.0], 0, 4).is_err(), "zero word length");
        match sax_word(&[1.0, 2.0], 2, 9) {
            Err(hygraph_types::HyGraphError::InvalidArgument(m)) => {
                assert!(m.contains("alphabet"), "got {m}")
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }

    #[test]
    fn window_longer_than_series() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 5, |i| i as f64);
        assert!(sax_windows(&s, 10, 4, 4).unwrap().is_empty());
        assert!(frequent_words(&s, 10, 4, 4, 1).unwrap().is_empty());
    }
}
