//! Subsequence matching (Table 2, rows Q1 and E — time-series side).
//!
//! Pairs with subgraph matching in the hybrid Q1 operator: "match
//! specific temporal patterns with corresponding structural patterns".
//!
//! * **sliding z-normalised Euclidean distance** — fast whole-matching of
//!   a short query against every offset of a long series;
//! * **DTW** with a Sakoe-Chiba band — elastic matching tolerant to
//!   local time warping (UCR-suite style, without the pruning cascade).

use crate::ops::stats;
use crate::series::TimeSeries;
use hygraph_types::Timestamp;

/// One subsequence match.
#[derive(Clone, Debug, PartialEq)]
pub struct Match {
    /// Start offset of the match in the haystack.
    pub offset: usize,
    /// Timestamp of the first matched observation.
    pub time: Timestamp,
    /// Distance (smaller = better).
    pub distance: f64,
}

/// Z-normalised Euclidean distance between `query` and the window of the
/// same length starting at each offset of `haystack`. Returns all offsets
/// with distance ≤ `max_dist`, sorted by distance.
pub fn matches(haystack: &TimeSeries, query: &[f64], max_dist: f64) -> Vec<Match> {
    let m = query.len();
    let n = haystack.len();
    if m == 0 || n < m {
        return Vec::new();
    }
    let mut q = query.to_vec();
    stats::znormalize(&mut q);

    let values = haystack.values();
    let times = haystack.times();
    let mut out = Vec::new();
    let mut window = vec![0.0f64; m];
    for off in 0..=(n - m) {
        window.copy_from_slice(&values[off..off + m]);
        stats::znormalize(&mut window);
        let d2: f64 = window.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
        let d = d2.sqrt();
        if d <= max_dist {
            out.push(Match {
                offset: off,
                time: times[off],
                distance: d,
            });
        }
    }
    out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    out
}

/// The best (smallest-distance) match of `query` in `haystack` under
/// z-normalised Euclidean distance, if the haystack is long enough.
pub fn best_match(haystack: &TimeSeries, query: &[f64]) -> Option<Match> {
    matches(haystack, query, f64::INFINITY).into_iter().next()
}

/// Non-overlapping top-k matches: greedily picks the best match, then
/// excludes windows overlapping already-selected ones.
pub fn top_k_matches(haystack: &TimeSeries, query: &[f64], k: usize) -> Vec<Match> {
    let all = matches(haystack, query, f64::INFINITY);
    let m = query.len();
    let mut chosen: Vec<Match> = Vec::with_capacity(k);
    for cand in all {
        if chosen.len() == k {
            break;
        }
        let overlaps = chosen
            .iter()
            .any(|c| cand.offset < c.offset + m && c.offset < cand.offset + m);
        if !overlaps {
            chosen.push(cand);
        }
    }
    chosen
}

/// Dynamic time warping distance with a Sakoe-Chiba band of half-width
/// `band` (in samples). `band >= max(len_a, len_b)` gives unconstrained
/// DTW. Returns `None` when either input is empty.
pub fn dtw(a: &[f64], b: &[f64], band: usize) -> Option<f64> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return None;
    }
    // band must at least cover the diagonal slope difference
    let band = band.max(n.abs_diff(m));
    let inf = f64::INFINITY;
    // rolling two-row DP over the cost matrix
    let mut prev = vec![inf; m + 1];
    let mut cur = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur[0] = inf;
        let centre = i * m / n; // diagonal projection
        let lo = centre.saturating_sub(band).max(1);
        let hi = (centre + band).min(m);
        // cells outside [lo, hi] stay infinite
        for x in cur.iter_mut().take(lo).skip(1) {
            *x = inf;
        }
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
            let best = prev[j].min(prev[j - 1]).min(cur[j - 1]);
            cur[j] = if best.is_finite() { cost + best } else { inf };
        }
        for x in cur.iter_mut().take(m + 1).skip(hi + 1) {
            *x = inf;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d2 = prev[m];
    d2.is_finite().then(|| d2.sqrt())
}

/// Z-normalised DTW distance between two slices.
pub fn dtw_znorm(a: &[f64], b: &[f64], band: usize) -> Option<f64> {
    let mut za = a.to_vec();
    let mut zb = b.to_vec();
    stats::znormalize(&mut za);
    stats::znormalize(&mut zb);
    dtw(&za, &zb, band)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Duration;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Sine haystack with an embedded triangular bump at offset 300.
    fn haystack() -> TimeSeries {
        TimeSeries::generate(ts(0), Duration::from_millis(1), 600, |i| {
            let base = ((i as f64) * 0.05).sin() * 0.2;
            if (300..320).contains(&i) {
                let x = (i - 300) as f64;
                base + if x < 10.0 { x } else { 20.0 - x }
            } else {
                base
            }
        })
    }

    fn triangle(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                if x < n as f64 / 2.0 {
                    x
                } else {
                    n as f64 - x
                }
            })
            .collect()
    }

    #[test]
    fn best_match_finds_embedded_shape() {
        let h = haystack();
        let q = triangle(20);
        let m = best_match(&h, &q).unwrap();
        assert!(
            (298..=302).contains(&m.offset),
            "expected match near 300, got {}",
            m.offset
        );
        assert!(m.distance < 1.0);
    }

    #[test]
    fn matches_threshold_filters() {
        let h = haystack();
        let q = triangle(20);
        let strict = matches(&h, &q, 0.5);
        let loose = matches(&h, &q, 5.0);
        assert!(strict.len() <= loose.len());
        assert!(!loose.is_empty());
        // sorted by distance
        for w in loose.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn top_k_non_overlapping() {
        let h = haystack();
        let q = triangle(20);
        let top = top_k_matches(&h, &q, 3);
        assert_eq!(top.len(), 3);
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                let a = &top[i];
                let b = &top[j];
                assert!(
                    a.offset + q.len() <= b.offset || b.offset + q.len() <= a.offset,
                    "matches overlap"
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let h = haystack();
        assert!(matches(&h, &[], 1.0).is_empty());
        let short = TimeSeries::from_pairs([(ts(0), 1.0)]);
        assert!(matches(&short, &[1.0, 2.0], 1.0).is_empty());
        assert_eq!(best_match(&TimeSeries::new(), &[1.0]), None);
    }

    #[test]
    fn dtw_identical_is_zero() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw(&a, &a, 10), Some(0.0));
    }

    #[test]
    fn dtw_tolerates_warping_euclidean_does_not() {
        // same shape, one stretched: DTW small, Euclidean large
        let a: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.3).sin()).collect();
        let b: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.3 + 0.9).sin()).collect(); // phase shift
        let d_dtw = dtw(&a, &b, 10).unwrap();
        let d_euc: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(d_dtw < d_euc, "dtw {d_dtw} should beat euclidean {d_euc}");
    }

    #[test]
    fn dtw_band_zero_is_diagonal_distance() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 1.0, 2.0];
        // band 0 on equal lengths forces the diagonal
        assert_eq!(dtw(&a, &b, 0), Some(0.0));
        let c = [1.0, 2.0, 3.0];
        let d = dtw(&a, &c, 0).unwrap();
        assert!((d - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dtw_unequal_lengths() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 3.0];
        let d = dtw(&a, &b, 4).unwrap();
        assert!(d >= 0.0);
        assert_eq!(dtw(&[], &b, 4), None);
        assert_eq!(dtw(&a, &[], 4), None);
    }

    #[test]
    fn dtw_znorm_scale_invariant() {
        let a: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4).sin()).collect();
        let scaled: Vec<f64> = a.iter().map(|x| x * 100.0 + 7.0).collect();
        let d = dtw_znorm(&a, &scaled, 30).unwrap();
        assert!(d < 1e-9, "z-normalised DTW ignores scale/offset, got {d}");
    }
}
