//! Basic descriptive statistics shared by the other operators.

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance; `None` for empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for empty input.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Sample variance (n-1 denominator); `None` for fewer than 2 points.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Covariance of two equally-long slices (population); `None` on length
/// mismatch or empty input.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    Some(
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / xs.len() as f64,
    )
}

/// Median via partial sort (copies the input); `None` for empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]`; `None` for empty input.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = rank - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// Z-normalises a slice in place: zero mean, unit variance. A constant
/// slice becomes all zeros rather than NaN.
pub fn znormalize(xs: &mut [f64]) {
    let Some(m) = mean(xs) else { return };
    let sd = stddev(xs).unwrap_or(0.0);
    if sd <= f64::EPSILON {
        xs.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    xs.iter_mut().for_each(|x| *x = (*x - m) / sd);
}

/// Lag-`k` autocorrelation; `None` when the series is too short or
/// constant.
pub fn autocorrelation(xs: &[f64], k: usize) -> Option<f64> {
    if xs.len() <= k || k == 0 {
        return None;
    }
    let m = mean(xs)?;
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= f64::EPSILON {
        return None;
    }
    let num: f64 = (0..xs.len() - k)
        .map(|i| (xs[i] - m) * (xs[i + k] - m))
        .sum();
    Some(num / denom)
}

/// Ordinary-least-squares slope and intercept of `ys` against `0..n`;
/// `None` for fewer than 2 points.
pub fn linear_fit(ys: &[f64]) -> Option<(f64, f64)> {
    let n = ys.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = (nf - 1.0) / 2.0;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, &y) in ys.iter().enumerate() {
        let dx = i as f64 - mx;
        sxy += dx * (y - my);
        sxx += dx * dx;
    }
    if sxx <= f64::EPSILON {
        return None;
    }
    let slope = sxy / sxx;
    Some((slope, my - slope * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(stddev(&xs), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn sample_variance_needs_two() {
        assert_eq!(sample_variance(&[1.0]), None);
        let v = sample_variance(&[1.0, 3.0]).unwrap();
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_cases() {
        assert_eq!(covariance(&[1.0, 2.0], &[1.0]), None);
        let c = covariance(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        assert!((c - 4.0 / 3.0).abs() < 1e-12);
        // anti-correlated
        let c = covariance(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!(c < 0.0);
    }

    #[test]
    fn median_and_percentiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.0), Some(1.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 100.0), Some(4.0));
        assert_eq!(percentile(&[], 50.0), None);
        // out-of-range p clamps
        assert_eq!(percentile(&[1.0, 2.0], 150.0), Some(2.0));
    }

    #[test]
    fn znormalize_constant_becomes_zero() {
        let mut xs = [5.0, 5.0, 5.0];
        znormalize(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 0.0]);
        let mut ys = [1.0, 2.0, 3.0];
        znormalize(&mut ys);
        assert!((mean(&ys).unwrap()).abs() < 1e-12);
        assert!((stddev(&ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_periodic_signal() {
        // period-4 square-ish wave has high lag-4 autocorrelation
        let xs: Vec<f64> = (0..64)
            .map(|i| if i % 4 < 2 { 1.0 } else { -1.0 })
            .collect();
        let r4 = autocorrelation(&xs, 4).unwrap();
        let r2 = autocorrelation(&xs, 2).unwrap();
        assert!(r4 > 0.8, "lag-4 should be strongly positive, got {r4}");
        assert!(r2 < -0.8, "lag-2 should be strongly negative, got {r2}");
        assert_eq!(autocorrelation(&xs, 0), None);
        assert_eq!(autocorrelation(&[1.0, 1.0], 1), None, "constant");
    }

    #[test]
    fn linear_fit_recovers_line() {
        let ys: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 7.0).collect();
        let (slope, intercept) = linear_fit(&ys).unwrap();
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
        assert_eq!(linear_fit(&[1.0]), None);
    }
}
