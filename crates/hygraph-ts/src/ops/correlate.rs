//! Correlation measures (Table 2, row Q3 — time-series side).
//!
//! Pairs with graph reachability in the hybrid Q3 operator: "measure the
//! correlation between time-series data of vertices to enhance
//! reachability analysis".

use crate::ops::resample::{align, FillMethod};
use crate::ops::stats;
use crate::series::TimeSeries;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::Duration;
use rayon::prelude::*;

/// Pearson correlation of two equally-long slices; `None` when either is
/// constant, empty or lengths mismatch.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let cov = stats::covariance(xs, ys)?;
    let sx = stats::stddev(xs)?;
    let sy = stats::stddev(ys)?;
    if sx <= f64::EPSILON || sy <= f64::EPSILON {
        return None;
    }
    Some((cov / (sx * sy)).clamp(-1.0, 1.0))
}

/// Spearman rank correlation (Pearson over average ranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (ties share the mean of their rank positions), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation of two series after aligning them to a common
/// `step` grid over their overlapping span.
pub fn series_correlation(a: &TimeSeries, b: &TimeSeries, step: Duration) -> Option<f64> {
    let (ra, rb) = align(a, b, step, FillMethod::Linear)?;
    pearson(ra.values(), rb.values())
}

/// Lagged cross-correlation: Pearson of `xs[..n-lag]` against `ys[lag..]`
/// for each lag in `0..=max_lag`. Returns `(lag, r)` pairs for lags with
/// defined correlation.
pub fn cross_correlation(xs: &[f64], ys: &[f64], max_lag: usize) -> Vec<(usize, f64)> {
    let n = xs.len().min(ys.len());
    let mut out = Vec::new();
    for lag in 0..=max_lag.min(n.saturating_sub(2)) {
        if let Some(r) = pearson(&xs[..n - lag], &ys[lag..n]) {
            out.push((lag, r));
        }
    }
    out
}

/// The lag in `0..=max_lag` maximising cross-correlation, with its value.
pub fn best_lag(xs: &[f64], ys: &[f64], max_lag: usize) -> Option<(usize, f64)> {
    cross_correlation(xs, ys, max_lag)
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Rolling Pearson correlation over windows of `window` points, producing
/// one value per complete window (timestamped at the window's last point).
/// Inputs must share a time axis (use [`align`] first if not).
pub fn rolling_correlation(a: &TimeSeries, b: &TimeSeries, window: usize) -> TimeSeries {
    assert!(window >= 2, "window must hold at least two points");
    let n = a.len().min(b.len());
    let mut out = TimeSeries::new();
    if n < window {
        return out;
    }
    for end in window..=n {
        let xs = &a.values()[end - window..end];
        let ys = &b.values()[end - window..end];
        if let Some(r) = pearson(xs, ys) {
            out.upsert(a.times()[end - 1], r);
        }
    }
    out
}

/// Pairwise correlation matrix of many aligned value slices.
/// Undefined entries (constant series) are 0; the diagonal is 1.
/// Execution mode decided from the pair count (see
/// [`correlation_matrix_mode`]).
pub fn correlation_matrix(columns: &[&[f64]]) -> Vec<Vec<f64>> {
    correlation_matrix_mode(columns, ExecMode::Auto)
}

/// [`correlation_matrix`] with an explicit execution mode. The
/// `k·(k-1)/2` upper-triangle entries are independent pure computations,
/// so fanning them out over threads produces the exact same matrix as
/// the sequential double loop.
pub fn correlation_matrix_mode(columns: &[&[f64]], mode: ExecMode) -> Vec<Vec<f64>> {
    let k = columns.len();
    let pairs: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
        .collect();
    let cell = |&(i, j): &(usize, usize)| pearson(columns[i], columns[j]).unwrap_or(0.0);
    let values: Vec<f64> = if should_parallelize(mode, pairs.len()) {
        pairs.par_iter().map(cell).collect()
    } else {
        pairs.iter().map(cell).collect()
    };
    let mut m = vec![vec![0.0; k]; k];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for (&(i, j), r) in pairs.iter().zip(values) {
        m[i][j] = r;
        m[j][i] = r;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Timestamp;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn pearson_perfect() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None, "constant input");
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None, "length mismatch");
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0]; // cubic: nonlinear but monotone
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let p = pearson(&xs, &ys).unwrap();
        assert!(p < 1.0, "pearson is below 1 for nonlinear data");
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn cross_correlation_finds_shift() {
        // ys is xs delayed by 3 samples
        let base: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.3).sin()).collect();
        let xs = &base[3..];
        let ys = &base[..base.len() - 3];
        // ys[t] = xs[t-3], so xs correlates with ys shifted forward
        let (lag, r) = best_lag(xs, ys, 10).unwrap();
        assert_eq!(lag, 3);
        assert!(r > 0.99);
    }

    #[test]
    fn series_correlation_aligns_axes() {
        let a = TimeSeries::generate(ts(0), Duration::from_millis(10), 50, |i| i as f64);
        // same trend, offset sampling grid
        let b = TimeSeries::generate(ts(5), Duration::from_millis(10), 50, |i| {
            2.0 * i as f64 + 1.0
        });
        let r = series_correlation(&a, &b, Duration::from_millis(10)).unwrap();
        assert!(r > 0.999, "linear trends correlate, got {r}");
    }

    #[test]
    fn rolling_correlation_regime_change() {
        // first half correlated, second half anti-correlated
        let n = 40;
        let a = TimeSeries::generate(ts(0), Duration::from_millis(1), n, |i| {
            (i as f64 * 0.9).sin()
        });
        let b = TimeSeries::generate(ts(0), Duration::from_millis(1), n, |i| {
            let v = (i as f64 * 0.9).sin();
            if i < n / 2 {
                v
            } else {
                -v
            }
        });
        let r = rolling_correlation(&a, &b, 8);
        let first = r.values()[0];
        let last = *r.values().last().unwrap();
        assert!(first > 0.9);
        assert!(last < -0.9);
    }

    #[test]
    fn rolling_correlation_short_input() {
        let a = TimeSeries::generate(ts(0), Duration::from_millis(1), 3, |i| i as f64);
        let r = rolling_correlation(&a, &a, 5);
        assert!(r.is_empty());
    }

    #[test]
    fn matrix_parallel_matches_sequential_bitwise() {
        // 24 pseudo-random columns -> 276 pairs, enough to span chunks
        let cols: Vec<Vec<f64>> = (0..24)
            .map(|c| {
                (0..64)
                    .map(|i| ((i * 7 + c * 13) as f64 * 0.37).sin() + c as f64 * 0.01)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let seq = correlation_matrix_mode(&refs, ExecMode::Sequential);
        let par = correlation_matrix_mode(&refs, ExecMode::Parallel);
        for (row_s, row_p) in seq.iter().zip(&par) {
            for (a, b) in row_s.iter().zip(row_p) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn matrix_symmetry() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        let c = [5.0, 5.0, 5.0]; // constant => undefined => 0
        let m = correlation_matrix(&[&a, &b, &c]);
        assert_eq!(m[0][0], 1.0);
        assert!((m[0][1] + 1.0).abs() < 1e-12);
        assert_eq!(m[0][1], m[1][0]);
        assert_eq!(m[0][2], 0.0);
        assert_eq!(m[2][2], 1.0);
    }
}
