//! Outlier and anomaly detection (Table 2, row D — time-series side;
//! Listing 2 of the paper).
//!
//! Three detectors, from global to local:
//! * **z-score** — global deviation from the series mean;
//! * **IQR** — robust quartile fences (Tukey);
//! * **sliding-window distance** — the paper's Listing-2 method: a point
//!   is anomalous when it deviates strongly from its recent local window
//!   (distance-based local outlier detection).
//!
//! All detectors return [`Anomaly`] records carrying a score, so the
//! hybrid detection operator can re-rank them with community context.

use crate::ops::stats;
use crate::series::TimeSeries;
use hygraph_types::{Duration, Timestamp};

/// One detected anomaly.
#[derive(Clone, Debug, PartialEq)]
pub struct Anomaly {
    /// Position in the input series.
    pub index: usize,
    /// Timestamp of the anomalous observation.
    pub time: Timestamp,
    /// The observed value.
    pub value: f64,
    /// Detector-specific severity (larger = more anomalous; comparable
    /// within one detector run only).
    pub score: f64,
}

/// Global z-score detector: flags `|x - mean| / stddev > threshold`.
/// A constant series yields no anomalies.
pub fn zscore(s: &TimeSeries, threshold: f64) -> Vec<Anomaly> {
    let Some(m) = stats::mean(s.values()) else {
        return Vec::new();
    };
    let sd = stats::stddev(s.values()).unwrap_or(0.0);
    if sd <= f64::EPSILON {
        return Vec::new();
    }
    s.iter()
        .enumerate()
        .filter_map(|(i, (t, v))| {
            let z = (v - m).abs() / sd;
            (z > threshold).then_some(Anomaly {
                index: i,
                time: t,
                value: v,
                score: z,
            })
        })
        .collect()
}

/// Tukey IQR fences: flags values outside
/// `[q1 - k·IQR, q3 + k·IQR]` (classic `k = 1.5`).
pub fn iqr(s: &TimeSeries, k: f64) -> Vec<Anomaly> {
    let vals = s.values();
    if vals.len() < 4 {
        return Vec::new();
    }
    let q1 = stats::percentile(vals, 25.0).expect("non-empty");
    let q3 = stats::percentile(vals, 75.0).expect("non-empty");
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    let denom = if iqr <= f64::EPSILON { 1.0 } else { iqr };
    s.iter()
        .enumerate()
        .filter_map(|(i, (t, v))| {
            let out = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                return None;
            };
            Some(Anomaly {
                index: i,
                time: t,
                value: v,
                score: out / denom,
            })
        })
        .collect()
}

/// Sliding-window distance detector (the Listing-2 method): for each
/// point, compares it against the mean/stddev of the *preceding* window
/// `[t - width, t)`; flags local z-scores above `threshold`.
///
/// Points whose preceding window holds fewer than `min_points`
/// observations are skipped (cold start).
pub fn sliding_window(
    s: &TimeSeries,
    width: Duration,
    threshold: f64,
    min_points: usize,
) -> Vec<Anomaly> {
    let times = s.times();
    let values = s.values();
    let mut out = Vec::new();
    let mut lo = 0usize;
    // incremental sums over the window [lo, i)
    let mut sum = 0.0f64;
    let mut sumsq = 0.0f64;
    for i in 0..s.len() {
        let win_start = times[i] - width;
        while lo < i && times[lo] < win_start {
            sum -= values[lo];
            sumsq -= values[lo] * values[lo];
            lo += 1;
        }
        let n = i - lo;
        if n >= min_points.max(2) {
            let nf = n as f64;
            let mean = sum / nf;
            let var = (sumsq / nf - mean * mean).max(0.0);
            let sd = var.sqrt();
            if sd > f64::EPSILON {
                let z = (values[i] - mean).abs() / sd;
                if z > threshold {
                    out.push(Anomaly {
                        index: i,
                        time: times[i],
                        value: values[i],
                        score: z,
                    });
                }
            }
        }
        sum += values[i];
        sumsq += values[i] * values[i];
    }
    out
}

/// Convenience: per-point anomaly *scores* (local z-scores, 0 when
/// undefined) on the same time axis — useful as a feature column.
pub fn local_scores(s: &TimeSeries, width: Duration, min_points: usize) -> TimeSeries {
    let anomalies = sliding_window(s, width, 0.0, min_points);
    let mut scores = vec![0.0; s.len()];
    for a in anomalies {
        scores[a.index] = a.score;
    }
    TimeSeries::from_pairs(s.times().iter().copied().zip(scores))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Mostly-flat signal with spikes at indices 50 and 120.
    fn spiky() -> TimeSeries {
        TimeSeries::generate(ts(0), Duration::from_millis(10), 200, |i| match i {
            50 => 50.0,
            120 => -40.0,
            _ => ((i as f64) * 0.7).sin(), // small oscillation
        })
    }

    #[test]
    fn zscore_finds_spikes() {
        let s = spiky();
        let found = zscore(&s, 3.0);
        let idxs: Vec<usize> = found.iter().map(|a| a.index).collect();
        assert_eq!(idxs, vec![50, 120]);
        assert!(
            found[0].score > found[1].score,
            "bigger spike scores higher"
        );
    }

    #[test]
    fn zscore_constant_series_clean() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 50, |_| 7.0);
        assert!(zscore(&s, 1.0).is_empty());
        assert!(zscore(&TimeSeries::new(), 1.0).is_empty());
    }

    #[test]
    fn iqr_finds_spikes() {
        let s = spiky();
        let found = iqr(&s, 1.5);
        let idxs: Vec<usize> = found.iter().map(|a| a.index).collect();
        assert!(idxs.contains(&50));
        assert!(idxs.contains(&120));
        assert!(found.iter().all(|a| a.score > 0.0));
    }

    #[test]
    fn iqr_needs_four_points() {
        let s = TimeSeries::from_pairs([(ts(0), 1.0), (ts(1), 100.0), (ts(2), 1.0)]);
        assert!(iqr(&s, 1.5).is_empty());
    }

    #[test]
    fn sliding_window_detects_local_burst() {
        // gentle trend with a sudden local burst the global mean would miss
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 300, |i| {
            let base = i as f64 * 0.5; // strong trend
            if i == 200 {
                base + 30.0
            } else {
                base
            }
        });
        // global zscore misses it: the trend dominates the variance
        assert!(zscore(&s, 3.0).is_empty());
        // local detector catches it
        let found = sliding_window(&s, Duration::from_millis(200), 5.0, 5);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].index, 200);
    }

    #[test]
    fn sliding_window_cold_start_skipped() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 10, |i| {
            if i == 1 {
                1000.0
            } else {
                0.0
            }
        });
        // window of 30ms holds < min_points at i=1
        let found = sliding_window(&s, Duration::from_millis(30), 2.0, 3);
        assert!(found.iter().all(|a| a.index != 1));
    }

    #[test]
    fn local_scores_axis_matches() {
        let s = spiky();
        let scores = local_scores(&s, Duration::from_millis(300), 5);
        assert_eq!(scores.len(), s.len());
        assert_eq!(scores.times(), s.times());
        assert!(scores.values()[50] > 3.0);
    }

    #[test]
    fn listing2_expenditure_example() {
        // The paper's Listing 2: User 1 has several significant peaks in a
        // short interval [t5, t6); users with steady spending are clean.
        let user1 = TimeSeries::generate(ts(0), Duration::from_hours(1), 48, |i| {
            if (20..24).contains(&i) {
                950.0 + (i - 20) as f64 * 30.0 // fraud burst
            } else {
                40.0 + (i % 5) as f64
            }
        });
        let user2 = TimeSeries::generate(ts(0), Duration::from_hours(1), 48, |i| {
            42.0 + (i % 7) as f64
        });
        let threshold = 3.0;
        assert!(!zscore(&user1, threshold).is_empty(), "user 1 flagged");
        assert!(zscore(&user2, threshold).is_empty(), "user 2 clean");
    }
}
