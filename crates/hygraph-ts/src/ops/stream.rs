//! Incremental (streaming) operators.
//!
//! The paper positions the hybrid Q2 operator as useful "for summarising
//! high-frequency data, or even in streaming": these are the one-pass,
//! O(1)-per-observation counterparts of the batch operators, suitable
//! for the R3 ingest path. All accept in-order observations and emit
//! results as windows close.

use crate::ops::anomaly::Anomaly;
use crate::store::Summary;
use hygraph_types::{Duration, HyGraphError, Result, Timestamp};
use std::collections::VecDeque;

/// Streaming tumbling-window aggregator: feeds observations in time
/// order, emits one [`Summary`] per completed window.
#[derive(Debug)]
pub struct TumblingAggregator {
    bucket: Duration,
    current: Option<(Timestamp, Summary)>,
    last_t: Option<Timestamp>,
}

impl TumblingAggregator {
    /// Creates an aggregator with the given window width.
    pub fn new(bucket: Duration) -> Self {
        assert!(bucket.is_positive(), "bucket width must be positive");
        Self {
            bucket,
            current: None,
            last_t: None,
        }
    }

    /// Feeds one observation. Returns the completed window when `t`
    /// crosses a bucket boundary. Out-of-order input is rejected.
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<Option<(Timestamp, Summary)>> {
        if let Some(last) = self.last_t {
            if t < last {
                return Err(HyGraphError::OutOfOrder { at: t, last });
            }
        }
        self.last_t = Some(t);
        let key = t.truncate(self.bucket);
        match &mut self.current {
            Some((cur_key, acc)) if *cur_key == key => {
                acc.add(v);
                Ok(None)
            }
            Some(_) => {
                let done = self.current.take().expect("checked Some");
                let mut acc = Summary::new();
                acc.add(v);
                self.current = Some((key, acc));
                Ok(Some(done))
            }
            None => {
                let mut acc = Summary::new();
                acc.add(v);
                self.current = Some((key, acc));
                Ok(None)
            }
        }
    }

    /// Flushes the open window (end of stream).
    pub fn finish(&mut self) -> Option<(Timestamp, Summary)> {
        self.current.take()
    }
}

/// Streaming sliding-window statistics over a time-based window
/// `[t - width, t]`, maintained in O(1) amortised per observation.
#[derive(Debug)]
pub struct SlidingStats {
    width: Duration,
    buf: VecDeque<(Timestamp, f64)>,
    sum: f64,
    sumsq: f64,
}

impl SlidingStats {
    /// Creates sliding statistics with the given window width.
    pub fn new(width: Duration) -> Self {
        assert!(width.is_positive(), "window width must be positive");
        Self {
            width,
            buf: VecDeque::new(),
            sum: 0.0,
            sumsq: 0.0,
        }
    }

    /// Feeds one observation (in time order) and returns the window
    /// statistics *including* it.
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<WindowStats> {
        if let Some(&(last, _)) = self.buf.back() {
            if t < last {
                return Err(HyGraphError::OutOfOrder { at: t, last });
            }
        }
        self.evict(t - self.width);
        self.buf.push_back((t, v));
        self.sum += v;
        self.sumsq += v * v;
        Ok(self.stats())
    }

    /// Drops observations strictly before `cutoff`.
    pub fn evict(&mut self, cutoff: Timestamp) {
        while let Some(&(front_t, front_v)) = self.buf.front() {
            if front_t >= cutoff {
                break;
            }
            self.buf.pop_front();
            self.sum -= front_v;
            self.sumsq -= front_v * front_v;
        }
    }

    /// Current window statistics.
    pub fn stats(&self) -> WindowStats {
        let n = self.buf.len();
        let nf = n as f64;
        let mean = if n > 0 { self.sum / nf } else { 0.0 };
        let var = if n > 0 {
            (self.sumsq / nf - mean * mean).max(0.0)
        } else {
            0.0
        };
        WindowStats {
            count: n,
            mean,
            stddev: var.sqrt(),
        }
    }
}

/// Statistics of the current sliding window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStats {
    /// Observations in the window.
    pub count: usize,
    /// Window mean.
    pub mean: f64,
    /// Window population standard deviation.
    pub stddev: f64,
}

/// Streaming anomaly detector: flags observations deviating more than
/// `threshold` local z-scores from the *preceding* window — the
/// incremental form of `anomaly::sliding_window`.
#[derive(Debug)]
pub struct StreamingAnomalyDetector {
    stats: SlidingStats,
    threshold: f64,
    min_points: usize,
    index: usize,
}

impl StreamingAnomalyDetector {
    /// Creates a detector with window `width`, z-score `threshold`, and
    /// a minimum of `min_points` preceding observations before flagging.
    pub fn new(width: Duration, threshold: f64, min_points: usize) -> Self {
        Self {
            stats: SlidingStats::new(width),
            threshold,
            min_points: min_points.max(2),
            index: 0,
        }
    }

    /// Feeds one observation; returns an [`Anomaly`] when it deviates
    /// from its local context.
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<Option<Anomaly>> {
        // compare against the window [t - width, t) BEFORE this point:
        // evict by the new cutoff first, then read, then insert
        self.stats.evict(t - self.stats.width);
        let before = self.stats.stats();
        self.stats.push(t, v)?;
        let idx = self.index;
        self.index += 1;
        if before.count < self.min_points || before.stddev <= f64::EPSILON {
            return Ok(None);
        }
        let z = (v - before.mean).abs() / before.stddev;
        Ok((z > self.threshold).then_some(Anomaly {
            index: idx,
            time: t,
            value: v,
            score: z,
        }))
    }
}

/// Exponentially-weighted moving average (simple online smoother).
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, state: None }
    }

    /// Feeds one value; returns the smoothed value.
    pub fn push(&mut self, v: f64) -> f64 {
        let next = match self.state {
            Some(prev) => prev + self.alpha * (v - prev),
            None => v,
        };
        self.state = Some(next);
        next
    }

    /// The current smoothed value.
    pub fn value(&self) -> Option<f64> {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate;
    use crate::series::TimeSeries;
    use crate::store::AggKind;
    use hygraph_types::Interval;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn tumbling_stream_matches_batch() {
        let s = TimeSeries::generate(ts(3), Duration::from_millis(7), 100, |i| (i % 11) as f64);
        let bucket = Duration::from_millis(50);
        // streaming
        let mut agg = TumblingAggregator::new(bucket);
        let mut emitted = Vec::new();
        for (t, v) in s.iter() {
            if let Some(done) = agg.push(t, v).unwrap() {
                emitted.push(done);
            }
        }
        if let Some(done) = agg.finish() {
            emitted.push(done);
        }
        // batch
        let batch = aggregate::tumbling(&s, &Interval::ALL, bucket, AggKind::Mean);
        assert_eq!(emitted.len(), batch.len());
        for ((t_stream, summary), (t_batch, mean)) in emitted.iter().zip(batch.iter()) {
            assert_eq!(*t_stream, t_batch);
            assert!((summary.mean().unwrap() - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn tumbling_rejects_out_of_order() {
        let mut agg = TumblingAggregator::new(Duration::from_millis(10));
        agg.push(ts(100), 1.0).unwrap();
        assert!(matches!(
            agg.push(ts(50), 2.0),
            Err(HyGraphError::OutOfOrder { .. })
        ));
        // equal timestamps are allowed (same logical instant)
        assert!(agg.push(ts(100), 3.0).is_ok());
    }

    #[test]
    fn sliding_stats_match_batch_window() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(5), 50, |i| {
            ((i * 13) % 7) as f64
        });
        let width = Duration::from_millis(40);
        let mut sl = SlidingStats::new(width);
        for (t, v) in s.iter() {
            let got = sl.push(t, v).unwrap();
            let lo = t - width;
            let window: Vec<f64> = s
                .iter()
                .filter(|(u, _)| *u >= lo && *u <= t)
                .map(|(_, x)| x)
                .collect();
            let mean = window.iter().sum::<f64>() / window.len() as f64;
            assert_eq!(got.count, window.len());
            assert!((got.mean - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn streaming_detector_matches_batch_detector() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 300, |i| {
            let base = (i as f64 * 0.3).sin();
            if i == 200 {
                base + 50.0
            } else {
                base
            }
        });
        let width = Duration::from_millis(300);
        let batch = crate::ops::anomaly::sliding_window(&s, width, 5.0, 5);
        let mut det = StreamingAnomalyDetector::new(width, 5.0, 5);
        let mut streamed = Vec::new();
        for (t, v) in s.iter() {
            if let Some(a) = det.push(t, v).unwrap() {
                streamed.push(a);
            }
        }
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.time, b.time);
            assert!((a.score - b.score).abs() < 1e-9);
        }
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].index, 200);
    }

    #[test]
    fn ewma_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.push(10.0), 10.0);
        assert_eq!(e.push(0.0), 5.0);
        assert_eq!(e.push(0.0), 2.5);
        assert_eq!(e.value(), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }
}
