//! Time-series segmentation and changepoint detection (Table 2, row Q4 —
//! time-series side).
//!
//! Pairs with graph snapshot retrieval in the hybrid Q4 operator: "create
//! graph snapshots at significant time intervals identified through time
//! series segmentation".
//!
//! Two algorithms:
//! * **top-down segmentation** — recursively split at the point that
//!   minimises total squared error, until a segment budget or an error
//!   threshold is met (the classic piecewise-constant approximation).
//! * **PELT-style changepoint detection** — exact dynamic-programming
//!   minimisation of segmented cost with a per-changepoint penalty and
//!   pruning, for mean-shift detection.

use crate::series::TimeSeries;
use hygraph_types::{Interval, Timestamp};

/// A contiguous segment `[start_idx, end_idx)` with its mean and squared
/// error.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// First index of the segment (inclusive).
    pub start_idx: usize,
    /// One-past-last index (exclusive).
    pub end_idx: usize,
    /// Time interval covered (start of first point to just past last point).
    pub interval: Interval,
    /// Mean value in the segment.
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub sse: f64,
}

/// Prefix sums enabling O(1) segment cost queries.
struct Prefix {
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl Prefix {
    fn new(xs: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(xs.len() + 1);
        let mut sumsq = Vec::with_capacity(xs.len() + 1);
        sum.push(0.0);
        sumsq.push(0.0);
        for &x in xs {
            sum.push(sum.last().unwrap() + x);
            sumsq.push(sumsq.last().unwrap() + x * x);
        }
        Self { sum, sumsq }
    }

    /// Sum of squared errors of `[lo, hi)` around its own mean.
    fn sse(&self, lo: usize, hi: usize) -> f64 {
        let n = (hi - lo) as f64;
        if n == 0.0 {
            return 0.0;
        }
        let s = self.sum[hi] - self.sum[lo];
        let ss = self.sumsq[hi] - self.sumsq[lo];
        (ss - s * s / n).max(0.0)
    }

    fn mean(&self, lo: usize, hi: usize) -> f64 {
        let n = (hi - lo) as f64;
        if n == 0.0 {
            return 0.0;
        }
        (self.sum[hi] - self.sum[lo]) / n
    }
}

fn make_segment(s: &TimeSeries, p: &Prefix, lo: usize, hi: usize) -> Segment {
    let t0 = s.times()[lo];
    let t1 = s.times()[hi - 1];
    Segment {
        start_idx: lo,
        end_idx: hi,
        interval: Interval::new(t0, t1 + hygraph_types::Duration::from_millis(1)),
        mean: p.mean(lo, hi),
        sse: p.sse(lo, hi),
    }
}

/// Top-down segmentation into at most `max_segments` pieces, stopping
/// early when every segment's SSE is below `sse_threshold`.
pub fn topdown(s: &TimeSeries, max_segments: usize, sse_threshold: f64) -> Vec<Segment> {
    if s.is_empty() || max_segments == 0 {
        return Vec::new();
    }
    let p = Prefix::new(s.values());
    let mut segs: Vec<(usize, usize)> = vec![(0, s.len())];
    while segs.len() < max_segments {
        // pick the segment with the largest SSE above threshold
        let (worst_pos, worst_sse) = segs
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| (i, p.sse(lo, hi)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("segs non-empty");
        if worst_sse <= sse_threshold {
            break;
        }
        let (lo, hi) = segs[worst_pos];
        if hi - lo < 2 {
            break;
        }
        // best split point minimising combined SSE
        let mut best_k = lo + 1;
        let mut best_cost = f64::INFINITY;
        for k in (lo + 1)..hi {
            let cost = p.sse(lo, k) + p.sse(k, hi);
            if cost < best_cost {
                best_cost = cost;
                best_k = k;
            }
        }
        if best_cost >= worst_sse {
            break; // no split improves
        }
        segs[worst_pos] = (lo, best_k);
        segs.insert(worst_pos + 1, (best_k, hi));
    }
    segs.sort_unstable();
    segs.into_iter()
        .map(|(lo, hi)| make_segment(s, &p, lo, hi))
        .collect()
}

/// PELT-style exact changepoint detection for mean shifts.
///
/// Minimises `Σ SSE(segment) + penalty · #changepoints` by dynamic
/// programming with pruning. Returns the *indices* where new segments
/// begin (excluding 0). A reasonable default penalty is
/// `2 · var · ln(n)` (BIC-like).
pub fn pelt_changepoints(xs: &[f64], penalty: f64) -> Vec<usize> {
    let n = xs.len();
    if n < 2 {
        return Vec::new();
    }
    let p = Prefix::new(xs);
    // f[t] = minimal cost of segmenting xs[..t]
    let mut f = vec![f64::INFINITY; n + 1];
    f[0] = -penalty;
    let mut prev = vec![0usize; n + 1];
    let mut candidates: Vec<usize> = vec![0];
    for t in 1..=n {
        let mut best = f64::INFINITY;
        let mut best_s = 0;
        for &s in &candidates {
            let c = f[s] + p.sse(s, t) + penalty;
            if c < best {
                best = c;
                best_s = s;
            }
        }
        f[t] = best;
        prev[t] = best_s;
        // PELT pruning: drop candidates that can never win again
        candidates.retain(|&s| f[s] + p.sse(s, t) <= f[t]);
        candidates.push(t);
    }
    // backtrack
    let mut cps = Vec::new();
    let mut t = n;
    while t > 0 {
        let s = prev[t];
        if s > 0 {
            cps.push(s);
        }
        t = s;
    }
    cps.reverse();
    cps
}

/// Full segmentation of a series via PELT: converts changepoint indices
/// into [`Segment`]s. `penalty = None` uses the BIC-like default.
pub fn pelt(s: &TimeSeries, penalty: Option<f64>) -> Vec<Segment> {
    if s.is_empty() {
        return Vec::new();
    }
    let pen = penalty.unwrap_or_else(|| {
        let var = crate::ops::stats::variance(s.values()).unwrap_or(0.0);
        (2.0 * var * (s.len() as f64).ln()).max(f64::EPSILON)
    });
    let cps = pelt_changepoints(s.values(), pen);
    let p = Prefix::new(s.values());
    let mut bounds = vec![0usize];
    bounds.extend(cps);
    bounds.push(s.len());
    bounds
        .windows(2)
        .map(|w| make_segment(s, &p, w[0], w[1]))
        .collect()
}

/// The boundary timestamps of a segmentation — the "significant time
/// instants" the hybrid Q4 operator snapshots the graph at.
pub fn boundaries(segments: &[Segment]) -> Vec<Timestamp> {
    segments.iter().map(|seg| seg.interval.start).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Duration;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Three clear mean levels: 0, 10, -5.
    fn step_series() -> TimeSeries {
        TimeSeries::generate(ts(0), Duration::from_millis(1), 90, |i| {
            if i < 30 {
                0.0
            } else if i < 60 {
                10.0
            } else {
                -5.0
            }
        })
    }

    #[test]
    fn topdown_finds_steps() {
        let s = step_series();
        let segs = topdown(&s, 3, 1e-9);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].start_idx, 0);
        assert_eq!(segs[0].end_idx, 30);
        assert_eq!(segs[1].end_idx, 60);
        assert_eq!(segs[2].end_idx, 90);
        assert!((segs[0].mean - 0.0).abs() < 1e-9);
        assert!((segs[1].mean - 10.0).abs() < 1e-9);
        assert!((segs[2].mean + 5.0).abs() < 1e-9);
        for seg in &segs {
            assert!(seg.sse < 1e-9);
        }
    }

    #[test]
    fn topdown_budget_limits_segments() {
        let s = step_series();
        let segs = topdown(&s, 2, 0.0);
        assert_eq!(segs.len(), 2);
        // segments must tile the index range
        assert_eq!(segs[0].start_idx, 0);
        assert_eq!(segs.last().unwrap().end_idx, 90);
        assert_eq!(segs[0].end_idx, segs[1].start_idx);
    }

    #[test]
    fn topdown_flat_series_single_segment() {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 50, |_| 3.0);
        let segs = topdown(&s, 10, 1e-9);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].mean, 3.0);
    }

    #[test]
    fn pelt_finds_changepoints() {
        let s = step_series();
        let cps = pelt_changepoints(s.values(), 5.0);
        assert_eq!(cps, vec![30, 60]);
    }

    #[test]
    fn pelt_flat_series_no_changepoints() {
        let xs = vec![1.0; 100];
        assert!(pelt_changepoints(&xs, 1.0).is_empty());
        assert!(pelt_changepoints(&[1.0], 1.0).is_empty());
    }

    #[test]
    fn pelt_huge_penalty_suppresses_splits() {
        let s = step_series();
        let cps = pelt_changepoints(s.values(), 1e12);
        assert!(cps.is_empty());
    }

    #[test]
    fn pelt_segments_and_boundaries() {
        let s = step_series();
        let segs = pelt(&s, None);
        assert_eq!(segs.len(), 3);
        let b = boundaries(&segs);
        assert_eq!(b, vec![ts(0), ts(30), ts(60)]);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(topdown(&TimeSeries::new(), 5, 0.0).is_empty());
        assert!(pelt(&TimeSeries::new(), None).is_empty());
        let one = TimeSeries::from_pairs([(ts(0), 1.0)]);
        let segs = pelt(&one, None);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].mean, 1.0);
    }

    #[test]
    fn segment_intervals_cover_points() {
        let s = step_series();
        for seg in topdown(&s, 3, 1e-9) {
            for i in seg.start_idx..seg.end_idx {
                assert!(seg.interval.contains(s.times()[i]));
            }
        }
    }
}
