//! Time-series substrate for HyGraph.
//!
//! This crate provides the TS half of the HyGraph model: the in-memory
//! series representations ([`TimeSeries`], [`MultiSeries`]), a
//! hypertable-style chunked store ([`store::TsStore`]) used by the
//! polyglot-persistence backend of the Table-1 experiment, and the full
//! operator library of the paper's Table 2 time-series column:
//!
//! | Table 2 row | module |
//! |---|---|
//! | Q1 subsequence matching | [`ops::subsequence`] |
//! | Q2 downsampling | [`ops::downsample`] |
//! | Q3 correlation | [`ops::correlate`] |
//! | Q4 segmentation | [`ops::segment`] |
//! | D anomalies | [`ops::anomaly`] |
//! | PM sequence/motif mining | [`ops::motif`], [`ops::sax`] |
//! | E embeddings | [`ops::pca`], [`ops::features`] |
//! | C1 classification features | [`ops::features`] |
//! | C2 temporal proximity | [`ops::features`], [`ops::correlate`] |
//!
//! All operators are deterministic and allocation-conscious; range scans
//! are binary-search based and chunk-pruned in the store.

pub mod compress;
pub mod config;
pub mod multi;
pub mod ops;
pub mod persist;
pub mod rollup;
pub mod series;
pub mod store;

pub use config::TsOptions;
pub use multi::MultiSeries;
pub use series::TimeSeries;
pub use store::TsStore;
