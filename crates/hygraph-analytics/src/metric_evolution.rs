//! `metricEvolution` (paper §5, after Rost et al. \[63\]): compute graph
//! metrics on snapshots over time and store the resulting *time series*
//! back onto the vertices as series-valued properties — the flagship
//! demonstration of the `HyGraphTo<X>` / `<X>ToHyGraph` duality.

use hygraph_core::{ElementKind, ElementRef, HyGraph};
use hygraph_graph::algorithms::{centrality, community, pagerank};
use hygraph_graph::snapshot;
use hygraph_ts::TimeSeries;
use hygraph_types::{Result, Timestamp, VertexId};
use std::collections::HashMap;

/// Which metric to evolve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Total degree.
    Degree,
    /// Out-degree.
    OutDegree,
    /// PageRank score.
    PageRank,
    /// Louvain community id.
    CommunityId,
    /// Brandes betweenness centrality.
    Betweenness,
}

impl Metric {
    /// Property key the evolved series is stored under.
    pub fn property_key(self) -> &'static str {
        match self {
            Metric::Degree => "evolution:degree",
            Metric::OutDegree => "evolution:out_degree",
            Metric::PageRank => "evolution:pagerank",
            Metric::CommunityId => "evolution:community",
            Metric::Betweenness => "evolution:betweenness",
        }
    }
}

/// Computes `metric` on the snapshot at each of `instants` for every
/// vertex, returning per-vertex series.
pub fn metric_evolution(
    hg: &HyGraph,
    metric: Metric,
    instants: &[Timestamp],
) -> HashMap<VertexId, TimeSeries> {
    let mut out: HashMap<VertexId, TimeSeries> = HashMap::new();
    let full = hg.topology();
    for &t in instants {
        let snap = snapshot::snapshot(full, t);
        let values: HashMap<VertexId, f64> = match metric {
            Metric::Degree => snap
                .vertex_ids()
                .map(|v| (v, snap.degree(v) as f64))
                .collect(),
            Metric::OutDegree => snap
                .vertex_ids()
                .map(|v| (v, snap.out_degree(v) as f64))
                .collect(),
            Metric::PageRank => pagerank::pagerank(&snap, pagerank::PageRankConfig::default()),
            Metric::CommunityId => {
                let c = community::louvain(&snap, 20);
                c.assignment
                    .iter()
                    .map(|(&v, &cid)| (v, cid as f64))
                    .collect()
            }
            Metric::Betweenness => centrality::betweenness_centrality(&snap),
        };
        for (v, x) in values {
            out.entry(v)
                .or_default()
                .push(t, x)
                .expect("instants are processed in caller order");
        }
    }
    out
}

/// Runs [`metric_evolution`] and writes each vertex's series back into
/// the instance as a series-valued property (pg-vertices only — the
/// paper stores meta-properties on entities). Returns how many vertices
/// were annotated.
pub fn annotate_metric_evolution(
    hg: &mut HyGraph,
    metric: Metric,
    instants: &[Timestamp],
) -> Result<usize> {
    let mut sorted = instants.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let evolved = metric_evolution(hg, metric, &sorted);
    let mut annotated = 0usize;
    let mut items: Vec<(VertexId, TimeSeries)> = evolved.into_iter().collect();
    items.sort_by_key(|&(v, _)| v);
    for (v, series) in items {
        if hg.vertex_kind(v)? != ElementKind::Pg || series.is_empty() {
            continue;
        }
        let sid = hg.add_univariate_series(metric.property_key(), &series);
        hg.set_property(ElementRef::Vertex(v), metric.property_key(), sid)?;
        annotated += 1;
    }
    Ok(annotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{props, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Hub-and-spoke graph where spokes attach at staggered times.
    fn growing_star() -> (HyGraph, VertexId) {
        let mut hg = HyGraph::new();
        let hub = hg.add_pg_vertex(["N"], props! {});
        for i in 0..4 {
            let s = hg.add_pg_vertex(["N"], props! {});
            hg.add_pg_edge_valid(
                s,
                hub,
                ["E"],
                props! {},
                Interval::from(ts(10 * (i as i64 + 1))),
            )
            .unwrap();
        }
        (hg, hub)
    }

    #[test]
    fn degree_evolution_grows() {
        let (hg, hub) = growing_star();
        let instants = [ts(5), ts(15), ts(25), ts(35), ts(45)];
        let evolved = metric_evolution(&hg, Metric::Degree, &instants);
        let hub_series = &evolved[&hub];
        assert_eq!(hub_series.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pagerank_evolution_shifts_to_hub() {
        let (hg, hub) = growing_star();
        let evolved = metric_evolution(&hg, Metric::PageRank, &[ts(5), ts(45)]);
        let hub_series = &evolved[&hub];
        assert!(
            hub_series.values()[1] > hub_series.values()[0],
            "hub gains rank as spokes connect"
        );
    }

    #[test]
    fn community_evolution_merges() {
        // two pairs that merge into one component at t=50
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["N"], props! {});
        let b = hg.add_pg_vertex(["N"], props! {});
        let c = hg.add_pg_vertex(["N"], props! {});
        let d = hg.add_pg_vertex(["N"], props! {});
        hg.add_pg_edge(a, b, ["E"], props! {}).unwrap();
        hg.add_pg_edge(c, d, ["E"], props! {}).unwrap();
        hg.add_pg_edge_valid(b, c, ["E"], props! {}, Interval::from(ts(50)))
            .unwrap();
        let evolved = metric_evolution(&hg, Metric::CommunityId, &[ts(0), ts(100)]);
        // before: a,b in one community, c,d in another
        let before: Vec<f64> = [a, b, c, d]
            .iter()
            .map(|v| evolved[v].values()[0])
            .collect();
        assert_eq!(before[0], before[1]);
        assert_eq!(before[2], before[3]);
        assert_ne!(before[0], before[2]);
    }

    #[test]
    fn annotate_writes_series_properties() {
        let (mut hg, hub) = growing_star();
        let n = annotate_metric_evolution(&mut hg, Metric::Degree, &[ts(5), ts(45)]).unwrap();
        assert_eq!(n, 5);
        let sid = hg
            .props(ElementRef::Vertex(hub))
            .unwrap()
            .series_value("evolution:degree")
            .expect("annotation present");
        let s = hg.series(sid).unwrap();
        assert_eq!(s.len(), 2);
        assert!(hg.validate().is_ok());
    }

    #[test]
    fn betweenness_evolution() {
        // a bridge vertex appears at t=50 connecting two pairs
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["N"], props! {});
        let b = hg.add_pg_vertex(["N"], props! {});
        let bridge = hg.add_pg_vertex(["N"], props! {});
        hg.add_pg_edge_valid(a, bridge, ["E"], props! {}, Interval::from(ts(50)))
            .unwrap();
        hg.add_pg_edge_valid(bridge, b, ["E"], props! {}, Interval::from(ts(50)))
            .unwrap();
        let evolved = metric_evolution(&hg, Metric::Betweenness, &[ts(0), ts(100)]);
        let s = &evolved[&bridge];
        assert_eq!(s.values()[0], 0.0, "no paths before the edges exist");
        assert_eq!(s.values()[1], 1.0, "carries the (a,b) pair after t=50");
    }

    #[test]
    fn annotate_dedups_and_sorts_instants() {
        let (mut hg, _) = growing_star();
        // unsorted with duplicates must not panic
        let n = annotate_metric_evolution(&mut hg, Metric::OutDegree, &[ts(45), ts(5), ts(45)])
            .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn empty_instants_no_annotation() {
        let (mut hg, _) = growing_star();
        let n = annotate_metric_evolution(&mut hg, Metric::Degree, &[]).unwrap();
        assert_eq!(n, 0);
    }
}
