//! Evaluation metrics for detection/classification experiments — the
//! precision/recall machinery behind the Figure-4 comparison.

use std::collections::HashSet;

/// A binary confusion matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Confusion {
    /// Builds a confusion matrix from predictions and ground truth over
    /// the item indices `0..n`.
    pub fn from_sets(n: usize, predicted: &HashSet<usize>, truth: &HashSet<usize>) -> Confusion {
        let mut c = Confusion::default();
        for i in 0..n {
            match (predicted.contains(&i), truth.contains(&i)) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Builds from a per-item predicate pair.
    pub fn from_fn(
        n: usize,
        mut predicted: impl FnMut(usize) -> bool,
        mut truth: impl FnMut(usize) -> bool,
    ) -> Confusion {
        let mut c = Confusion::default();
        for i in 0..n {
            match (predicted(i), truth(i)) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted (no
    /// false alarms issued).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall); 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all items.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Matthews correlation coefficient, in `[-1, 1]`; 0 for degenerate
    /// denominators.
    pub fn mcc(&self) -> f64 {
        let (tp, fp, fn_, tn) = (
            self.tp as f64,
            self.fp as f64,
            self.fn_ as f64,
            self.tn as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }
}

impl std::fmt::Display for Confusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tp={} fp={} fn={} tn={} (P={:.2} R={:.2} F1={:.2})",
            self.tp,
            self.fp,
            self.fn_,
            self.tn,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[usize]) -> HashSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn perfect_prediction() {
        let truth = set(&[1, 3]);
        let c = Confusion::from_sets(5, &truth.clone(), &truth);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 0,
                fn_: 0,
                tn: 3
            }
        );
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert!((c.mcc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_right() {
        let c = Confusion::from_sets(4, &set(&[0, 1]), &set(&[1, 2]));
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.mcc(), 0.0);
    }

    #[test]
    fn degenerate_cases() {
        // nothing predicted, nothing true
        let c = Confusion::from_sets(3, &set(&[]), &set(&[]));
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.mcc(), 0.0);
        // everything predicted, nothing true
        let c = Confusion::from_sets(3, &set(&[0, 1, 2]), &set(&[]));
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 1.0, "nothing to find");
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn from_fn_matches_from_sets() {
        let truth = set(&[2, 4, 6]);
        let pred = set(&[2, 3, 6]);
        let a = Confusion::from_sets(8, &pred, &truth);
        let b = Confusion::from_fn(8, |i| pred.contains(&i), |i| truth.contains(&i));
        assert_eq!(a, b);
    }

    #[test]
    fn display_format() {
        let c = Confusion {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        let text = c.to_string();
        assert!(text.contains("tp=1") && text.contains("F1="));
    }
}
