//! Hybrid frequent-pattern mining (Table 2, row PM).
//!
//! The paper: "Pattern Mining in HyGraph involves identifying recurring
//! subgraphs … and integrating time-series data to analyze trends in
//! sub-structures featuring common vertex types."
//!
//! * [`frequent_edge_patterns`] — frequency census of labelled edge
//!   patterns `(:A)-[:R]->(:B)` (1-edge subgraph patterns, the unit of
//!   most frequent-subgraph miners);
//! * [`frequent_two_hop_patterns`] — 2-edge path patterns
//!   `(:A)-[:R]->(:B)-[:S]->(:C)`;
//! * [`hybrid_patterns`] — joins structural patterns with the SAX words
//!   that are frequent in the member vertices' series: a *hybrid pattern*
//!   is a (structural pattern, temporal word) pair with joint support.

use hygraph_core::HyGraph;
use hygraph_query::hybrid::vertex_series;
use hygraph_ts::ops::sax;
use hygraph_types::VertexId;
use std::collections::HashMap;

/// A labelled 1-edge structural pattern with its support.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EdgePattern {
    /// Source label (first label of the source vertex, or `*`).
    pub src_label: String,
    /// Edge label.
    pub edge_label: String,
    /// Target label.
    pub dst_label: String,
}

impl std::fmt::Display for EdgePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(:{})-[:{}]->(:{})",
            self.src_label, self.edge_label, self.dst_label
        )
    }
}

fn first_label(hg: &HyGraph, v: VertexId) -> String {
    hg.topology()
        .vertex(v)
        .ok()
        .and_then(|d| d.labels.first().map(|l| l.as_str().to_owned()))
        .unwrap_or_else(|| "*".to_owned())
}

/// Counts every labelled edge pattern, returning those with support ≥
/// `min_support`, most frequent first.
pub fn frequent_edge_patterns(hg: &HyGraph, min_support: usize) -> Vec<(EdgePattern, usize)> {
    let g = hg.topology();
    let mut counts: HashMap<EdgePattern, usize> = HashMap::new();
    for e in g.edges() {
        let pat = EdgePattern {
            src_label: first_label(hg, e.src),
            edge_label: e
                .labels
                .first()
                .map(|l| l.as_str().to_owned())
                .unwrap_or_else(|| "*".to_owned()),
            dst_label: first_label(hg, e.dst),
        };
        *counts.entry(pat).or_insert(0) += 1;
    }
    let mut out: Vec<(EdgePattern, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .collect();
    out.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
    });
    out
}

/// A labelled 2-hop path pattern with its support.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathPattern2 {
    /// First edge pattern.
    pub first: EdgePattern,
    /// Second edge label.
    pub second_edge: String,
    /// Final target label.
    pub final_label: String,
}

impl std::fmt::Display for PathPattern2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}-[:{}]->(:{})",
            self.first, self.second_edge, self.final_label
        )
    }
}

/// Counts 2-hop labelled path patterns with support ≥ `min_support`.
pub fn frequent_two_hop_patterns(hg: &HyGraph, min_support: usize) -> Vec<(PathPattern2, usize)> {
    let g = hg.topology();
    let mut counts: HashMap<PathPattern2, usize> = HashMap::new();
    for e1 in g.edges() {
        for (e2, _) in g.neighbors_out(e1.dst) {
            let pat = PathPattern2 {
                first: EdgePattern {
                    src_label: first_label(hg, e1.src),
                    edge_label: e1
                        .labels
                        .first()
                        .map(|l| l.as_str().to_owned())
                        .unwrap_or_else(|| "*".to_owned()),
                    dst_label: first_label(hg, e1.dst),
                },
                second_edge: e2
                    .labels
                    .first()
                    .map(|l| l.as_str().to_owned())
                    .unwrap_or_else(|| "*".to_owned()),
                final_label: first_label(hg, e2.dst),
            };
            *counts.entry(pat).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(PathPattern2, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .collect();
    out.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
    });
    out
}

/// A hybrid pattern: a structural edge pattern whose *source* vertices
/// frequently exhibit the given SAX temporal word.
#[derive(Clone, Debug, PartialEq)]
pub struct HybridPattern {
    /// The structural part.
    pub structure: EdgePattern,
    /// The temporal part (SAX word over the source's series windows).
    pub word: String,
    /// Number of (edge instance, word occurrence) joint supports.
    pub support: usize,
}

/// SAX parameters for hybrid mining.
#[derive(Clone, Copy, Debug)]
pub struct SaxParams {
    /// Sliding-window length (points).
    pub window: usize,
    /// Word length.
    pub word_len: usize,
    /// Alphabet size (2..=8).
    pub alphabet: usize,
}

impl Default for SaxParams {
    fn default() -> Self {
        Self {
            window: 24,
            word_len: 4,
            alphabet: 4,
        }
    }
}

/// Joins frequent structural edge patterns with frequent temporal words
/// of the source vertices' series. A hybrid pattern's support is the
/// number of edge instances whose source vertex exhibits the word at
/// least once. Errors on invalid SAX parameters (alphabet outside
/// 2..=8, zero word length) instead of panicking.
pub fn hybrid_patterns(
    hg: &HyGraph,
    min_structural_support: usize,
    min_word_support: usize,
    params: SaxParams,
) -> hygraph_types::Result<Vec<HybridPattern>> {
    let _t = hygraph_metrics::OpTimer::new(hygraph_metrics::OpClass::PmMine);
    let structural = frequent_edge_patterns(hg, min_structural_support);
    let g = hg.topology();
    // per-vertex set of words it exhibits
    let mut words_of: HashMap<VertexId, Vec<String>> = HashMap::new();
    let mut ids: Vec<VertexId> = g.vertex_ids().collect();
    ids.sort_unstable();
    for v in ids {
        if let Some(series) = vertex_series(hg, v) {
            let freq =
                sax::frequent_words(&series, params.window, params.word_len, params.alphabet, 1)?;
            words_of.insert(v, freq.into_iter().map(|(w, _)| w).collect());
        }
    }
    let mut out = Vec::new();
    for (pat, _) in structural {
        // count joint support per word
        let mut word_support: HashMap<String, usize> = HashMap::new();
        for e in g.edges() {
            let matches_pattern = first_label(hg, e.src) == pat.src_label
                && e.labels.first().map(|l| l.as_str()) == Some(pat.edge_label.as_str())
                && first_label(hg, e.dst) == pat.dst_label;
            if !matches_pattern {
                continue;
            }
            if let Some(words) = words_of.get(&e.src) {
                for w in words {
                    *word_support.entry(w.clone()).or_insert(0) += 1;
                }
            }
        }
        let mut hits: Vec<(String, usize)> = word_support
            .into_iter()
            .filter(|&(_, c)| c >= min_word_support)
            .collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (word, support) in hits {
            out.push(HybridPattern {
                structure: pat.clone(),
                word,
                support,
            });
        }
    }
    out.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.word.cmp(&b.word)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_ts::TimeSeries;
    use hygraph_types::{props, Duration, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn fraud_like() -> HyGraph {
        let mut hg = HyGraph::new();
        let mut cards = Vec::new();
        for i in 0..3 {
            let u = hg.add_pg_vertex(["User"], props! {});
            // rising card series -> consistent SAX words
            let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 100, move |k| {
                (k as f64) * (i + 1) as f64
            });
            let sid = hg.add_univariate_series(&format!("c{i}"), &s);
            let c = hg.add_ts_vertex(["Card"], sid).unwrap();
            hg.add_pg_edge(u, c, ["USES"], props! {}).unwrap();
            cards.push(c);
        }
        let m = hg.add_pg_vertex(["Merchant"], props! {});
        for &c in &cards {
            hg.add_pg_edge(c, m, ["TX"], props! {}).unwrap();
            hg.add_pg_edge(c, m, ["TX"], props! {}).unwrap();
        }
        hg
    }

    #[test]
    fn edge_pattern_census() {
        let hg = fraud_like();
        let pats = frequent_edge_patterns(&hg, 1);
        // (:Card)-[:TX]->(:Merchant) has 6 instances, (:User)-[:USES]->(:Card) has 3
        assert_eq!(pats[0].1, 6);
        assert_eq!(pats[0].0.to_string(), "(:Card)-[:TX]->(:Merchant)");
        assert_eq!(pats[1].1, 3);
        // min support filters
        let pats = frequent_edge_patterns(&hg, 4);
        assert_eq!(pats.len(), 1);
    }

    #[test]
    fn two_hop_census() {
        let hg = fraud_like();
        let pats = frequent_two_hop_patterns(&hg, 1);
        // (:User)-[:USES]->(:Card)-[:TX]->(:Merchant): 3 users x 2 TX = 6
        let top = &pats[0];
        assert_eq!(top.1, 6);
        assert_eq!(
            top.0.to_string(),
            "(:User)-[:USES]->(:Card)-[:TX]->(:Merchant)"
        );
    }

    #[test]
    fn hybrid_patterns_join_structure_and_words() {
        let hg = fraud_like();
        let hybrids = hybrid_patterns(&hg, 2, 2, SaxParams::default()).unwrap();
        assert!(!hybrids.is_empty(), "rising cards share SAX words");
        let top = &hybrids[0];
        assert_eq!(top.structure.to_string(), "(:Card)-[:TX]->(:Merchant)");
        // all three cards rise monotonically: their windows share the
        // ascending word; 6 TX edges from word-bearing sources
        assert!(top.support >= 2);
        assert_eq!(top.word.len(), SaxParams::default().word_len);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let hg = HyGraph::new();
        assert!(frequent_edge_patterns(&hg, 1).is_empty());
        assert!(frequent_two_hop_patterns(&hg, 1).is_empty());
        assert!(hybrid_patterns(&hg, 1, 1, SaxParams::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn invalid_sax_params_error_not_panic() {
        let hg = fraud_like();
        let bad = SaxParams {
            alphabet: 9,
            ..SaxParams::default()
        };
        assert!(hybrid_patterns(&hg, 1, 1, bad).is_err());
    }
}
