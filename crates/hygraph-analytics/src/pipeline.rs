//! The Figure-4 end-to-end fraud pipeline.
//!
//! The paper's running example, solved the HyGraph way:
//!
//! 1. **Graph rule** (Listing 1): users with ≥3 high-amount transactions
//!    to co-located merchants within one hour — flags fraudsters *and*
//!    benign bulk shoppers (false positives).
//! 2. **Series rule** (Listing 2): global z-score burst detection on each
//!    card's spending series — misses nothing bursty but knows no
//!    structure.
//! 3. **Hybrid refinement**: a graph-rule hit is *confirmed* only when
//!    the temporal evidence agrees — the spending series shows a burst,
//!    or the structural pattern is a one-off rather than a recurring
//!    (e.g. daily restock) routine. This is what clears "User 3" and
//!    keeps "User 1" in the paper's narrative.
//! 4. **Cluster & annotate**: users are clustered on hybrid embeddings,
//!    clusters are classified ordinary/suspicious by mean confirmed
//!    score, and verdict subgraphs are written back to the instance.

use crate::classify::{self, ClusterVerdict};
use crate::cluster;
use crate::embedding::{self, FastRpConfig};
use hygraph_core::{ElementRef, HyGraph};
use hygraph_query::hybrid::vertex_series;
use hygraph_ts::ops::anomaly;
use hygraph_types::{Duration, Result, SubgraphId, Timestamp, Value, VertexId};
use std::collections::HashMap;

/// Pipeline configuration (thresholds of the paper's Listing 1/2).
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Listing-1 amount threshold.
    pub amount_threshold: f64,
    /// Listing-1 merchant co-location radius (same units as merchant
    /// `x`/`y` properties).
    pub distance_threshold: f64,
    /// Listing-1 time window.
    pub window: Duration,
    /// Listing-1 minimum distinct merchants.
    pub min_merchants: usize,
    /// Listing-2 z-score threshold.
    pub zscore_threshold: f64,
    /// A structural pattern recurring on at least this many distinct
    /// days counts as a routine (clears the graph flag absent a burst).
    pub recurrence_days: usize,
    /// Number of clusters for the final annotation step.
    pub clusters: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            amount_threshold: 1000.0,
            distance_threshold: 1000.0,
            window: Duration::from_hours(1),
            min_merchants: 3,
            zscore_threshold: 3.0,
            recurrence_days: 2,
            clusters: 4,
        }
    }
}

/// Per-user outcome of the pipeline.
#[derive(Clone, Debug)]
pub struct UserVerdict {
    /// The user vertex.
    pub user: VertexId,
    /// Flagged by the graph-only rule (Listing 1).
    pub graph_flagged: bool,
    /// Flagged by the series-only rule (Listing 2).
    pub series_flagged: bool,
    /// On how many distinct days the structural pattern fired.
    pub pattern_days: usize,
    /// Final hybrid verdict.
    pub suspicious: bool,
}

/// The full pipeline output.
pub struct PipelineReport {
    /// Per-user verdicts (user vertex order).
    pub verdicts: Vec<UserVerdict>,
    /// The cluster-level classification written to the instance.
    pub clusters: Vec<ClusterVerdict>,
    /// Ids of the annotation subgraphs created.
    pub annotations: Vec<SubgraphId>,
}

impl PipelineReport {
    /// Verdict lookup by user vertex.
    pub fn verdict(&self, user: VertexId) -> Option<&UserVerdict> {
        self.verdicts.iter().find(|v| v.user == user)
    }

    /// The set of users finally marked suspicious.
    pub fn suspicious_users(&self) -> Vec<VertexId> {
        self.verdicts
            .iter()
            .filter(|v| v.suspicious)
            .map(|v| v.user)
            .collect()
    }
}

/// One observed transaction of a user.
struct TxObs {
    at: Timestamp,
    amount: f64,
    merchant: VertexId,
    pos: (f64, f64),
}

/// Runs the full pipeline on a fraud-shaped instance (`User`, `USES`,
/// `CreditCard`, `TX`, `Merchant` with `x`/`y` and TX `amount`).
pub fn run(hg: &mut HyGraph, cfg: PipelineConfig) -> Result<PipelineReport> {
    let g = hg.topology();
    // gather users and their transactions through their cards
    let mut users: Vec<VertexId> = g
        .vertices()
        .filter(|v| v.has_label("User"))
        .map(|v| v.id)
        .collect();
    users.sort_unstable();

    let merchant_pos = |hg: &HyGraph, m: VertexId| -> Option<(f64, f64)> {
        let props = hg.props(ElementRef::Vertex(m)).ok()?;
        Some((
            props.static_value("x").and_then(Value::as_f64)?,
            props.static_value("y").and_then(Value::as_f64)?,
        ))
    };

    let mut verdicts = Vec::with_capacity(users.len());
    let mut confirmed_score: HashMap<VertexId, f64> = HashMap::new();

    for &user in &users {
        // the user's cards
        let cards: Vec<VertexId> = hg
            .topology()
            .neighbors_out(user)
            .filter(|(e, _)| e.has_label("USES"))
            .map(|(_, c)| c)
            .collect();
        // transactions across all cards
        let mut txs: Vec<TxObs> = Vec::new();
        for &card in &cards {
            for (e, m) in hg.topology().neighbors_out(card) {
                if !e.has_label("TX") {
                    continue;
                }
                let Some(amount) = e.props.static_value("amount").and_then(Value::as_f64) else {
                    continue;
                };
                let Some(pos) = merchant_pos(hg, m) else {
                    continue;
                };
                txs.push(TxObs {
                    at: e.validity.start,
                    amount,
                    merchant: m,
                    pos,
                });
            }
        }
        txs.sort_by_key(|t| t.at);

        // Listing 1: sliding window of high-amount txs to co-located,
        // distinct merchants
        let fire_days = pattern_fire_days(&txs, &cfg);
        let graph_flagged = !fire_days.is_empty();

        // Listing 2: burst on any card's series
        let series_flagged = cards.iter().any(|&c| {
            vertex_series(hg, c)
                .map(|s| !anomaly::zscore(&s, cfg.zscore_threshold).is_empty())
                .unwrap_or(false)
        });

        // hybrid refinement: evidence from BOTH worlds. A structural hit
        // is confirmed by a spending burst or by being a one-off (not a
        // recurring routine); a series burst alone (one big legitimate
        // purchase) is cleared absent the structural pattern.
        let recurring = fire_days.len() >= cfg.recurrence_days;
        let suspicious = graph_flagged && (series_flagged || !recurring);

        if suspicious {
            confirmed_score.insert(user, 1.0);
        }
        verdicts.push(UserVerdict {
            user,
            graph_flagged,
            series_flagged,
            pattern_days: fire_days.len(),
            suspicious,
        });
    }

    // cluster users on hybrid features: the structural FastRP embedding
    // of the user plus the temporal feature vector of its card's series
    // ("analyze transactional interactions and account balance to
    // produce enriched clusters")
    let structural = embedding::fastrp(hg, FastRpConfig::default());
    let mut temporal_rows: Vec<Vec<f64>> = users
        .iter()
        .map(|&user| {
            let card_series = hg
                .topology()
                .neighbors_out(user)
                .filter(|(e, _)| e.has_label("USES"))
                .find_map(|(_, c)| vertex_series(hg, c));
            card_series
                .map(|s| hygraph_ts::ops::features::feature_vector(&s).to_vec())
                .unwrap_or_else(|| vec![0.0; hygraph_ts::ops::features::FEATURE_DIM])
        })
        .collect();
    hygraph_ts::ops::features::normalize_columns(&mut temporal_rows);
    let user_emb: HashMap<VertexId, Vec<f64>> = users
        .iter()
        .zip(temporal_rows)
        .map(|(&user, temporal)| {
            let mut e = structural.get(&user).cloned().unwrap_or_default();
            // temporal behaviour dominates the clustering, structure
            // refines it
            e.iter_mut().for_each(|x| *x *= 0.25);
            e.extend(temporal);
            (user, e)
        })
        .collect();
    let clustering = cluster::kmeans(&user_emb, cfg.clusters, 50);
    let cluster_verdicts = classify::classify_clusters(&clustering, &confirmed_score, 0.5);
    let annotations = classify::annotate_instance(hg, &cluster_verdicts)?;

    Ok(PipelineReport {
        verdicts,
        clusters: cluster_verdicts,
        annotations,
    })
}

/// The distinct days on which the Listing-1 pattern fires for a user's
/// ordered transaction list.
fn pattern_fire_days(txs: &[TxObs], cfg: &PipelineConfig) -> Vec<Timestamp> {
    let mut days: Vec<Timestamp> = Vec::new();
    let day = Duration::from_days(1);
    for (i, anchor) in txs.iter().enumerate() {
        if anchor.amount <= cfg.amount_threshold {
            continue;
        }
        // window [anchor.at, anchor.at + window]
        let mut merchants: Vec<VertexId> = vec![anchor.merchant];
        for other in &txs[i + 1..] {
            if other.at - anchor.at > cfg.window {
                break;
            }
            if other.amount <= cfg.amount_threshold {
                continue;
            }
            let d = ((anchor.pos.0 - other.pos.0).powi(2) + (anchor.pos.1 - other.pos.1).powi(2))
                .sqrt();
            if d < cfg.distance_threshold {
                merchants.push(other.merchant);
            }
        }
        merchants.sort_unstable();
        merchants.dedup();
        if merchants.len() >= cfg.min_merchants {
            let bucket = anchor.at.truncate(day);
            if days.last() != Some(&bucket) {
                days.push(bucket);
            }
        }
    }
    days.dedup();
    days
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_datagen::fraud;

    #[test]
    fn figure2_story_reproduced() {
        let mut d = fraud::figure2_instance();
        let report = run(&mut d.hygraph, PipelineConfig::default()).unwrap();
        let u1 = report.verdict(d.users[0]).unwrap();
        let u2 = report.verdict(d.users[1]).unwrap();
        let u3 = report.verdict(d.users[2]).unwrap();
        // Listing 1 (graph-only) flags User 1 and User 3
        assert!(u1.graph_flagged, "User 1 graph-flagged");
        assert!(!u2.graph_flagged, "User 2 clean on graph");
        assert!(u3.graph_flagged, "User 3 graph-flagged (false positive)");
        // Listing 2 (series-only) flags User 1 only
        assert!(u1.series_flagged);
        assert!(!u2.series_flagged);
        assert!(!u3.series_flagged);
        // hybrid: User 1 suspicious, User 3 cleared (recurring routine)
        assert!(u1.suspicious, "User 1 confirmed");
        assert!(!u2.suspicious);
        assert!(
            !u3.suspicious,
            "User 3 cleared by recurrence + smooth series"
        );
        assert!(u3.pattern_days >= 2, "User 3's pattern recurs daily");
        // annotations written back
        assert!(!report.annotations.is_empty());
        assert!(d.hygraph.validate().is_ok());
    }

    #[test]
    fn scaled_dataset_accuracy() {
        let data = fraud::generate(fraud::FraudConfig {
            users: 80,
            merchants: 30,
            hours: 24 * 7,
            ..Default::default()
        });
        let mut hg = data.hygraph;
        let report = run(&mut hg, PipelineConfig::default()).unwrap();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fname = 0usize;
        for (i, &user) in data.users.iter().enumerate() {
            let v = report.verdict(user).expect("every user judged");
            let truth = data.fraudsters.contains(&i);
            match (v.suspicious, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fname += 1,
                _ => {}
            }
        }
        let recall = tp as f64 / (tp + fname).max(1) as f64;
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        assert!(recall >= 0.9, "recall {recall} (tp={tp}, fn={fname})");
        assert!(precision >= 0.9, "precision {precision} (tp={tp}, fp={fp})");
        // bulk shoppers must not be flagged (the false positives the
        // hybrid pipeline exists to remove)
        for &i in &data.bulk_shoppers {
            let v = report.verdict(data.users[i]).unwrap();
            assert!(!v.suspicious, "bulk shopper {i} wrongly flagged: {v:?}");
        }
    }

    #[test]
    fn graph_only_has_false_positives_hybrid_removes_them() {
        // the quantitative claim behind Figure 4
        let data = fraud::generate(fraud::FraudConfig {
            users: 80,
            merchants: 30,
            hours: 24 * 7,
            ..Default::default()
        });
        let mut hg = data.hygraph;
        let report = run(&mut hg, PipelineConfig::default()).unwrap();
        let graph_fp = data
            .bulk_shoppers
            .iter()
            .filter(|&&i| report.verdict(data.users[i]).unwrap().graph_flagged)
            .count();
        assert!(
            graph_fp > 0,
            "bulk shoppers should trip the graph-only rule"
        );
        let hybrid_fp = data
            .bulk_shoppers
            .iter()
            .filter(|&&i| report.verdict(data.users[i]).unwrap().suspicious)
            .count();
        assert_eq!(hybrid_fp, 0, "hybrid pipeline clears them");
    }

    #[test]
    fn series_only_false_positives_cleared() {
        // one-off big spenders burst on the series axis but lack the
        // structural co-location pattern: hybrid must clear them
        let data = fraud::generate(fraud::FraudConfig {
            users: 80,
            merchants: 30,
            hours: 24 * 7,
            ..Default::default()
        });
        let mut hg = data.hygraph;
        let report = run(&mut hg, PipelineConfig::default()).unwrap();
        assert!(!data.vacation_spenders.is_empty());
        for &i in &data.vacation_spenders {
            let v = report.verdict(data.users[i]).unwrap();
            assert!(v.series_flagged, "vacation spender {i} should burst");
            assert!(!v.graph_flagged, "no co-location run for {i}");
            assert!(!v.suspicious, "hybrid must clear {i}: {v:?}");
        }
    }

    #[test]
    fn empty_instance_runs() {
        let mut hg = HyGraph::new();
        let report = run(&mut hg, PipelineConfig::default()).unwrap();
        assert!(report.verdicts.is_empty());
    }
}
