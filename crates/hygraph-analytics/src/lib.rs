//! Hybrid analytics over HyGraph instances — the `HyGraphToHyGraph`
//! operator family (paper §5 Figure 4, §6 roadmap).
//!
//! | paper concept | module |
//! |---|---|
//! | `metricEvolution` (degree / PageRank / community id over time, stored back as series properties) | [`metric_evolution`] |
//! | hybrid embeddings (FastRP structure + PCA series features) + vector similarity (the GraphRAG hook) | [`embedding`] |
//! | hybrid clustering (k-means over structure ⊕ series features) | [`cluster`] |
//! | cluster classification ("ordinary" / "suspicious") + instance annotation | [`classify`] |
//! | community-contextual anomaly detection (kills graph-only false positives) | [`detect`] |
//! | hybrid frequent-pattern mining (subgraph patterns × SAX sequences) | [`mining`] |
//! | the Figure-4 end-to-end fraud pipeline | [`pipeline`] |

pub mod classify;
pub mod cluster;
pub mod detect;
pub mod embedding;
pub mod evaluate;
pub mod metric_evolution;
pub mod mining;
pub mod pipeline;
