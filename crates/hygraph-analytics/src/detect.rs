//! Community-contextual anomaly detection (Table 2, row D, hybridised).
//!
//! The paper: "HyGraph exploits such a duality to enrich anomaly
//! detection with contextual data from graph communities". The idea:
//! a raw series anomaly is *suspicious* only if the behaviour is also
//! anomalous **relative to the entity's community** — an entity whose
//! whole community behaves the same way (e.g. business accounts doing
//! daily bulk purchases) is a false positive.

use hygraph_core::HyGraph;
use hygraph_graph::algorithms::community::{louvain, Communities};
use hygraph_query::hybrid::vertex_series;
use hygraph_ts::ops::{anomaly, features, stats};
use hygraph_types::VertexId;
use std::collections::HashMap;

/// A contextualised detection result for one vertex.
#[derive(Clone, Debug)]
pub struct ContextualAnomaly {
    /// The vertex.
    pub vertex: VertexId,
    /// The vertex's community.
    pub community: usize,
    /// Raw series anomaly score (max |z| of its own series).
    pub raw_score: f64,
    /// How far the vertex's behaviour deviates from its community's
    /// typical behaviour (z-score of its feature vector distance).
    pub community_deviation: f64,
    /// Final verdict: anomalous both on its own series *and* relative to
    /// its community.
    pub confirmed: bool,
}

/// Configuration for [`contextual_anomalies`].
#[derive(Clone, Copy, Debug)]
pub struct DetectConfig {
    /// Raw z-score threshold on a vertex's own series.
    pub raw_threshold: f64,
    /// Community-deviation threshold (in community-distance z-scores).
    pub community_threshold: f64,
    /// Louvain passes for community detection.
    pub louvain_passes: usize,
}

impl Default for DetectConfig {
    fn default() -> Self {
        Self {
            raw_threshold: 3.0,
            community_threshold: 1.5,
            louvain_passes: 20,
        }
    }
}

/// Runs the hybrid detector over all vertices with an associated series.
///
/// Pipeline: Louvain communities on the topology → per-vertex raw
/// anomaly score → per-community feature baseline → confirmation of
/// vertices that deviate on both axes.
pub fn contextual_anomalies(hg: &HyGraph, cfg: DetectConfig) -> Vec<ContextualAnomaly> {
    let _t = hygraph_metrics::OpTimer::new(hygraph_metrics::OpClass::DDetect);
    let communities: Communities = louvain(hg.topology(), cfg.louvain_passes);

    // collect vertices with series + their features
    let mut entries: Vec<(VertexId, usize, f64, Vec<f64>)> = Vec::new();
    let mut ids: Vec<VertexId> = hg.topology().vertex_ids().collect();
    ids.sort_unstable();
    for v in ids {
        let Some(series) = vertex_series(hg, v) else {
            continue;
        };
        let raw = anomaly::zscore(&series, 0.0)
            .into_iter()
            .map(|a| a.score)
            .fold(0.0f64, f64::max);
        let feats = features::feature_vector(&series).to_vec();
        let comm = communities.of(v).unwrap_or(usize::MAX);
        entries.push((v, comm, raw, feats));
    }

    // per-community centroid of feature vectors
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, (_, comm, _, _)) in entries.iter().enumerate() {
        groups.entry(*comm).or_default().push(i);
    }
    let mut deviation = vec![0.0f64; entries.len()];
    for members in groups.values() {
        if members.len() < 2 {
            // singleton community: no peer baseline; deviation stays 0 so
            // the community axis neither confirms nor clears it — fall
            // back to raw-only via the confirmed rule below
            continue;
        }
        let dim = entries[members[0]].3.len();
        let mut centroid = vec![0.0; dim];
        for &i in members {
            for (c, x) in centroid.iter_mut().zip(&entries[i].3) {
                *c += x;
            }
        }
        centroid.iter_mut().for_each(|c| *c /= members.len() as f64);
        let dists: Vec<f64> = members
            .iter()
            .map(|&i| features::euclidean(&entries[i].3, &centroid))
            .collect();
        let mean = stats::mean(&dists).unwrap_or(0.0);
        let sd = stats::stddev(&dists).unwrap_or(0.0);
        for (&i, &d) in members.iter().zip(&dists) {
            deviation[i] = if sd > f64::EPSILON {
                (d - mean) / sd
            } else {
                0.0
            };
        }
    }

    entries
        .into_iter()
        .enumerate()
        .map(|(i, (vertex, community, raw_score, _))| {
            let community_deviation = deviation[i];
            let in_peer_group = groups.get(&community).is_some_and(|m| m.len() >= 2);
            let confirmed = raw_score > cfg.raw_threshold
                && (!in_peer_group || community_deviation > cfg.community_threshold);
            ContextualAnomaly {
                vertex,
                community,
                raw_score,
                community_deviation,
                confirmed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_ts::TimeSeries;
    use hygraph_types::{props, Duration, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn series(f: impl FnMut(usize) -> f64) -> TimeSeries {
        TimeSeries::generate(ts(0), Duration::from_millis(1), 100, f)
    }

    /// Community A: 4 smooth entities + 1 bursty (true anomaly).
    /// Community B: 4 entities that ALL burst the same way (peer-normal
    /// behaviour — no confirmation).
    fn instance() -> (HyGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut hg = HyGraph::new();
        let add = |hg: &mut HyGraph, name: String, s: &TimeSeries| {
            let sid = hg.add_univariate_series(&name, s);
            hg.add_ts_vertex(["C"], sid).unwrap()
        };
        let mut comm_a = Vec::new();
        for i in 0..4 {
            let s = series(move |k| 10.0 + ((k * (i + 3)) % 7) as f64 * 0.1);
            comm_a.push(add(&mut hg, format!("a{i}"), &s));
        }
        let burst = series(|k| if (50..54).contains(&k) { 500.0 } else { 10.0 });
        comm_a.push(add(&mut hg, "a_burst".into(), &burst));

        let mut comm_b = Vec::new();
        for i in 0..4 {
            let s = series(move |k| {
                if (50..54).contains(&k) {
                    480.0 + i as f64
                } else {
                    12.0
                }
            });
            comm_b.push(add(&mut hg, format!("b{i}"), &s));
        }
        // densely connect each community
        for set in [&comm_a, &comm_b] {
            for i in 0..set.len() {
                for j in (i + 1)..set.len() {
                    hg.add_pg_edge(set[i], set[j], ["E"], props! {}).unwrap();
                }
            }
        }
        // a single bridge
        hg.add_pg_edge(comm_a[0], comm_b[0], ["BRIDGE"], props! {})
            .unwrap();
        (hg, comm_a, comm_b)
    }

    #[test]
    fn confirms_true_anomaly_and_clears_peer_normal_bursts() {
        let (hg, comm_a, comm_b) = instance();
        let results = contextual_anomalies(&hg, DetectConfig::default());
        let by_vertex: HashMap<VertexId, &ContextualAnomaly> =
            results.iter().map(|r| (r.vertex, r)).collect();
        // the bursty vertex in the smooth community is confirmed
        let true_anom = comm_a[4];
        assert!(
            by_vertex[&true_anom].confirmed,
            "bursty-in-smooth-community must be confirmed: {:?}",
            by_vertex[&true_anom]
        );
        // smooth members are not confirmed
        for &v in &comm_a[..4] {
            assert!(!by_vertex[&v].confirmed, "smooth member flagged: {v}");
        }
        // community-B members all burst: raw score is high but the
        // community context clears them
        for &v in &comm_b {
            let r = by_vertex[&v];
            assert!(r.raw_score > 3.0, "B members do have raw bursts");
            assert!(!r.confirmed, "peer-normal burst must be cleared: {r:?}");
        }
    }

    #[test]
    fn vertices_without_series_are_skipped() {
        let mut hg = HyGraph::new();
        hg.add_pg_vertex(["X"], props! {});
        let results = contextual_anomalies(&hg, DetectConfig::default());
        assert!(results.is_empty());
    }

    #[test]
    fn singleton_community_falls_back_to_raw() {
        let mut hg = HyGraph::new();
        let s = series(|k| if k == 50 { 400.0 } else { 1.0 });
        let sid = hg.add_univariate_series("lone", &s);
        let v = hg.add_ts_vertex(["C"], sid).unwrap();
        let results = contextual_anomalies(&hg, DetectConfig::default());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].vertex, v);
        assert!(results[0].confirmed, "no peers: raw anomaly stands");
    }
}
