//! Hybrid embeddings and similarity search (paper §6 rows E and the
//! GraphRAG integration plan).
//!
//! * **FastRP** (Chen et al., CIKM'19): very sparse random projection of
//!   the adjacency structure, iterated over `k` hops with per-hop
//!   weights — the structural half the paper names.
//! * **Series features + PCA**: the temporal half — the statistical
//!   feature vector of each vertex's series, optionally PCA-reduced.
//! * **Hybrid**: L2-normalised concatenation of both halves.
//! * **[`SimilarityIndex`]**: exact cosine top-k over embeddings — the
//!   "query API + vector similarity search" step of the paper's
//!   GraphRAG plan.

use hygraph_core::HyGraph;
use hygraph_query::hybrid::vertex_series;
use hygraph_ts::ops::{features, pca::Pca};
use hygraph_types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// FastRP configuration.
#[derive(Clone, Copy, Debug)]
pub struct FastRpConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Per-hop weights (length = number of propagation iterations).
    pub iteration_weights: [f64; 3],
    /// Sparsity parameter `s`: entries are ±√s with probability 1/(2s).
    pub sparsity: f64,
    /// RNG seed for the projection matrix.
    pub seed: u64,
}

impl Default for FastRpConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            iteration_weights: [0.0, 1.0, 1.0],
            sparsity: 3.0,
            seed: 17,
        }
    }
}

/// Structural FastRP embeddings over the undirected topology.
pub fn fastrp(hg: &HyGraph, cfg: FastRpConfig) -> HashMap<VertexId, Vec<f64>> {
    let g = hg.topology();
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let n = ids.len();
    if n == 0 {
        return HashMap::new();
    }
    let index: HashMap<VertexId, usize> = ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // R: n × dim very sparse random matrix (the hop-0 features)
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let s = cfg.sparsity.max(1.0);
    let scale = s.sqrt();
    let mut current: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..cfg.dim)
                .map(|_| {
                    let u: f64 = rng.random();
                    if u < 1.0 / (2.0 * s) {
                        scale
                    } else if u < 1.0 / s {
                        -scale
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let mut acc: Vec<Vec<f64>> = vec![vec![0.0; cfg.dim]; n];
    add_weighted(&mut acc, &current, cfg.iteration_weights[0]);

    for &w in &cfg.iteration_weights[1..] {
        // propagate: next[v] = mean of current[neighbours]
        let mut next = vec![vec![0.0; cfg.dim]; n];
        for (i, &v) in ids.iter().enumerate() {
            let mut count = 0usize;
            for (_, nbr) in g.neighbors(v) {
                let j = index[&nbr];
                for (slot, x) in next[i].iter_mut().zip(&current[j]) {
                    *slot += x;
                }
                count += 1;
            }
            if count > 0 {
                for slot in next[i].iter_mut() {
                    *slot /= count as f64;
                }
            }
        }
        normalize_rows(&mut next);
        add_weighted(&mut acc, &next, w);
        current = next;
    }
    normalize_rows(&mut acc);
    ids.into_iter().zip(acc).collect()
}

fn add_weighted(acc: &mut [Vec<f64>], src: &[Vec<f64>], w: f64) {
    if w == 0.0 {
        return;
    }
    for (a, s) in acc.iter_mut().zip(src) {
        for (x, y) in a.iter_mut().zip(s) {
            *x += w * y;
        }
    }
}

fn normalize_rows(rows: &mut [Vec<f64>]) {
    for r in rows {
        let norm: f64 = r.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > f64::EPSILON {
            r.iter_mut().for_each(|x| *x /= norm);
        }
    }
}

/// Temporal embeddings: the statistical feature vector of each vertex's
/// associated series (zero vector for vertices without one), column-wise
/// z-normalised, optionally PCA-reduced to `pca_dims`.
pub fn series_embedding(hg: &HyGraph, pca_dims: Option<usize>) -> HashMap<VertexId, Vec<f64>> {
    let ids: Vec<VertexId> = hg.topology().vertex_ids().collect();
    let mut rows: Vec<Vec<f64>> = ids
        .iter()
        .map(|&v| {
            vertex_series(hg, v)
                .map(|s| features::feature_vector(&s).to_vec())
                .unwrap_or_else(|| vec![0.0; features::FEATURE_DIM])
        })
        .collect();
    features::normalize_columns(&mut rows);
    if let Some(k) = pca_dims {
        if let Some(p) = Pca::fit(&rows, k) {
            rows = p.transform_all(&rows);
        }
    }
    ids.into_iter().zip(rows).collect()
}

/// Hybrid embeddings: L2-normalised concatenation of FastRP structure
/// and (PCA-reduced) series features — "specialized embeddings to
/// capture the topological *and* temporal data characteristics".
pub fn hybrid_embedding(
    hg: &HyGraph,
    cfg: FastRpConfig,
    pca_dims: Option<usize>,
) -> HashMap<VertexId, Vec<f64>> {
    let _t = hygraph_metrics::OpTimer::new(hygraph_metrics::OpClass::EEmbed);
    let structural = fastrp(hg, cfg);
    let temporal = series_embedding(hg, pca_dims);
    let mut out = HashMap::with_capacity(structural.len());
    for (v, mut s) in structural {
        let t = temporal.get(&v).cloned().unwrap_or_default();
        s.extend(t);
        let norm: f64 = s.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > f64::EPSILON {
            s.iter_mut().for_each(|x| *x /= norm);
        }
        out.insert(v, s);
    }
    out
}

/// Exact cosine-similarity top-k index over vertex embeddings.
pub struct SimilarityIndex {
    entries: Vec<(VertexId, Vec<f64>)>,
}

impl SimilarityIndex {
    /// Builds the index (copies the embeddings, sorted by vertex id for
    /// determinism).
    pub fn build(embeddings: &HashMap<VertexId, Vec<f64>>) -> Self {
        let mut entries: Vec<(VertexId, Vec<f64>)> =
            embeddings.iter().map(|(&v, e)| (v, e.clone())).collect();
        entries.sort_by_key(|&(v, _)| v);
        Self { entries }
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k` nearest vertices to `query` by cosine similarity
    /// (excluding exact id `exclude` if given), best first.
    pub fn top_k(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<VertexId>,
    ) -> Vec<(VertexId, f64)> {
        let mut scored: Vec<(VertexId, f64)> = self
            .entries
            .iter()
            .filter(|(v, _)| Some(*v) != exclude)
            .map(|(v, e)| (*v, features::cosine(query, e)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// The `k` vertices most similar to an already-indexed vertex.
    pub fn neighbours_of(&self, v: VertexId, k: usize) -> Vec<(VertexId, f64)> {
        let Some((_, e)) = self.entries.iter().find(|(x, _)| *x == v) else {
            return Vec::new();
        };
        let e = e.clone();
        self.top_k(&e, k, Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_ts::TimeSeries;
    use hygraph_types::{props, Duration, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Two 5-cliques bridged by one edge.
    fn two_cliques() -> (HyGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut hg = HyGraph::new();
        let mk = |hg: &mut HyGraph| (0..5).map(|_| hg.add_pg_vertex(["N"], props! {})).collect();
        let a: Vec<VertexId> = mk(&mut hg);
        let b: Vec<VertexId> = mk(&mut hg);
        for set in [&a, &b] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    hg.add_pg_edge(set[i], set[j], ["E"], props! {}).unwrap();
                }
            }
        }
        hg.add_pg_edge(a[0], b[0], ["BRIDGE"], props! {}).unwrap();
        (hg, a, b)
    }

    fn cos(a: &[f64], b: &[f64]) -> f64 {
        features::cosine(a, b)
    }

    #[test]
    fn fastrp_separates_cliques() {
        let (hg, a, b) = two_cliques();
        let emb = fastrp(&hg, FastRpConfig::default());
        // same-clique interior vertices are more similar than cross-clique
        let within = cos(&emb[&a[1]], &emb[&a[2]]);
        let across = cos(&emb[&a[1]], &emb[&b[2]]);
        assert!(
            within > across,
            "within-clique {within} should beat across {across}"
        );
    }

    #[test]
    fn fastrp_deterministic_and_normalised() {
        let (hg, _, _) = two_cliques();
        let e1 = fastrp(&hg, FastRpConfig::default());
        let e2 = fastrp(&hg, FastRpConfig::default());
        assert_eq!(e1, e2);
        for e in e1.values() {
            let norm: f64 = e.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9 || norm < 1e-9);
        }
        assert!(fastrp(&HyGraph::new(), FastRpConfig::default()).is_empty());
    }

    #[test]
    fn series_embedding_separates_behaviours() {
        let mut hg = HyGraph::new();
        let mk_ts = |hg: &mut HyGraph, name: &str, f: fn(usize) -> f64| {
            let s = TimeSeries::generate(ts(0), Duration::from_millis(1), 100, f);
            let sid = hg.add_univariate_series(name, &s);
            hg.add_ts_vertex(["C"], sid).unwrap()
        };
        let flat1 = mk_ts(&mut hg, "f1", |_| 10.0);
        let flat2 = mk_ts(&mut hg, "f2", |_| 10.5);
        let bursty = mk_ts(&mut hg, "b", |i| if i > 90 { 500.0 } else { 10.0 });
        let emb = series_embedding(&hg, None);
        let d_flat = features::euclidean(&emb[&flat1], &emb[&flat2]);
        let d_burst = features::euclidean(&emb[&flat1], &emb[&bursty]);
        assert!(d_flat < d_burst);
    }

    #[test]
    fn series_embedding_pca_reduces_dim() {
        let (hg, _, _) = two_cliques();
        let emb = series_embedding(&hg, Some(3));
        for e in emb.values() {
            assert!(e.len() <= 3);
        }
    }

    #[test]
    fn hybrid_embedding_concatenates() {
        let (hg, a, _) = two_cliques();
        let cfg = FastRpConfig::default();
        let emb = hybrid_embedding(&hg, cfg, Some(4));
        let e = &emb[&a[0]];
        assert!(e.len() > cfg.dim, "structure + temporal parts");
        let norm: f64 = e.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_index_topk() {
        let (hg, a, _) = two_cliques();
        let emb = fastrp(&hg, FastRpConfig::default());
        let idx = SimilarityIndex::build(&emb);
        assert_eq!(idx.len(), 10);
        let nn = idx.neighbours_of(a[1], 4);
        assert_eq!(nn.len(), 4);
        // the top hits for an interior clique-A vertex are in clique A
        let in_a = nn.iter().filter(|(v, _)| a.contains(v)).count();
        assert!(in_a >= 3, "expected mostly clique-A neighbours, got {nn:?}");
        // scores sorted descending
        for w in nn.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // query for a missing vertex
        assert!(idx.neighbours_of(VertexId::new(999), 3).is_empty());
    }
}
