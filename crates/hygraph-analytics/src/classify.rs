//! Cluster classification and instance annotation (Table 2, row C1; the
//! "classify clusters as ordinary/suspicious and annotate the HyGraph
//! instance" step of the paper's pipeline).

use crate::cluster::Clustering;
use hygraph_core::HyGraph;
use hygraph_types::{Interval, Result, SubgraphId, Value, VertexId};
use std::collections::HashMap;

/// Verdict for one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Normal behaviour.
    Ordinary,
    /// Flagged for review.
    Suspicious,
}

impl Verdict {
    /// The label written onto annotated subgraphs.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ordinary => "Ordinary",
            Verdict::Suspicious => "Suspicious",
        }
    }
}

/// A scored, classified cluster.
#[derive(Clone, Debug)]
pub struct ClusterVerdict {
    /// Cluster id in the source clustering.
    pub cluster: usize,
    /// Members.
    pub members: Vec<VertexId>,
    /// Mean member score.
    pub mean_score: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Classifies clusters by thresholding the mean of a per-vertex score
/// (e.g. confirmed-anomaly scores from `detect`): clusters whose mean
/// score exceeds `threshold` are suspicious.
pub fn classify_clusters(
    clustering: &Clustering,
    scores: &HashMap<VertexId, f64>,
    threshold: f64,
) -> Vec<ClusterVerdict> {
    let _t = hygraph_metrics::OpTimer::new(hygraph_metrics::OpClass::CFeature);
    clustering
        .members()
        .into_iter()
        .enumerate()
        .map(|(cluster, members)| {
            let vals: Vec<f64> = members
                .iter()
                .map(|v| scores.get(v).copied().unwrap_or(0.0))
                .collect();
            let mean_score = if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            let verdict = if mean_score > threshold {
                Verdict::Suspicious
            } else {
                Verdict::Ordinary
            };
            ClusterVerdict {
                cluster,
                members,
                mean_score,
                verdict,
            }
        })
        .collect()
}

/// Annotates the instance with the verdicts: each cluster becomes a
/// logical subgraph labelled with its verdict, carrying `cluster_id` and
/// `score` properties, with all members added for the full time range.
/// Returns the created subgraph ids, index-aligned with `verdicts`.
pub fn annotate_instance(hg: &mut HyGraph, verdicts: &[ClusterVerdict]) -> Result<Vec<SubgraphId>> {
    let mut out = Vec::with_capacity(verdicts.len());
    for v in verdicts {
        let sg = hg.create_subgraph(
            [v.verdict.label()],
            hygraph_types::props! {
                "cluster_id" => v.cluster as i64,
                "score" => v.mean_score
            },
            Interval::ALL,
        );
        for &member in &v.members {
            hg.add_subgraph_vertex(sg, member, Interval::ALL)?;
        }
        out.push(sg);
    }
    Ok(out)
}

/// Reads back the verdict of a vertex from instance annotations: the
/// label of the most recently created verdict subgraph containing it.
pub fn verdict_of(hg: &HyGraph, v: VertexId) -> Option<Verdict> {
    let mut found = None;
    for sg in hg.subgraphs() {
        let is_member = sg.vertex_members().iter().any(|&(m, _)| m == v);
        if !is_member {
            continue;
        }
        if sg.has_label(Verdict::Suspicious.label()) {
            found = Some(Verdict::Suspicious);
        } else if sg.has_label(Verdict::Ordinary.label()) {
            found = Some(Verdict::Ordinary);
        }
    }
    found
}

/// Convenience: the `score` property of the verdict subgraph containing
/// `v`, if annotated.
pub fn score_of(hg: &HyGraph, v: VertexId) -> Option<f64> {
    let mut found = None;
    for sg in hg.subgraphs() {
        if sg.vertex_members().iter().any(|&(m, _)| m == v) {
            if let Some(Value::Float(s)) = sg.props.static_value("score") {
                found = Some(*s);
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn clustering(groups: &[&[u64]]) -> Clustering {
        let mut assignment = HashMap::new();
        for (c, g) in groups.iter().enumerate() {
            for &v in *g {
                assignment.insert(VertexId::new(v), c);
            }
        }
        Clustering {
            assignment,
            count: groups.len(),
            centroids: Vec::new(),
        }
    }

    #[test]
    fn classify_by_mean_score() {
        let c = clustering(&[&[0, 1], &[2, 3]]);
        let mut scores = HashMap::new();
        scores.insert(VertexId::new(0), 9.0);
        scores.insert(VertexId::new(1), 7.0);
        scores.insert(VertexId::new(2), 0.1);
        // vertex 3 missing -> 0
        let verdicts = classify_clusters(&c, &scores, 1.0);
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0].verdict, Verdict::Suspicious);
        assert_eq!(verdicts[0].mean_score, 8.0);
        assert_eq!(verdicts[1].verdict, Verdict::Ordinary);
        assert!((verdicts[1].mean_score - 0.05).abs() < 1e-12);
    }

    #[test]
    fn annotate_and_read_back() {
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["U"], props! {});
        let b = hg.add_pg_vertex(["U"], props! {});
        let c = clustering(&[&[0], &[1]]);
        let mut scores = HashMap::new();
        scores.insert(a, 10.0);
        scores.insert(b, 0.0);
        let verdicts = classify_clusters(&c, &scores, 1.0);
        let sgs = annotate_instance(&mut hg, &verdicts).unwrap();
        assert_eq!(sgs.len(), 2);
        assert_eq!(verdict_of(&hg, a), Some(Verdict::Suspicious));
        assert_eq!(verdict_of(&hg, b), Some(Verdict::Ordinary));
        assert_eq!(score_of(&hg, a), Some(10.0));
        assert!(hg.validate().is_ok());
        // unannotated vertex
        let d = hg.add_pg_vertex(["U"], props! {});
        assert_eq!(verdict_of(&hg, d), None);
    }

    #[test]
    fn empty_cluster_is_ordinary() {
        let c = Clustering {
            assignment: HashMap::new(),
            count: 1,
            centroids: Vec::new(),
        };
        let verdicts = classify_clusters(&c, &HashMap::new(), 0.5);
        assert_eq!(verdicts[0].verdict, Verdict::Ordinary);
        assert_eq!(verdicts[0].mean_score, 0.0);
    }
}
