//! Clustering over hybrid feature vectors (Table 2, row C2).
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++-style deterministic
//!   seeding (farthest-point), for feature vectors from any source;
//! * [`connectivity_constrained`] — the graph-side C2 notion: k-means
//!   clusters refined so every cluster is connected in the topology
//!   (split disconnected clusters into their components).

use hygraph_core::HyGraph;
use hygraph_graph::algorithms::components::UnionFind;
use hygraph_ts::ops::features::euclidean;
use hygraph_types::VertexId;
use std::collections::HashMap;

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Vertex → cluster id (0..count).
    pub assignment: HashMap<VertexId, usize>,
    /// Number of clusters.
    pub count: usize,
    /// Cluster centroids (empty for constrained refinements).
    pub centroids: Vec<Vec<f64>>,
}

impl Clustering {
    /// Members per cluster, sorted.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.count];
        let mut items: Vec<(VertexId, usize)> =
            self.assignment.iter().map(|(&v, &c)| (v, c)).collect();
        items.sort_unstable();
        for (v, c) in items {
            out[c].push(v);
        }
        out
    }

    /// Cluster of `v`.
    pub fn of(&self, v: VertexId) -> Option<usize> {
        self.assignment.get(&v).copied()
    }
}

/// Lloyd's k-means with farthest-point seeding (deterministic).
/// `k` is clamped to the number of points. Empty input yields an empty
/// clustering.
pub fn kmeans(points: &HashMap<VertexId, Vec<f64>>, k: usize, max_iter: usize) -> Clustering {
    let mut ids: Vec<VertexId> = points.keys().copied().collect();
    ids.sort_unstable();
    let n = ids.len();
    if n == 0 || k == 0 {
        return Clustering {
            assignment: HashMap::new(),
            count: 0,
            centroids: Vec::new(),
        };
    }
    let k = k.min(n);
    let dim = points[&ids[0]].len();

    // farthest-point seeding from the lowest-id vertex
    let mut centroids: Vec<Vec<f64>> = vec![points[&ids[0]].clone()];
    while centroids.len() < k {
        let far = ids
            .iter()
            .max_by(|&&a, &&b| {
                let da = min_dist(&points[&a], &centroids);
                let db = min_dist(&points[&b], &centroids);
                da.total_cmp(&db).then_with(|| b.cmp(&a))
            })
            .expect("non-empty");
        centroids.push(points[far].clone());
    }

    let mut assignment: Vec<usize> = vec![0; n];
    for _ in 0..max_iter {
        // assign
        let mut changed = false;
        for (i, v) in ids.iter().enumerate() {
            let best = nearest(&points[v], &centroids);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // update
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in ids.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (slot, x) in sums[c].iter_mut().zip(&points[v]) {
                *slot += x;
            }
        }
        for (c, sum) in sums.iter_mut().enumerate() {
            if counts[c] > 0 {
                sum.iter_mut().for_each(|x| *x /= counts[c] as f64);
                centroids[c] = sum.clone();
            }
        }
        if !changed {
            break;
        }
    }

    // renumber non-empty clusters densely
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut final_assignment = HashMap::with_capacity(n);
    for (i, &v) in ids.iter().enumerate() {
        let next = remap.len();
        let c = *remap.entry(assignment[i]).or_insert(next);
        final_assignment.insert(v, c);
    }
    let mut final_centroids = vec![Vec::new(); remap.len()];
    for (old, new) in remap {
        final_centroids[new] = centroids[old].clone();
    }
    Clustering {
        count: final_centroids.len(),
        assignment: final_assignment,
        centroids: final_centroids,
    }
}

fn min_dist(p: &[f64], centroids: &[Vec<f64>]) -> f64 {
    centroids
        .iter()
        .map(|c| euclidean(p, c))
        .fold(f64::INFINITY, f64::min)
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| euclidean(p, a).total_cmp(&euclidean(p, b)))
        .map(|(i, _)| i)
        .expect("k >= 1")
}

/// Refines a clustering so every cluster is connected in the topology:
/// each (cluster ∩ connected-component) becomes its own cluster.
pub fn connectivity_constrained(hg: &HyGraph, base: &Clustering) -> Clustering {
    let g = hg.topology();
    let mut uf = UnionFind::new(g.vertex_capacity());
    for e in g.edges() {
        // only union endpoints sharing a base cluster
        if base.of(e.src).is_some() && base.of(e.src) == base.of(e.dst) {
            uf.union(e.src.index(), e.dst.index());
        }
    }
    let mut remap: HashMap<(usize, usize), usize> = HashMap::new();
    let mut assignment = HashMap::with_capacity(base.assignment.len());
    let mut ids: Vec<VertexId> = base.assignment.keys().copied().collect();
    ids.sort_unstable();
    for v in ids {
        let c = base.of(v).expect("listed member");
        let root = uf.find(v.index());
        let next = remap.len();
        let new = *remap.entry((c, root)).or_insert(next);
        assignment.insert(v, new);
    }
    Clustering {
        count: remap.len(),
        assignment,
        centroids: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn pts(groups: &[(f64, f64, usize)]) -> HashMap<VertexId, Vec<f64>> {
        // groups: (cx, cy, count) — points jittered deterministically
        let mut out = HashMap::new();
        let mut id = 0u64;
        for &(cx, cy, n) in groups {
            for i in 0..n {
                let jx = (i as f64 * 0.37).sin() * 0.1;
                let jy = (i as f64 * 0.53).cos() * 0.1;
                out.insert(VertexId::new(id), vec![cx + jx, cy + jy]);
                id += 1;
            }
        }
        out
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let points = pts(&[(0.0, 0.0, 10), (100.0, 0.0, 10), (0.0, 100.0, 10)]);
        let c = kmeans(&points, 3, 50);
        assert_eq!(c.count, 3);
        // all points of one blob share a cluster
        for blob in 0..3 {
            let base = c.of(VertexId::new(blob as u64 * 10)).unwrap();
            for i in 0..10 {
                assert_eq!(c.of(VertexId::new(blob as u64 * 10 + i)).unwrap(), base);
            }
        }
    }

    #[test]
    fn kmeans_k_clamped() {
        let points = pts(&[(0.0, 0.0, 3)]);
        let c = kmeans(&points, 10, 10);
        assert!(c.count <= 3);
        let empty = kmeans(&HashMap::new(), 3, 10);
        assert_eq!(empty.count, 0);
        let zero_k = kmeans(&points, 0, 10);
        assert_eq!(zero_k.count, 0);
    }

    #[test]
    fn kmeans_deterministic() {
        let points = pts(&[(0.0, 0.0, 8), (50.0, 50.0, 8)]);
        let a = kmeans(&points, 2, 50);
        let b = kmeans(&points, 2, 50);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn members_partition_all_points() {
        let points = pts(&[(0.0, 0.0, 5), (9.0, 9.0, 5)]);
        let c = kmeans(&points, 2, 50);
        let total: usize = c.members().iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn connectivity_splits_disconnected_cluster() {
        // two disconnected pairs with identical features: k-means puts all
        // four in one cluster, the constraint splits them
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["N"], props! {});
        let b = hg.add_pg_vertex(["N"], props! {});
        let c = hg.add_pg_vertex(["N"], props! {});
        let d = hg.add_pg_vertex(["N"], props! {});
        hg.add_pg_edge(a, b, ["E"], props! {}).unwrap();
        hg.add_pg_edge(c, d, ["E"], props! {}).unwrap();
        let mut points = HashMap::new();
        for v in [a, b, c, d] {
            points.insert(v, vec![1.0, 1.0]);
        }
        let base = kmeans(&points, 1, 10);
        assert_eq!(base.count, 1);
        let refined = connectivity_constrained(&hg, &base);
        assert_eq!(refined.count, 2);
        assert_eq!(refined.of(a), refined.of(b));
        assert_eq!(refined.of(c), refined.of(d));
        assert_ne!(refined.of(a), refined.of(c));
    }

    #[test]
    fn connectivity_preserves_connected_clusters() {
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["N"], props! {});
        let b = hg.add_pg_vertex(["N"], props! {});
        hg.add_pg_edge(a, b, ["E"], props! {}).unwrap();
        let mut points = HashMap::new();
        points.insert(a, vec![0.0]);
        points.insert(b, vec![0.1]);
        let base = kmeans(&points, 1, 10);
        let refined = connectivity_constrained(&hg, &base);
        assert_eq!(refined.count, 1);
    }
}
