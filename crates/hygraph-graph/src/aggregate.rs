//! Graph aggregation / grouping (Table 2, row Q2 — graph side).
//!
//! Gradoop-style structural grouping: vertices are partitioned by a key
//! (labels or a property), each group becomes a **super-vertex**, and all
//! edges between groups collapse into **super-edges** carrying counts and
//! property aggregates. The paper uses exactly this to "aggregate edges
//! into super-edges, storing edge information in a time series format" —
//! the `edge_time_series` helper produces that series from the grouped
//! edges' validity start times.

use crate::graph::TemporalGraph;
use hygraph_types::{props, PropertyMap, Timestamp, Value, VertexId};
use std::collections::HashMap;

/// How vertices are assigned to groups.
pub enum GroupBy<'a> {
    /// Group by the (sorted) label set.
    Labels,
    /// Group by the string form of a static property value.
    Property(&'a str),
    /// Arbitrary key function.
    Key(Box<dyn Fn(&crate::graph::VertexData) -> String + 'a>),
}

/// The result of a grouping: a summary graph plus the membership map.
#[derive(Debug)]
pub struct GroupedGraph {
    /// The summary graph: one vertex per group, one edge per ordered
    /// group pair with at least one underlying edge.
    pub summary: TemporalGraph,
    /// Group key of each summary vertex.
    pub group_keys: HashMap<VertexId, String>,
    /// Original vertex → summary vertex.
    pub membership: HashMap<VertexId, VertexId>,
}

/// Groups `g` by the given key. Super-vertices carry `count`; super-edges
/// carry `count` plus `sum_<key>` for every numeric static edge property
/// named in `edge_agg_props`.
pub fn group_by(g: &TemporalGraph, key: GroupBy<'_>, edge_agg_props: &[&str]) -> GroupedGraph {
    let key_of = |v: &crate::graph::VertexData| -> String {
        match &key {
            GroupBy::Labels => {
                let mut ls: Vec<&str> = v.labels.iter().map(|l| l.as_str()).collect();
                ls.sort_unstable();
                ls.join("+")
            }
            GroupBy::Property(p) => v
                .props
                .static_value(p)
                .map(|val| val.to_string())
                .unwrap_or_else(|| "<none>".to_owned()),
            GroupBy::Key(f) => f(v),
        }
    };

    let mut summary = TemporalGraph::new();
    let mut group_vertex: HashMap<String, VertexId> = HashMap::new();
    let mut group_count: HashMap<VertexId, i64> = HashMap::new();
    let mut membership: HashMap<VertexId, VertexId> = HashMap::new();

    // deterministic group creation order: iterate vertices in id order
    for v in g.vertices() {
        let k = key_of(v);
        let sv = *group_vertex.entry(k.clone()).or_insert_with(|| {
            summary.add_vertex([format!("Group:{k}")], props! {"key" => k.clone()})
        });
        *group_count.entry(sv).or_insert(0) += 1;
        membership.insert(v.id, sv);
    }
    for (&sv, &count) in &group_count {
        summary
            .vertex_mut(sv)
            .expect("just created")
            .props
            .set("count", count);
    }

    // collapse edges
    struct EdgeAcc {
        count: i64,
        sums: Vec<f64>,
    }
    let mut edge_acc: HashMap<(VertexId, VertexId), EdgeAcc> = HashMap::new();
    for e in g.edges() {
        let (Some(&sf), Some(&st)) = (membership.get(&e.src), membership.get(&e.dst)) else {
            continue;
        };
        let acc = edge_acc.entry((sf, st)).or_insert_with(|| EdgeAcc {
            count: 0,
            sums: vec![0.0; edge_agg_props.len()],
        });
        acc.count += 1;
        for (i, p) in edge_agg_props.iter().enumerate() {
            if let Some(x) = e.props.static_value(p).and_then(Value::as_f64) {
                acc.sums[i] += x;
            }
        }
    }
    let mut pairs: Vec<_> = edge_acc.into_iter().collect();
    pairs.sort_by_key(|&((a, b), _)| (a, b));
    for ((sf, st), acc) in pairs {
        let mut props = PropertyMap::new();
        props.set("count", acc.count);
        for (i, p) in edge_agg_props.iter().enumerate() {
            props.set(format!("sum_{p}"), acc.sums[i]);
        }
        summary
            .add_edge(sf, st, ["GROUPED"], props)
            .expect("group vertices exist");
    }

    let group_keys = group_vertex.into_iter().map(|(k, v)| (v, k)).collect();

    GroupedGraph {
        summary,
        group_keys,
        membership,
    }
}

/// The paper's super-edge → time-series transform: collects the validity
/// start times of all edges between two vertex groups and bins them into
/// counts per `bucket` — an edge-activity time series.
pub fn edge_time_series(
    g: &TemporalGraph,
    grouped: &GroupedGraph,
    from_group: VertexId,
    to_group: VertexId,
    bucket: hygraph_types::Duration,
) -> hygraph_ts::TimeSeries {
    let mut stamps: Vec<Timestamp> = g
        .edges()
        .filter(|e| {
            grouped.membership.get(&e.src) == Some(&from_group)
                && grouped.membership.get(&e.dst) == Some(&to_group)
        })
        .map(|e| e.validity.start)
        .filter(|t| *t != Timestamp::MIN)
        .collect();
    stamps.sort_unstable();
    let mut out = hygraph_ts::TimeSeries::new();
    for t in stamps {
        let key = t.truncate(bucket);
        match out.last() {
            Some((last_t, n)) if last_t == key => {
                out.upsert(key, n + 1.0);
            }
            _ => out.upsert(key, 1.0),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Duration, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn two_group_graph() -> TemporalGraph {
        let mut g = TemporalGraph::new();
        let u1 = g.add_vertex(["User"], props! {"city" => "lyon"});
        let u2 = g.add_vertex(["User"], props! {"city" => "leipzig"});
        let m1 = g.add_vertex(["Merchant"], props! {"city" => "lyon"});
        let m2 = g.add_vertex(["Merchant"], props! {"city" => "lyon"});
        g.add_edge(u1, m1, ["TX"], props! {"amount" => 10.0})
            .unwrap();
        g.add_edge(u1, m2, ["TX"], props! {"amount" => 20.0})
            .unwrap();
        g.add_edge(u2, m1, ["TX"], props! {"amount" => 5.0})
            .unwrap();
        g.add_edge(m1, m2, ["PEER"], props! {}).unwrap();
        g
    }

    #[test]
    fn group_by_labels() {
        let g = two_group_graph();
        let grouped = group_by(&g, GroupBy::Labels, &["amount"]);
        assert_eq!(grouped.summary.vertex_count(), 2);
        // counts
        let user_group = grouped
            .summary
            .vertices()
            .find(|v| v.props.static_value("key").unwrap().as_str() == Some("User"))
            .unwrap();
        assert_eq!(
            user_group.props.static_value("count").unwrap().as_i64(),
            Some(2)
        );
        // super-edge User->Merchant has count 3, sum 35
        let se = grouped
            .summary
            .out_edges(user_group.id)
            .next()
            .expect("super edge exists");
        assert_eq!(se.props.static_value("count").unwrap().as_i64(), Some(3));
        assert_eq!(
            se.props.static_value("sum_amount").unwrap().as_f64(),
            Some(35.0)
        );
        // membership covers all vertices
        assert_eq!(grouped.membership.len(), 4);
    }

    #[test]
    fn group_by_property() {
        let g = two_group_graph();
        let grouped = group_by(&g, GroupBy::Property("city"), &[]);
        assert_eq!(grouped.summary.vertex_count(), 2, "lyon + leipzig");
        let lyon = grouped
            .summary
            .vertices()
            .find(|v| v.props.static_value("key").unwrap().as_str() == Some("lyon"))
            .unwrap();
        assert_eq!(lyon.props.static_value("count").unwrap().as_i64(), Some(3));
        // self-edge within lyon (m1 -> m2 PEER and u? no, u1 is lyon too: u1->m1, u1->m2, m1->m2 all intra-lyon)
        let self_edge = grouped
            .summary
            .out_edges(lyon.id)
            .find(|e| e.dst == lyon.id)
            .expect("intra-group super edge");
        assert_eq!(
            self_edge.props.static_value("count").unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn group_by_custom_key() {
        let g = two_group_graph();
        let grouped = group_by(
            &g,
            GroupBy::Key(Box::new(|v| {
                if v.has_label("User") {
                    "people".into()
                } else {
                    "places".into()
                }
            })),
            &[],
        );
        assert_eq!(grouped.summary.vertex_count(), 2);
        let keys: Vec<&String> = grouped.group_keys.values().collect();
        assert!(keys.contains(&&"people".to_owned()));
    }

    #[test]
    fn missing_property_groups_together() {
        let mut g = TemporalGraph::new();
        g.add_vertex(["A"], props! {});
        g.add_vertex(["B"], props! {});
        let grouped = group_by(&g, GroupBy::Property("nope"), &[]);
        assert_eq!(grouped.summary.vertex_count(), 1);
    }

    #[test]
    fn empty_graph_grouping() {
        let g = TemporalGraph::new();
        let grouped = group_by(&g, GroupBy::Labels, &[]);
        assert_eq!(grouped.summary.vertex_count(), 0);
        assert_eq!(grouped.summary.edge_count(), 0);
    }

    #[test]
    fn edge_time_series_counts_per_bucket() {
        let mut g = TemporalGraph::new();
        let u = g.add_vertex(["User"], props! {});
        let m = g.add_vertex(["Merchant"], props! {});
        for i in 0..6 {
            g.add_edge_valid(
                u,
                m,
                ["TX"],
                props! {},
                Interval::from(ts(i * 40)), // 0,40,80,120,160,200
            )
            .unwrap();
        }
        let grouped = group_by(&g, GroupBy::Labels, &[]);
        let ug = grouped.membership[&u];
        let mg = grouped.membership[&m];
        let series = edge_time_series(&g, &grouped, ug, mg, Duration::from_millis(100));
        // buckets: [0,100): 3 edges (0,40,80); [100,200): 2; [200,300): 1
        assert_eq!(series.len(), 3);
        assert_eq!(series.values(), &[3.0, 2.0, 1.0]);
        assert_eq!(series.times()[0], ts(0));
    }
}
