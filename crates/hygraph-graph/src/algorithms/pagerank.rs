//! PageRank (power iteration with dangling-mass redistribution).
//!
//! The iteration is *pull-based*: each vertex gathers `rank/out_deg`
//! contributions from its in-neighbours in a fixed adjacency order.
//! Because every vertex's gather is an independent pure function of the
//! previous iteration's snapshot, the per-vertex loop parallelises
//! without changing a single bit of the result — the floating-point
//! summation order inside each gather is identical on any thread, and
//! the dangling-mass and convergence-delta reductions stay sequential.

use crate::graph::TemporalGraph;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::VertexId;
use rayon::prelude::*;
use std::collections::HashMap;

/// PageRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an out-edge).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iter: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iter: 100,
            tol: 1e-9,
        }
    }
}

/// Computes PageRank over live vertices; scores sum to 1. Returns an
/// empty map for an empty graph. Execution mode is decided automatically
/// from graph size (see [`pagerank_mode`]).
pub fn pagerank(g: &TemporalGraph, cfg: PageRankConfig) -> HashMap<VertexId, f64> {
    pagerank_mode(g, cfg, ExecMode::Auto)
}

/// [`pagerank`] with an explicit execution mode. The parallel path is
/// bit-identical to the sequential one for any thread count: both gather
/// in-contributions per vertex in the same adjacency order, and all
/// cross-vertex reductions (dangling mass, L1 delta) are sequential.
pub fn pagerank_mode(
    g: &TemporalGraph,
    cfg: PageRankConfig,
    mode: ExecMode,
) -> HashMap<VertexId, f64> {
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let n = ids.len();
    if n == 0 {
        return HashMap::new();
    }
    // dense index over live vertices
    let mut dense: HashMap<VertexId, usize> = HashMap::with_capacity(n);
    for (i, &v) in ids.iter().enumerate() {
        dense.insert(v, i);
    }
    let out_deg: Vec<usize> = ids.iter().map(|&v| g.out_degree(v)).collect();
    // in-adjacency in deterministic order: source edge order per vertex,
    // one entry per (multi-)edge, mirroring the push formulation
    let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, &v) in ids.iter().enumerate() {
        for (_, nbr) in g.neighbors_out(v) {
            in_adj[dense[&nbr]].push(i as u32);
        }
    }

    let parallel = should_parallelize(mode, n);
    let mut rank = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..cfg.max_iter {
        // per-vertex out-shares and total dangling mass (sequential fold:
        // its order must not depend on the thread count)
        let mut dangling = 0.0;
        for i in 0..n {
            if out_deg[i] == 0 {
                dangling += rank[i];
                contrib[i] = 0.0;
            } else {
                contrib[i] = rank[i] / out_deg[i] as f64;
            }
        }
        let teleport = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
        let gather = |i: usize| {
            let mut sum = 0.0;
            for &j in &in_adj[i] {
                sum += contrib[j as usize];
            }
            teleport + cfg.damping * sum
        };
        let next: Vec<f64> = if parallel {
            (0..n).into_par_iter().map(gather).collect()
        } else {
            (0..n).map(gather).collect()
        };
        let delta: f64 = next
            .iter()
            .zip(&rank)
            .map(|(new, old)| (new - old).abs())
            .sum();
        rank = next;
        if delta < cfg.tol {
            break;
        }
    }
    ids.into_iter().zip(rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    #[test]
    fn scores_sum_to_one() {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..5).map(|_| g.add_vertex(["N"], props! {})).collect();
        for i in 0..5 {
            g.add_edge(vs[i], vs[(i + 1) % 5], ["E"], props! {})
                .unwrap();
        }
        let pr = pagerank(&g, PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // symmetric ring: all equal
        for &v in &vs {
            assert!((pr[&v] - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_gets_more_rank() {
        // star: everyone points at the hub
        let mut g = TemporalGraph::new();
        let hub = g.add_vertex(["N"], props! {});
        let spokes: Vec<VertexId> = (0..6).map(|_| g.add_vertex(["N"], props! {})).collect();
        for &s in &spokes {
            g.add_edge(s, hub, ["E"], props! {}).unwrap();
        }
        let pr = pagerank(&g, PageRankConfig::default());
        for &s in &spokes {
            assert!(pr[&hub] > pr[&s] * 2.0, "hub dominates");
        }
        let total: f64 = pr.values().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "dangling hub mass redistributed"
        );
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        assert!(pagerank(&g, PageRankConfig::default()).is_empty());
    }

    #[test]
    fn disconnected_components_balanced() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let d = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.add_edge(b, a, ["E"], props! {}).unwrap();
        g.add_edge(c, d, ["E"], props! {}).unwrap();
        g.add_edge(d, c, ["E"], props! {}).unwrap();
        let pr = pagerank(&g, PageRankConfig::default());
        for v in [a, b, c, d] {
            assert!((pr[&v] - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn respects_tombstones() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.remove_vertex(a).unwrap();
        let pr = pagerank(&g, PageRankConfig::default());
        assert_eq!(pr.len(), 1);
        assert!((pr[&b] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..40).map(|_| g.add_vertex(["N"], props! {})).collect();
        // deterministic pseudo-random sparse digraph with dangling nodes
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..150 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x % 40) as usize;
            let b = ((x >> 16) % 37) as usize;
            g.add_edge(vs[a], vs[b], ["E"], props! {}).unwrap();
        }
        let seq = pagerank_mode(&g, PageRankConfig::default(), ExecMode::Sequential);
        let par = pagerank_mode(&g, PageRankConfig::default(), ExecMode::Parallel);
        assert_eq!(seq.len(), par.len());
        for (v, s) in &seq {
            assert_eq!(s.to_bits(), par[v].to_bits(), "vertex {v:?}");
        }
    }
}
