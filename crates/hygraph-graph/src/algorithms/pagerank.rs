//! PageRank (power iteration with dangling-mass redistribution).

use crate::graph::TemporalGraph;
use hygraph_types::VertexId;
use std::collections::HashMap;

/// PageRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an out-edge).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iter: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iter: 100,
            tol: 1e-9,
        }
    }
}

/// Computes PageRank over live vertices; scores sum to 1. Returns an
/// empty map for an empty graph.
pub fn pagerank(g: &TemporalGraph, cfg: PageRankConfig) -> HashMap<VertexId, f64> {
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let n = ids.len();
    if n == 0 {
        return HashMap::new();
    }
    // dense index over live vertices
    let mut dense: HashMap<VertexId, usize> = HashMap::with_capacity(n);
    for (i, &v) in ids.iter().enumerate() {
        dense.insert(v, i);
    }
    let out_deg: Vec<usize> = ids.iter().map(|&v| g.out_degree(v)).collect();

    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.max_iter {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for (i, &v) in ids.iter().enumerate() {
            if out_deg[i] == 0 {
                dangling += rank[i];
                continue;
            }
            let share = rank[i] / out_deg[i] as f64;
            for (_, nbr) in g.neighbors_out(v) {
                next[dense[&nbr]] += share;
            }
        }
        let teleport = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
        let mut delta = 0.0;
        for i in 0..n {
            let new = teleport + cfg.damping * next[i];
            delta += (new - rank[i]).abs();
            rank[i] = new;
        }
        if delta < cfg.tol {
            break;
        }
    }
    ids.into_iter().zip(rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    #[test]
    fn scores_sum_to_one() {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..5).map(|_| g.add_vertex(["N"], props! {})).collect();
        for i in 0..5 {
            g.add_edge(vs[i], vs[(i + 1) % 5], ["E"], props! {}).unwrap();
        }
        let pr = pagerank(&g, PageRankConfig::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // symmetric ring: all equal
        for &v in &vs {
            assert!((pr[&v] - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_gets_more_rank() {
        // star: everyone points at the hub
        let mut g = TemporalGraph::new();
        let hub = g.add_vertex(["N"], props! {});
        let spokes: Vec<VertexId> = (0..6).map(|_| g.add_vertex(["N"], props! {})).collect();
        for &s in &spokes {
            g.add_edge(s, hub, ["E"], props! {}).unwrap();
        }
        let pr = pagerank(&g, PageRankConfig::default());
        for &s in &spokes {
            assert!(pr[&hub] > pr[&s] * 2.0, "hub dominates");
        }
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-9, "dangling hub mass redistributed");
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        assert!(pagerank(&g, PageRankConfig::default()).is_empty());
    }

    #[test]
    fn disconnected_components_balanced() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let d = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.add_edge(b, a, ["E"], props! {}).unwrap();
        g.add_edge(c, d, ["E"], props! {}).unwrap();
        g.add_edge(d, c, ["E"], props! {}).unwrap();
        let pr = pagerank(&g, PageRankConfig::default());
        for v in [a, b, c, d] {
            assert!((pr[&v] - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn respects_tombstones() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.remove_vertex(a).unwrap();
        let pr = pagerank(&g, PageRankConfig::default());
        assert_eq!(pr.len(), 1);
        assert!((pr[&b] - 1.0).abs() < 1e-9);
    }
}
