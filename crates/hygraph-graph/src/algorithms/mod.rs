//! Graph algorithms backing the Table-2 graph column.

pub mod centrality;
pub mod community;
pub mod components;
pub mod metrics;
pub mod motifs;
pub mod pagerank;
