//! Structural graph metrics (Table 2, rows C1/C2 — graph side), plus
//! the per-vertex feature vectors the hybrid classifiers consume.

use crate::algorithms::motifs;
use crate::graph::TemporalGraph;
use hygraph_types::VertexId;
use std::collections::HashMap;

/// Number of structural features produced by [`vertex_features`].
pub const VERTEX_FEATURE_DIM: usize = 5;

/// Names of the structural features, index-aligned with
/// [`vertex_features`].
pub const VERTEX_FEATURE_NAMES: [&str; VERTEX_FEATURE_DIM] = [
    "out_degree",
    "in_degree",
    "triangles",
    "local_clustering",
    "two_hop_size",
];

/// Edge density of the directed simple graph: `m / (n·(n-1))`.
pub fn density(g: &TemporalGraph) -> f64 {
    let n = g.vertex_count();
    if n < 2 {
        return 0.0;
    }
    g.edge_count() as f64 / (n * (n - 1)) as f64
}

/// Histogram of total degrees: index = degree, value = #vertices.
pub fn degree_histogram(g: &TemporalGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.vertex_ids() {
        let d = g.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Mean total degree.
pub fn mean_degree(g: &TemporalGraph) -> f64 {
    let n = g.vertex_count();
    if n == 0 {
        return 0.0;
    }
    let total: usize = g.vertex_ids().map(|v| g.degree(v)).sum();
    total as f64 / n as f64
}

/// Local clustering coefficient of each vertex (triangles through the
/// vertex over its wedge count in the undirected simple view).
pub fn local_clustering(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    let tri: HashMap<VertexId, usize> = motifs::triangles_per_vertex(g).into_iter().collect();
    g.vertex_ids()
        .map(|v| {
            // undirected simple degree
            let mut nbrs: Vec<VertexId> =
                g.neighbors(v).map(|(_, n)| n).filter(|&n| n != v).collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            let d = nbrs.len();
            let wedges = d * d.saturating_sub(1) / 2;
            let c = if wedges == 0 {
                0.0
            } else {
                tri.get(&v).copied().unwrap_or(0) as f64 / wedges as f64
            };
            (v, c)
        })
        .collect()
}

/// Fixed-length structural feature vector per vertex: out-degree,
/// in-degree, triangle count, local clustering, 2-hop neighbourhood size.
pub fn vertex_features(g: &TemporalGraph) -> HashMap<VertexId, [f64; VERTEX_FEATURE_DIM]> {
    let tri: HashMap<VertexId, usize> = motifs::triangles_per_vertex(g).into_iter().collect();
    let clustering = local_clustering(g);
    g.vertex_ids()
        .map(|v| {
            let two_hop = crate::traverse::k_hop(g, v, 2, crate::traverse::Follow::Both).len() - 1;
            (
                v,
                [
                    g.out_degree(v) as f64,
                    g.in_degree(v) as f64,
                    tri.get(&v).copied().unwrap_or(0) as f64,
                    clustering.get(&v).copied().unwrap_or(0.0),
                    two_hop as f64,
                ],
            )
        })
        .collect()
}

/// Summary statistics of a whole graph — the "graph fingerprint" used by
/// evolution analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphSummary {
    /// Live vertices.
    pub vertices: usize,
    /// Live edges.
    pub edges: usize,
    /// Directed edge density.
    pub density: f64,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Triangles in the undirected simple view.
    pub triangles: usize,
    /// Global clustering coefficient.
    pub clustering: f64,
}

/// Computes the [`GraphSummary`] of `g`.
pub fn summarize(g: &TemporalGraph) -> GraphSummary {
    GraphSummary {
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        density: density(g),
        mean_degree: mean_degree(g),
        triangles: motifs::triangle_count(g),
        clustering: motifs::global_clustering(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn path(n: usize) -> TemporalGraph {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..n).map(|_| g.add_vertex(["N"], props! {})).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1], ["E"], props! {}).unwrap();
        }
        g
    }

    #[test]
    fn density_and_mean_degree() {
        let g = path(4); // 3 edges, 4 vertices
        assert!((density(&g) - 3.0 / 12.0).abs() < 1e-12);
        assert!((mean_degree(&g) - 6.0 / 4.0).abs() < 1e-12);
        assert_eq!(density(&TemporalGraph::new()), 0.0);
        assert_eq!(mean_degree(&TemporalGraph::new()), 0.0);
    }

    #[test]
    fn histogram() {
        let g = path(4);
        let h = degree_histogram(&g);
        // endpoints degree 1 (×2), middles degree 2 (×2)
        assert_eq!(h, vec![0, 2, 2]);
    }

    #[test]
    fn local_clustering_triangle_with_tail() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let d = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.add_edge(b, c, ["E"], props! {}).unwrap();
        g.add_edge(c, a, ["E"], props! {}).unwrap();
        g.add_edge(a, d, ["E"], props! {}).unwrap(); // tail
        let lc = local_clustering(&g);
        assert_eq!(lc[&b], 1.0);
        assert_eq!(lc[&c], 1.0);
        assert!(
            (lc[&a] - 1.0 / 3.0).abs() < 1e-12,
            "a has 3 nbrs, 1 of 3 wedges closed"
        );
        assert_eq!(lc[&d], 0.0);
    }

    #[test]
    fn vertex_features_shape() {
        let g = path(5);
        let f = vertex_features(&g);
        assert_eq!(f.len(), 5);
        let first = g.vertex_ids().next().unwrap();
        let fv = f[&first];
        assert_eq!(fv[0], 1.0, "out degree of path head");
        assert_eq!(fv[1], 0.0, "in degree of path head");
        assert_eq!(fv[4], 2.0, "two-hop from head reaches 2 vertices");
        assert_eq!(VERTEX_FEATURE_NAMES.len(), VERTEX_FEATURE_DIM);
    }

    #[test]
    fn summary_consistency() {
        let g = path(4);
        let s = summarize(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.clustering, 0.0);
        let empty = summarize(&TemporalGraph::new());
        assert_eq!(empty.vertices, 0);
        assert_eq!(empty.mean_degree, 0.0);
    }
}
