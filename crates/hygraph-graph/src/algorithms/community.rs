//! Community detection (Table 2, row D — graph side).
//!
//! Two detectors over the undirected view of the graph:
//! * **label propagation** — near-linear, seeded deterministically;
//! * **Louvain (single level + refinement passes)** — greedy modularity
//!   optimisation, the standard for weighted community structure.

use crate::graph::TemporalGraph;
use hygraph_types::VertexId;
use std::collections::HashMap;

/// Community assignment: vertex → community id (renumbered 0..count).
#[derive(Clone, Debug, Default)]
pub struct Communities {
    /// Per-vertex community id.
    pub assignment: HashMap<VertexId, usize>,
    /// Number of communities.
    pub count: usize,
}

impl Communities {
    /// Members of each community, indexed by community id.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.count];
        let mut items: Vec<(VertexId, usize)> =
            self.assignment.iter().map(|(&v, &c)| (v, c)).collect();
        items.sort_unstable();
        for (v, c) in items {
            out[c].push(v);
        }
        out
    }

    /// Community of `v`, if assigned.
    pub fn of(&self, v: VertexId) -> Option<usize> {
        self.assignment.get(&v).copied()
    }

    fn renumber(mut raw: HashMap<VertexId, usize>) -> Communities {
        let mut ids: Vec<VertexId> = raw.keys().copied().collect();
        ids.sort_unstable();
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for v in ids {
            let c = raw[&v];
            let next = remap.len();
            let new = *remap.entry(c).or_insert(next);
            raw.insert(v, new);
        }
        Communities {
            count: remap.len(),
            assignment: raw,
        }
    }
}

/// Asynchronous label propagation with a fixed RNG seed. Visit order is
/// reshuffled every iteration and ties between equally-frequent labels
/// are broken randomly, *except* that a vertex keeps its current label
/// whenever that label is among the maxima — the standard rule that
/// prevents a single label flooding across community bridges.
pub fn label_propagation_seeded(g: &TemporalGraph, max_iter: usize, seed: u64) -> Communities {
    use rand::seq::{IndexedRandom, SliceRandom};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ids: Vec<VertexId> = g.vertex_ids().collect();
    let mut label: HashMap<VertexId, usize> = ids.iter().map(|&v| (v, v.index())).collect();
    for _ in 0..max_iter {
        ids.shuffle(&mut rng);
        let mut changed = false;
        for &v in &ids {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for (_, n) in g.neighbors(v) {
                *counts.entry(label[&n]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue;
            }
            let max = counts.values().copied().max().expect("non-empty");
            let cur = label[&v];
            if counts.get(&cur) == Some(&max) {
                continue; // current label still maximal: stay
            }
            let mut best: Vec<usize> = counts
                .into_iter()
                .filter_map(|(l, c)| (c == max).then_some(l))
                .collect();
            best.sort_unstable();
            let pick = *best.choose(&mut rng).expect("non-empty maxima");
            label.insert(v, pick);
            changed = true;
        }
        if !changed {
            break;
        }
    }
    Communities::renumber(label)
}

/// [`label_propagation_seeded`] with a fixed default seed — deterministic
/// across runs.
pub fn label_propagation(g: &TemporalGraph, max_iter: usize) -> Communities {
    label_propagation_seeded(g, max_iter, 0x5eed_cafe)
}

/// Newman modularity of an assignment over the undirected view with
/// uniform edge weights. Self-loops contribute to their community.
pub fn modularity(g: &TemporalGraph, communities: &Communities) -> f64 {
    let m = g.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    // degree = undirected degree (self-loop counts twice)
    let mut intra = 0.0;
    for e in g.edges() {
        if communities.of(e.src) == communities.of(e.dst) {
            intra += 1.0;
        }
    }
    let mut deg_sum: HashMap<usize, f64> = HashMap::new();
    for v in g.vertex_ids() {
        if let Some(c) = communities.of(v) {
            *deg_sum.entry(c).or_insert(0.0) += g.degree(v) as f64;
        }
    }
    let mut q = intra / m;
    for (_, d) in deg_sum {
        q -= (d / (2.0 * m)) * (d / (2.0 * m));
    }
    q
}

/// Single-level Louvain: greedy modularity-improving moves until a full
/// pass makes none. Deterministic visit order (vertex id). Good enough
/// for the workload sizes here; a multi-level coarsening would be the
/// production extension.
pub fn louvain(g: &TemporalGraph, max_passes: usize) -> Communities {
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let m2 = (2 * g.edge_count()) as f64; // 2m
    if m2 == 0.0 {
        let assignment = ids.iter().map(|&v| (v, v.index())).collect();
        return Communities::renumber(assignment);
    }
    let mut comm: HashMap<VertexId, usize> = ids.iter().map(|&v| (v, v.index())).collect();
    // community total degree
    let mut tot: HashMap<usize, f64> = HashMap::new();
    let deg: HashMap<VertexId, f64> = ids.iter().map(|&v| (v, g.degree(v) as f64)).collect();
    for &v in &ids {
        *tot.entry(comm[&v]).or_insert(0.0) += deg[&v];
    }

    for _ in 0..max_passes {
        let mut moved = false;
        for &v in &ids {
            let cur = comm[&v];
            // weights to neighbouring communities (self-loops excluded from gain)
            let mut w_to: HashMap<usize, f64> = HashMap::new();
            for (_, n) in g.neighbors(v) {
                if n != v {
                    *w_to.entry(comm[&n]).or_insert(0.0) += 1.0;
                }
            }
            // detach v
            *tot.get_mut(&cur).expect("known community") -= deg[&v];
            let w_cur = w_to.get(&cur).copied().unwrap_or(0.0);
            let gain = |c: usize, w: f64| w - tot.get(&c).copied().unwrap_or(0.0) * deg[&v] / m2;
            let mut best_c = cur;
            let mut best_gain = gain(cur, w_cur);
            let mut cands: Vec<(usize, f64)> = w_to.into_iter().collect();
            cands.sort_unstable_by_key(|a| a.0);
            for (c, w) in cands {
                let gn = gain(c, w);
                if gn > best_gain + 1e-12 {
                    best_gain = gn;
                    best_c = c;
                }
            }
            *tot.entry(best_c).or_insert(0.0) += deg[&v];
            if best_c != cur {
                comm.insert(v, best_c);
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    Communities::renumber(comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    /// Two dense cliques joined by a single bridge edge.
    fn two_cliques(k: usize) -> (TemporalGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut g = TemporalGraph::new();
        let a: Vec<VertexId> = (0..k).map(|_| g.add_vertex(["N"], props! {})).collect();
        let b: Vec<VertexId> = (0..k).map(|_| g.add_vertex(["N"], props! {})).collect();
        for set in [&a, &b] {
            for i in 0..k {
                for j in (i + 1)..k {
                    g.add_edge(set[i], set[j], ["E"], props! {}).unwrap();
                }
            }
        }
        g.add_edge(a[0], b[0], ["BRIDGE"], props! {}).unwrap();
        (g, a, b)
    }

    fn same_community(c: &Communities, vs: &[VertexId]) -> bool {
        let first = c.of(vs[0]);
        vs.iter().all(|&v| c.of(v) == first)
    }

    #[test]
    fn label_propagation_separates_cliques() {
        let (g, a, b) = two_cliques(6);
        let c = label_propagation(&g, 50);
        assert!(same_community(&c, &a), "clique A united");
        assert!(same_community(&c, &b), "clique B united");
        assert_ne!(c.of(a[1]), c.of(b[1]), "cliques separated");
    }

    #[test]
    fn louvain_separates_cliques() {
        let (g, a, b) = two_cliques(6);
        let c = louvain(&g, 20);
        assert!(same_community(&c, &a));
        assert!(same_community(&c, &b));
        assert_ne!(c.of(a[0]), c.of(b[0]));
        assert_eq!(c.count, 2);
    }

    #[test]
    fn modularity_prefers_true_partition() {
        let (g, a, b) = two_cliques(6);
        let good = louvain(&g, 20);
        // everything in one community
        let mut all_one = HashMap::new();
        for v in g.vertex_ids() {
            all_one.insert(v, 0usize);
        }
        let bad = Communities {
            assignment: all_one,
            count: 1,
        };
        assert!(modularity(&g, &good) > modularity(&g, &bad));
        assert!(modularity(&g, &good) > 0.3);
        let _ = (a, b);
    }

    #[test]
    fn isolated_vertices_self_communities() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = label_propagation(&g, 10);
        assert_eq!(c.count, 2);
        assert_ne!(c.of(a), c.of(b));
        let c = louvain(&g, 10);
        assert_eq!(c.count, 2);
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        assert_eq!(label_propagation(&g, 10).count, 0);
        assert_eq!(louvain(&g, 10).count, 0);
        assert_eq!(modularity(&g, &Communities::default()), 0.0);
    }

    #[test]
    fn members_listing() {
        let (g, a, b) = two_cliques(4);
        let c = louvain(&g, 20);
        let members = c.members();
        assert_eq!(members.len(), 2);
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
        let _ = (a, b);
    }

    #[test]
    fn deterministic_runs() {
        let (g, _, _) = two_cliques(5);
        let c1 = label_propagation(&g, 50);
        let c2 = label_propagation(&g, 50);
        assert_eq!(c1.assignment, c2.assignment);
        let l1 = louvain(&g, 20);
        let l2 = louvain(&g, 20);
        assert_eq!(l1.assignment, l2.assignment);
    }
}
