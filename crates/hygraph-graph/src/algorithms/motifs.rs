//! Motif counting (Table 2, row PM — graph side): triangles, wedges and
//! the full undirected 3-node census.

use crate::graph::TemporalGraph;
use hygraph_types::VertexId;
use std::collections::HashSet;

/// Sorted undirected neighbour lists for all vertices (self-loops and
/// parallel edges deduplicated).
fn neighbor_sets(g: &TemporalGraph) -> Vec<Vec<u32>> {
    let cap = g.vertex_capacity();
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); cap];
    for e in g.edges() {
        if e.src != e.dst {
            adj[e.src.index()].insert(e.dst.raw() as u32);
            adj[e.dst.index()].insert(e.src.raw() as u32);
        }
    }
    adj.into_iter()
        .map(|s| {
            let mut v: Vec<u32> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Counts triangles in the undirected simple view via ordered
/// neighbourhood intersection (node-iterator with degree ordering).
pub fn triangle_count(g: &TemporalGraph) -> usize {
    let adj = neighbor_sets(g);
    let mut count = 0usize;
    for (u, nu) in adj.iter().enumerate() {
        for &v in nu {
            let v = v as usize;
            if v <= u {
                continue;
            }
            // intersect nu and adj[v], counting w > v to count each triangle once
            let nv = &adj[v];
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if (nu[i] as usize) > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Counts wedges (open 2-paths, i.e. paths u–v–w with u≠w and u,w not
/// adjacent counted open or closed? here: *all* 2-paths; closed ones are
/// triangles×3).
pub fn wedge_count(g: &TemporalGraph) -> usize {
    neighbor_sets(g)
        .iter()
        .map(|n| n.len() * n.len().saturating_sub(1) / 2)
        .sum()
}

/// Per-vertex triangle membership counts.
pub fn triangles_per_vertex(g: &TemporalGraph) -> Vec<(VertexId, usize)> {
    let adj = neighbor_sets(g);
    let mut counts = vec![0usize; adj.len()];
    for (u, nu) in adj.iter().enumerate() {
        for &v in nu {
            let v = v as usize;
            if v <= u {
                continue;
            }
            let nv = &adj[v];
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[i] as usize;
                        if w > v {
                            counts[u] += 1;
                            counts[v] += 1;
                            counts[w] += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    g.vertex_ids().map(|v| (v, counts[v.index()])).collect()
}

/// The undirected 3-node census: (triangles, open wedges, single-edge
/// triples, empty triples) over all C(n,3) vertex triples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TriadCensus {
    /// Closed triples (each triangle counted once).
    pub triangles: usize,
    /// Paths of length two whose endpoints are not adjacent.
    pub open_wedges: usize,
    /// Triples with exactly one edge.
    pub one_edge: usize,
    /// Triples with no edges.
    pub empty: usize,
}

/// Computes the 3-node census in O(triangles + wedges + n).
pub fn triad_census(g: &TemporalGraph) -> TriadCensus {
    let n = g.vertex_count();
    let adj = neighbor_sets(g);
    let m: usize = adj.iter().map(Vec::len).sum::<usize>() / 2; // simple edges
    let triangles = triangle_count(g);
    let wedges_total = wedge_count(g); // closed wedges = 3 * triangles
    let open_wedges = wedges_total - 3 * triangles;
    let triples = if n >= 3 { n * (n - 1) * (n - 2) / 6 } else { 0 };
    // each simple edge participates in (n-2) triples; subtract those also in
    // wedges/triangles (an edge in a wedge-triple is counted there)
    let one_edge = m
        .saturating_mul(n.saturating_sub(2))
        .saturating_sub(2 * open_wedges)
        .saturating_sub(3 * triangles);
    let empty = triples
        .saturating_sub(triangles)
        .saturating_sub(open_wedges)
        .saturating_sub(one_edge);
    TriadCensus {
        triangles,
        open_wedges,
        one_edge,
        empty,
    }
}

/// Global clustering coefficient: `3·triangles / wedges` (0 when no
/// wedges exist).
pub fn global_clustering(g: &TemporalGraph) -> f64 {
    let w = wedge_count(g);
    if w == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / w as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn clique(k: usize) -> TemporalGraph {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..k).map(|_| g.add_vertex(["N"], props! {})).collect();
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_edge(vs[i], vs[j], ["E"], props! {}).unwrap();
            }
        }
        g
    }

    #[test]
    fn triangle_counts_on_cliques() {
        assert_eq!(triangle_count(&clique(3)), 1);
        assert_eq!(triangle_count(&clique(4)), 4);
        assert_eq!(triangle_count(&clique(5)), 10);
        assert_eq!(triangle_count(&clique(2)), 0);
    }

    #[test]
    fn parallel_edges_and_self_loops_ignored() {
        let mut g = clique(3);
        let ids: Vec<VertexId> = g.vertex_ids().collect();
        g.add_edge(ids[0], ids[1], ["E"], props! {}).unwrap(); // parallel
        g.add_edge(ids[0], ids[0], ["E"], props! {}).unwrap(); // loop
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn wedges_and_clustering() {
        // path a-b-c: one wedge, no triangles
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.add_edge(b, c, ["E"], props! {}).unwrap();
        assert_eq!(wedge_count(&g), 1);
        assert_eq!(global_clustering(&g), 0.0);
        // triangle: 3 wedges, all closed
        let t = clique(3);
        assert_eq!(wedge_count(&t), 3);
        assert_eq!(global_clustering(&t), 1.0);
    }

    #[test]
    fn per_vertex_triangles() {
        let g = clique(4);
        for (_, c) in triangles_per_vertex(&g) {
            assert_eq!(c, 3, "each K4 vertex is in 3 triangles");
        }
    }

    #[test]
    fn census_sums_to_all_triples() {
        let mut g = clique(4);
        // add two extra isolated-ish vertices and one pendant edge
        let x = g.add_vertex(["N"], props! {});
        let y = g.add_vertex(["N"], props! {});
        let first = g.vertex_ids().next().unwrap();
        g.add_edge(x, first, ["E"], props! {}).unwrap();
        let _ = y;
        let n = g.vertex_count();
        let census = triad_census(&g);
        let total = census.triangles + census.open_wedges + census.one_edge + census.empty;
        assert_eq!(total, n * (n - 1) * (n - 2) / 6);
        assert_eq!(census.triangles, 4);
    }

    #[test]
    fn census_empty_and_tiny() {
        let g = TemporalGraph::new();
        let c = triad_census(&g);
        assert_eq!(
            c,
            TriadCensus {
                triangles: 0,
                open_wedges: 0,
                one_edge: 0,
                empty: 0
            }
        );
        let g = clique(2);
        let c = triad_census(&g);
        assert_eq!(c.triangles, 0);
        assert_eq!(c.empty, 0);
    }

    #[test]
    fn clustering_of_empty_graph() {
        assert_eq!(global_clustering(&TemporalGraph::new()), 0.0);
    }
}
