//! Vertex centrality measures: degree, closeness, harmonic, and
//! betweenness (Brandes' algorithm). All operate on the undirected
//! unweighted simple view, matching the evolution metrics of Rost et
//! al. that `metricEvolution` tracks over time.
//!
//! Closeness, harmonic, and betweenness are embarrassingly parallel per
//! source vertex. Closeness/harmonic scores are computed independently
//! per vertex, so a parallel map is bit-identical to the sequential
//! loop. Betweenness sums per-source contribution vectors; to keep the
//! floating-point accumulation order independent of the thread count,
//! sources are grouped into fixed-size blocks (`BETWEENNESS_BLOCK`, 64 sources):
//! each block's partial is accumulated sequentially in source order, and
//! block partials are combined sequentially in block order — the same
//! summation tree in both modes, whatever the machine size.

use crate::graph::TemporalGraph;
use crate::traverse::{bfs, Follow};
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::VertexId;
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};

/// Sources per betweenness accumulation block. Fixed (not derived from
/// the thread count) so the summation tree — and therefore every output
/// bit — is the same in sequential and parallel mode.
const BETWEENNESS_BLOCK: usize = 64;

/// Degree centrality: degree / (n - 1), in `[0, 1]` for simple graphs.
pub fn degree_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    degree_centrality_mode(g, ExecMode::Auto)
}

/// [`degree_centrality`] with an explicit execution mode.
pub fn degree_centrality_mode(g: &TemporalGraph, mode: ExecMode) -> HashMap<VertexId, f64> {
    let n = g.vertex_count();
    let denom = (n.saturating_sub(1)).max(1) as f64;
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    per_vertex(&ids, mode, |&v| g.degree(v) as f64 / denom)
}

/// Closeness centrality: `(reachable - 1) / Σ dist`, normalised by the
/// fraction of the graph reached (Wasserman-Faust for disconnected
/// graphs). Isolated vertices score 0.
pub fn closeness_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    closeness_centrality_mode(g, ExecMode::Auto)
}

/// [`closeness_centrality`] with an explicit execution mode. One BFS per
/// vertex; BFS runs are independent, so fan-out cannot change results.
pub fn closeness_centrality_mode(g: &TemporalGraph, mode: ExecMode) -> HashMap<VertexId, f64> {
    let n = g.vertex_count();
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    per_vertex(&ids, mode, |&v| {
        let dist = bfs(g, v, Follow::Both);
        let reached = dist.len() - 1; // excluding self
        let total: usize = dist.values().sum();
        if reached == 0 || total == 0 {
            0.0
        } else {
            let base = reached as f64 / total as f64;
            // scale by coverage so small components do not dominate
            base * reached as f64 / (n.saturating_sub(1)).max(1) as f64
        }
    })
}

/// Harmonic centrality: `Σ 1/dist(v, u)` over all reachable `u ≠ v` —
/// well-defined on disconnected graphs.
pub fn harmonic_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    harmonic_centrality_mode(g, ExecMode::Auto)
}

/// [`harmonic_centrality`] with an explicit execution mode.
pub fn harmonic_centrality_mode(g: &TemporalGraph, mode: ExecMode) -> HashMap<VertexId, f64> {
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    per_vertex(&ids, mode, |&v| {
        let dist = bfs(g, v, Follow::Both);
        // sum in sorted distance order: HashMap iteration order is
        // seeded per instance, which would make the floating-point sum
        // differ between otherwise identical runs
        let mut ds: Vec<usize> = dist
            .iter()
            .filter(|&(&u, &d)| u != v && d > 0)
            .map(|(_, &d)| d)
            .collect();
        ds.sort_unstable();
        ds.into_iter().map(|d| 1.0 / d as f64).sum()
    })
}

/// Maps `score` over every vertex, in parallel when `mode` allows. The
/// closure must be pure; results are zipped back in vertex order.
fn per_vertex<F>(ids: &[VertexId], mode: ExecMode, score: F) -> HashMap<VertexId, f64>
where
    F: Fn(&VertexId) -> f64 + Sync,
{
    let scores: Vec<f64> = if should_parallelize(mode, ids.len()) {
        ids.par_iter().map(&score).collect()
    } else {
        ids.iter().map(&score).collect()
    };
    ids.iter().copied().zip(scores).collect()
}

/// Betweenness centrality via Brandes' algorithm on the undirected
/// unweighted simple view. Scores are unnormalised pair counts (each
/// unordered pair contributes once).
pub fn betweenness_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    betweenness_centrality_mode(g, ExecMode::Auto)
}

/// [`betweenness_centrality`] with an explicit execution mode. The
/// per-source dependency accumulations are distributed over fixed-size
/// source blocks; see the module docs for why this keeps the result
/// bit-identical across modes and thread counts.
pub fn betweenness_centrality_mode(g: &TemporalGraph, mode: ExecMode) -> HashMap<VertexId, f64> {
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let n = ids.len();
    let index: HashMap<VertexId, usize> = ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // undirected simple adjacency
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        if e.src == e.dst {
            continue;
        }
        let (a, b) = (index[&e.src], index[&e.dst]);
        if !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    }

    // one Brandes pass: contributions of sources [lo, hi) accumulated
    // sequentially in source order
    let block_partial = |lo: usize, hi: usize| {
        let mut cb = vec![0.0f64; n];
        for s in lo..hi {
            // single-source shortest paths with path counting
            let mut stack: Vec<usize> = Vec::new();
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut sigma = vec![0.0f64; n];
            let mut dist = vec![-1i64; n];
            sigma[s] = 1.0;
            dist[s] = 0;
            let mut queue = VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                stack.push(v);
                for &w in &adj[v] {
                    if dist[w] < 0 {
                        dist[w] = dist[v] + 1;
                        queue.push_back(w);
                    }
                    if dist[w] == dist[v] + 1 {
                        sigma[w] += sigma[v];
                        preds[w].push(v);
                    }
                }
            }
            // accumulation
            let mut delta = vec![0.0f64; n];
            while let Some(w) = stack.pop() {
                for &v in &preds[w] {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
                if w != s {
                    cb[w] += delta[w];
                }
            }
        }
        cb
    };

    let blocks = n.div_ceil(BETWEENNESS_BLOCK);
    let partials: Vec<Vec<f64>> = if should_parallelize(mode, n) && blocks > 1 {
        (0..blocks)
            .into_par_iter()
            .map(|b| {
                let lo = b * BETWEENNESS_BLOCK;
                block_partial(lo, (lo + BETWEENNESS_BLOCK).min(n))
            })
            .collect()
    } else {
        (0..blocks)
            .map(|b| {
                let lo = b * BETWEENNESS_BLOCK;
                block_partial(lo, (lo + BETWEENNESS_BLOCK).min(n))
            })
            .collect()
    };
    // combine block partials sequentially, in block order
    let mut cb = vec![0.0f64; n];
    for partial in partials {
        for (acc, x) in cb.iter_mut().zip(partial) {
            *acc += x;
        }
    }
    // undirected: every pair was counted twice
    ids.into_iter()
        .zip(cb.into_iter().map(|x| x / 2.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    /// Path graph a - b - c - d - e.
    fn path5() -> (TemporalGraph, Vec<VertexId>) {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..5).map(|_| g.add_vertex(["N"], props! {})).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1], ["E"], props! {}).unwrap();
        }
        (g, vs)
    }

    #[test]
    fn degree_centrality_path() {
        let (g, vs) = path5();
        let c = degree_centrality(&g);
        assert_eq!(c[&vs[0]], 0.25, "endpoint: 1/(5-1)");
        assert_eq!(c[&vs[2]], 0.5, "middle: 2/4");
    }

    #[test]
    fn closeness_middle_highest() {
        let (g, vs) = path5();
        let c = closeness_centrality(&g);
        assert!(c[&vs[2]] > c[&vs[1]]);
        assert!(c[&vs[1]] > c[&vs[0]]);
        // exact: middle distances 2+1+1+2 = 6, closeness = 4/6
        assert!((c[&vs[2]] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_isolated_zero() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let c = closeness_centrality(&g);
        assert_eq!(c[&a], 0.0);
    }

    #[test]
    fn closeness_disconnected_penalised() {
        // two components: a pair and a triangle; the Wasserman-Faust
        // factor keeps pair members below triangle members
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        let t: Vec<VertexId> = (0..3).map(|_| g.add_vertex(["N"], props! {})).collect();
        for i in 0..3 {
            g.add_edge(t[i], t[(i + 1) % 3], ["E"], props! {}).unwrap();
        }
        let c = closeness_centrality(&g);
        assert!(c[&t[0]] > c[&a], "triangle members reach more of the graph");
    }

    #[test]
    fn harmonic_path() {
        let (g, vs) = path5();
        let h = harmonic_centrality(&g);
        // middle: 1/2 + 1/1 + 1/1 + 1/2 = 3
        assert!((h[&vs[2]] - 3.0).abs() < 1e-12);
        // endpoint: 1 + 1/2 + 1/3 + 1/4
        assert!((h[&vs[0]] - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn betweenness_path() {
        let (g, vs) = path5();
        let b = betweenness_centrality(&g);
        // endpoints carry no shortest paths
        assert_eq!(b[&vs[0]], 0.0);
        assert_eq!(b[&vs[4]], 0.0);
        // the exact middle carries the most: pairs (0,3),(0,4),(1,3),(1,4) = 4
        assert_eq!(b[&vs[2]], 4.0);
        // v1 carries (0,2),(0,3),(0,4) = 3
        assert_eq!(b[&vs[1]], 3.0);
    }

    #[test]
    fn betweenness_star() {
        let mut g = TemporalGraph::new();
        let hub = g.add_vertex(["N"], props! {});
        let spokes: Vec<VertexId> = (0..5).map(|_| g.add_vertex(["N"], props! {})).collect();
        for &s in &spokes {
            g.add_edge(s, hub, ["E"], props! {}).unwrap();
        }
        let b = betweenness_centrality(&g);
        // hub carries all C(5,2) = 10 spoke pairs
        assert_eq!(b[&hub], 10.0);
        for &s in &spokes {
            assert_eq!(b[&s], 0.0);
        }
    }

    #[test]
    fn betweenness_triangle_symmetric_zero() {
        let mut g = TemporalGraph::new();
        let t: Vec<VertexId> = (0..3).map(|_| g.add_vertex(["N"], props! {})).collect();
        for i in 0..3 {
            g.add_edge(t[i], t[(i + 1) % 3], ["E"], props! {}).unwrap();
        }
        let b = betweenness_centrality(&g);
        for &v in &t {
            assert_eq!(b[&v], 0.0, "all pairs adjacent: no intermediaries");
        }
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        assert!(degree_centrality(&g).is_empty());
        assert!(closeness_centrality(&g).is_empty());
        assert!(harmonic_centrality(&g).is_empty());
        assert!(betweenness_centrality(&g).is_empty());
    }

    /// Random-ish graph exercising multiple accumulation blocks: the
    /// parallel mode must agree with sequential to the last bit.
    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..150).map(|_| g.add_vertex(["N"], props! {})).collect();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x % 150) as usize;
            let b = ((x >> 20) % 149) as usize;
            if a != b {
                let _ = g.add_edge(vs[a], vs[b], ["E"], props! {});
            }
        }
        for (name, seq, par) in [
            (
                "closeness",
                closeness_centrality_mode(&g, ExecMode::Sequential),
                closeness_centrality_mode(&g, ExecMode::Parallel),
            ),
            (
                "harmonic",
                harmonic_centrality_mode(&g, ExecMode::Sequential),
                harmonic_centrality_mode(&g, ExecMode::Parallel),
            ),
            (
                "betweenness",
                betweenness_centrality_mode(&g, ExecMode::Sequential),
                betweenness_centrality_mode(&g, ExecMode::Parallel),
            ),
        ] {
            assert_eq!(seq.len(), par.len(), "{name}");
            for (v, s) in &seq {
                assert_eq!(s.to_bits(), par[v].to_bits(), "{name} at {v:?}");
            }
        }
    }
}
