//! Vertex centrality measures: degree, closeness, harmonic, and
//! betweenness (Brandes' algorithm). All operate on the undirected
//! unweighted simple view, matching the evolution metrics of Rost et
//! al. that `metricEvolution` tracks over time.

use crate::graph::TemporalGraph;
use crate::traverse::{bfs, Follow};
use hygraph_types::VertexId;
use std::collections::{HashMap, VecDeque};

/// Degree centrality: degree / (n - 1), in `[0, 1]` for simple graphs.
pub fn degree_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    let n = g.vertex_count();
    let denom = (n.saturating_sub(1)).max(1) as f64;
    g.vertex_ids()
        .map(|v| (v, g.degree(v) as f64 / denom))
        .collect()
}

/// Closeness centrality: `(reachable - 1) / Σ dist`, normalised by the
/// fraction of the graph reached (Wasserman-Faust for disconnected
/// graphs). Isolated vertices score 0.
pub fn closeness_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    let n = g.vertex_count();
    g.vertex_ids()
        .map(|v| {
            let dist = bfs(g, v, Follow::Both);
            let reached = dist.len() - 1; // excluding self
            let total: usize = dist.values().sum();
            let c = if reached == 0 || total == 0 {
                0.0
            } else {
                let base = reached as f64 / total as f64;
                // scale by coverage so small components do not dominate
                base * reached as f64 / (n.saturating_sub(1)).max(1) as f64
            };
            (v, c)
        })
        .collect()
}

/// Harmonic centrality: `Σ 1/dist(v, u)` over all reachable `u ≠ v` —
/// well-defined on disconnected graphs.
pub fn harmonic_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    g.vertex_ids()
        .map(|v| {
            let dist = bfs(g, v, Follow::Both);
            let h: f64 = dist
                .iter()
                .filter(|&(&u, &d)| u != v && d > 0)
                .map(|(_, &d)| 1.0 / d as f64)
                .sum();
            (v, h)
        })
        .collect()
}

/// Betweenness centrality via Brandes' algorithm on the undirected
/// unweighted simple view. Scores are unnormalised pair counts (each
/// unordered pair contributes once).
pub fn betweenness_centrality(g: &TemporalGraph) -> HashMap<VertexId, f64> {
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let n = ids.len();
    let index: HashMap<VertexId, usize> = ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // undirected simple adjacency
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        if e.src == e.dst {
            continue;
        }
        let (a, b) = (index[&e.src], index[&e.dst]);
        if !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    let mut cb = vec![0.0f64; n];
    for s in 0..n {
        // single-source shortest paths with path counting
        let mut stack: Vec<usize> = Vec::new();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in &adj[v] {
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        // accumulation
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                cb[w] += delta[w];
            }
        }
    }
    // undirected: every pair was counted twice
    ids.into_iter().zip(cb.into_iter().map(|x| x / 2.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    /// Path graph a - b - c - d - e.
    fn path5() -> (TemporalGraph, Vec<VertexId>) {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..5).map(|_| g.add_vertex(["N"], props! {})).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1], ["E"], props! {}).unwrap();
        }
        (g, vs)
    }

    #[test]
    fn degree_centrality_path() {
        let (g, vs) = path5();
        let c = degree_centrality(&g);
        assert_eq!(c[&vs[0]], 0.25, "endpoint: 1/(5-1)");
        assert_eq!(c[&vs[2]], 0.5, "middle: 2/4");
    }

    #[test]
    fn closeness_middle_highest() {
        let (g, vs) = path5();
        let c = closeness_centrality(&g);
        assert!(c[&vs[2]] > c[&vs[1]]);
        assert!(c[&vs[1]] > c[&vs[0]]);
        // exact: middle distances 2+1+1+2 = 6, closeness = 4/6
        assert!((c[&vs[2]] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_isolated_zero() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let c = closeness_centrality(&g);
        assert_eq!(c[&a], 0.0);
    }

    #[test]
    fn closeness_disconnected_penalised() {
        // two components: a pair and a triangle; the Wasserman-Faust
        // factor keeps pair members below triangle members
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        let t: Vec<VertexId> = (0..3).map(|_| g.add_vertex(["N"], props! {})).collect();
        for i in 0..3 {
            g.add_edge(t[i], t[(i + 1) % 3], ["E"], props! {}).unwrap();
        }
        let c = closeness_centrality(&g);
        assert!(c[&t[0]] > c[&a], "triangle members reach more of the graph");
    }

    #[test]
    fn harmonic_path() {
        let (g, vs) = path5();
        let h = harmonic_centrality(&g);
        // middle: 1/2 + 1/1 + 1/1 + 1/2 = 3
        assert!((h[&vs[2]] - 3.0).abs() < 1e-12);
        // endpoint: 1 + 1/2 + 1/3 + 1/4
        assert!((h[&vs[0]] - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn betweenness_path() {
        let (g, vs) = path5();
        let b = betweenness_centrality(&g);
        // endpoints carry no shortest paths
        assert_eq!(b[&vs[0]], 0.0);
        assert_eq!(b[&vs[4]], 0.0);
        // the exact middle carries the most: pairs (0,3),(0,4),(1,3),(1,4) = 4
        assert_eq!(b[&vs[2]], 4.0);
        // v1 carries (0,2),(0,3),(0,4) = 3
        assert_eq!(b[&vs[1]], 3.0);
    }

    #[test]
    fn betweenness_star() {
        let mut g = TemporalGraph::new();
        let hub = g.add_vertex(["N"], props! {});
        let spokes: Vec<VertexId> = (0..5).map(|_| g.add_vertex(["N"], props! {})).collect();
        for &s in &spokes {
            g.add_edge(s, hub, ["E"], props! {}).unwrap();
        }
        let b = betweenness_centrality(&g);
        // hub carries all C(5,2) = 10 spoke pairs
        assert_eq!(b[&hub], 10.0);
        for &s in &spokes {
            assert_eq!(b[&s], 0.0);
        }
    }

    #[test]
    fn betweenness_triangle_symmetric_zero() {
        let mut g = TemporalGraph::new();
        let t: Vec<VertexId> = (0..3).map(|_| g.add_vertex(["N"], props! {})).collect();
        for i in 0..3 {
            g.add_edge(t[i], t[(i + 1) % 3], ["E"], props! {}).unwrap();
        }
        let b = betweenness_centrality(&g);
        for &v in &t {
            assert_eq!(b[&v], 0.0, "all pairs adjacent: no intermediaries");
        }
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        assert!(degree_centrality(&g).is_empty());
        assert!(closeness_centrality(&g).is_empty());
        assert!(harmonic_centrality(&g).is_empty());
        assert!(betweenness_centrality(&g).is_empty());
    }
}
