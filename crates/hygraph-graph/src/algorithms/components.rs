//! Connected components (weakly connected for directed graphs).
//!
//! Two interchangeable engines produce the identical assignment:
//! sequential union-find, and a parallel Jacobi-style min-label
//! propagation with pointer jumping. Component ids carry no information
//! beyond the partition — both engines renumber components 0.. by first
//! appearance in vertex-id order, so the exact output map is the same
//! either way and [`connected_components_mode`] is free to pick by size.

use crate::graph::TemporalGraph;
use hygraph_types::parallel::{should_parallelize, ExecMode};
use hygraph_types::VertexId;
use rayon::prelude::*;
use std::collections::HashMap;

/// Union-find over dense vertex indices with path halving and union by
/// size.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // path halving
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns whether they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Weakly connected components. Returns vertex → component id, with
/// component ids renumbered 0.. in order of first appearance (by vertex
/// id), and the number of components. Engine chosen automatically from
/// graph size (see [`connected_components_mode`]).
pub fn connected_components(g: &TemporalGraph) -> (HashMap<VertexId, usize>, usize) {
    connected_components_mode(g, ExecMode::Auto)
}

/// [`connected_components`] with an explicit execution mode.
pub fn connected_components_mode(
    g: &TemporalGraph,
    mode: ExecMode,
) -> (HashMap<VertexId, usize>, usize) {
    let cap = g.vertex_capacity();
    let roots = if should_parallelize(mode, cap) {
        propagate_min_labels(g, cap)
    } else {
        let mut uf = UnionFind::new(cap);
        for e in g.edges() {
            uf.union(e.src.index(), e.dst.index());
        }
        (0..cap).map(|i| uf.find(i) as u32).collect()
    };
    renumber_roots(g, &roots)
}

/// Parallel engine: every vertex repeatedly adopts the minimum label in
/// its closed undirected neighbourhood (Jacobi iteration — each round
/// reads only the previous round's snapshot, so the fixpoint is
/// independent of thread count and scheduling), with a pointer-jumping
/// shortcut so convergence takes O(log n) rounds on long paths. At the
/// fixpoint every vertex's label is the minimum raw index of its
/// component, a canonical root equivalent to union-find's.
fn propagate_min_labels(g: &TemporalGraph, cap: usize) -> Vec<u32> {
    // undirected adjacency over raw indices (tombstoned endpoints never
    // occur: their edges are removed with them)
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); cap];
    for e in g.edges() {
        adj[e.src.index()].push(e.dst.index() as u32);
        adj[e.dst.index()].push(e.src.index() as u32);
    }
    let mut labels: Vec<u32> = (0..cap as u32).collect();
    loop {
        // gather: min over closed neighbourhood, from the old snapshot
        let gathered: Vec<u32> = (0..cap)
            .into_par_iter()
            .map(|i| {
                let mut m = labels[i];
                for &j in &adj[i] {
                    m = m.min(labels[j as usize]);
                }
                m
            })
            .collect();
        // shortcut: jump to the label's label (also from a snapshot)
        let jumped: Vec<u32> = (0..cap)
            .into_par_iter()
            .map(|i| gathered[gathered[i] as usize])
            .collect();
        if jumped == labels {
            return jumped;
        }
        labels = jumped;
    }
}

/// Renumbers per-index roots 0.. by first appearance in vertex-id order.
fn renumber_roots(g: &TemporalGraph, roots: &[u32]) -> (HashMap<VertexId, usize>, usize) {
    let mut renumber: HashMap<u32, usize> = HashMap::new();
    let mut out = HashMap::new();
    for v in g.vertex_ids().collect::<Vec<_>>() {
        let root = roots[v.index()];
        let next = renumber.len();
        let cid = *renumber.entry(root).or_insert(next);
        out.insert(v, cid);
    }
    let n = renumber.len();
    (out, n)
}

/// Sizes of each component, indexed by component id.
pub fn component_sizes(assignment: &HashMap<VertexId, usize>, count: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; count];
    for &cid in assignment.values() {
        sizes[cid] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn two_components() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let d = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.add_edge(c, d, ["E"], props! {}).unwrap();
        let (assign, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(assign[&a], assign[&b]);
        assert_eq!(assign[&c], assign[&d]);
        assert_ne!(assign[&a], assign[&c]);
        assert_eq!(component_sizes(&assign, n), vec![2, 2]);
    }

    #[test]
    fn directedness_ignored() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(b, a, ["E"], props! {}).unwrap();
        let (_, n) = connected_components(&g);
        assert_eq!(n, 1);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let mut g = TemporalGraph::new();
        g.add_vertex(["N"], props! {});
        g.add_vertex(["N"], props! {});
        let (_, n) = connected_components(&g);
        assert_eq!(n, 2);
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        let (assign, n) = connected_components(&g);
        assert!(assign.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn parallel_engine_matches_union_find_exactly() {
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..200).map(|_| g.add_vertex(["N"], props! {})).collect();
        // several chains and rings plus isolated vertices and a tombstone
        let mut x = 0x853C49E6748FEA9Bu64;
        for _ in 0..160 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x % 200) as usize;
            let b = ((x >> 24) % 200) as usize;
            if a != b {
                let _ = g.add_edge(vs[a], vs[b], ["E"], props! {});
            }
        }
        g.remove_vertex(vs[13]).unwrap();
        let (seq, n_seq) = connected_components_mode(&g, ExecMode::Sequential);
        let (par, n_par) = connected_components_mode(&g, ExecMode::Parallel);
        assert_eq!(n_seq, n_par);
        assert_eq!(seq, par, "identical assignment incl. component ids");
    }

    #[test]
    fn parallel_engine_converges_on_long_path() {
        // a 500-vertex path stresses the pointer-jumping shortcut
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..500).map(|_| g.add_vertex(["N"], props! {})).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1], ["E"], props! {}).unwrap();
        }
        let (assign, n) = connected_components_mode(&g, ExecMode::Parallel);
        assert_eq!(n, 1);
        assert!(assign.values().all(|&c| c == 0));
    }

    #[test]
    fn tombstoned_vertices_skipped() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.remove_vertex(a).unwrap();
        let (assign, n) = connected_components(&g);
        assert_eq!(n, 1);
        assert!(assign.contains_key(&b));
        assert!(!assign.contains_key(&a));
    }
}
