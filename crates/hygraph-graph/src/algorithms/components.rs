//! Connected components via union-find (weakly connected for directed
//! graphs).

use crate::graph::TemporalGraph;
use hygraph_types::VertexId;
use std::collections::HashMap;

/// Union-find over dense vertex indices with path halving and union by
/// size.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // path halving
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns whether they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Weakly connected components. Returns vertex → component id, with
/// component ids renumbered 0.. in order of first appearance (by vertex
/// id), and the number of components.
pub fn connected_components(g: &TemporalGraph) -> (HashMap<VertexId, usize>, usize) {
    let mut uf = UnionFind::new(g.vertex_capacity());
    for e in g.edges() {
        uf.union(e.src.index(), e.dst.index());
    }
    let mut renumber: HashMap<usize, usize> = HashMap::new();
    let mut out = HashMap::new();
    for v in g.vertex_ids().collect::<Vec<_>>() {
        let root = uf.find(v.index());
        let next = renumber.len();
        let cid = *renumber.entry(root).or_insert(next);
        out.insert(v, cid);
    }
    let n = renumber.len();
    (out, n)
}

/// Sizes of each component, indexed by component id.
pub fn component_sizes(assignment: &HashMap<VertexId, usize>, count: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; count];
    for &cid in assignment.values() {
        sizes[cid] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn two_components() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let d = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.add_edge(c, d, ["E"], props! {}).unwrap();
        let (assign, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(assign[&a], assign[&b]);
        assert_eq!(assign[&c], assign[&d]);
        assert_ne!(assign[&a], assign[&c]);
        assert_eq!(component_sizes(&assign, n), vec![2, 2]);
    }

    #[test]
    fn directedness_ignored() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(b, a, ["E"], props! {}).unwrap();
        let (_, n) = connected_components(&g);
        assert_eq!(n, 1);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let mut g = TemporalGraph::new();
        g.add_vertex(["N"], props! {});
        g.add_vertex(["N"], props! {});
        let (_, n) = connected_components(&g);
        assert_eq!(n, 2);
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        let (assign, n) = connected_components(&g);
        assert!(assign.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn tombstoned_vertices_skipped() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.remove_vertex(a).unwrap();
        let (assign, n) = connected_components(&g);
        assert_eq!(n, 1);
        assert!(assign.contains_key(&b));
        assert!(!assign.contains_key(&a));
    }
}
