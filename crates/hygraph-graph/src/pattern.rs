//! Subgraph pattern matching (Table 2, row Q1 — graph side; the
//! machinery behind the paper's Listing 1 fraud query).
//!
//! A [`Pattern`] is a small graph of variables with label and property
//! constraints. Matching follows Cypher semantics: *edge-isomorphic*
//! (each graph edge binds at most one pattern edge per match) with vertex
//! repetition allowed unless [`Pattern::distinct_vertices`] is set.
//! Matching is backtracking search seeded from the most selective
//! pattern vertex, extending along pattern edges through adjacency lists.

use crate::graph::{EdgeData, TemporalGraph, VertexData};
use hygraph_types::{EdgeId, Label, Timestamp, Value, VertexId};
use std::collections::{BTreeMap, HashMap};

/// Comparison operator for property predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` with SQL-ish null semantics (null never
    /// matches).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() || rhs.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => lhs.sql_eq(rhs).unwrap_or(false),
            CmpOp::Ne => lhs.sql_eq(rhs).map(|b| !b).unwrap_or(false),
            CmpOp::Lt => lhs.total_cmp(rhs).is_lt(),
            CmpOp::Le => lhs.total_cmp(rhs).is_le(),
            CmpOp::Gt => lhs.total_cmp(rhs).is_gt(),
            CmpOp::Ge => lhs.total_cmp(rhs).is_ge(),
        }
    }
}

/// A static-property predicate `element.key op value`.
#[derive(Clone, Debug, PartialEq)]
pub struct PropPredicate {
    /// Property key to read.
    pub key: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

impl PropPredicate {
    /// Builds a predicate.
    pub fn new(key: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Self {
            key: key.into(),
            op,
            value: value.into(),
        }
    }

    fn holds(&self, props: &hygraph_types::PropertyMap) -> bool {
        props
            .static_value(&self.key)
            .is_some_and(|v| self.op.eval(v, &self.value))
    }
}

/// Direction constraint of a pattern edge relative to its `from` vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `(from)-[]->(to)`
    Out,
    /// `(from)<-[]-(to)`
    In,
    /// `(from)-[]-(to)`
    Any,
}

/// A pattern vertex: a variable with optional label and property
/// constraints.
#[derive(Clone, Debug)]
pub struct PatternVertex {
    /// Variable name the match binds.
    pub var: String,
    /// Required labels (all must be present).
    pub labels: Vec<Label>,
    /// Static property predicates.
    pub preds: Vec<PropPredicate>,
    /// Predicates pushed down from a query-level filter. Enforced during
    /// matching exactly like `preds`, but excluded from the selectivity
    /// estimate, so pushing a predicate never changes the enumeration
    /// order — the surviving bindings are an order-preserving subsequence
    /// of the un-pushed pattern's bindings.
    pub pushed: Vec<PropPredicate>,
}

/// A pattern edge between two pattern vertices (referenced by index).
#[derive(Clone, Debug)]
pub struct PatternEdge {
    /// Optional variable name binding the matched edge.
    pub var: Option<String>,
    /// Index of the source pattern vertex.
    pub from: usize,
    /// Index of the target pattern vertex.
    pub to: usize,
    /// Required labels (all must be present).
    pub labels: Vec<Label>,
    /// Static property predicates.
    pub preds: Vec<PropPredicate>,
    /// Pushed-down filter predicates (see [`PatternVertex::pushed`]).
    pub pushed: Vec<PropPredicate>,
    /// Direction constraint.
    pub direction: Direction,
}

/// Canonical key of one match emission: a pure function of the
/// assignment (vertex/edge choices plus, for each edge slot, which
/// adjacency-list occurrence produced it).
///
/// Layout: for each depth of the pattern's canonical [`plan
/// order`](Pattern::find), the bound vertex id, followed by one
/// occurrence word `(side << 63) | edge_id` per pattern-edge slot whose
/// later endpoint is that depth (slots in ascending index order; side 0
/// = found in the `from` vertex's out-adjacency, side 1 = in-adjacency).
/// Because all candidate orders inside [`Pattern::find`] are ascending
/// (append-only adjacency lists, sorted anchored candidates, insertion
/// -ordered label index), iterating matches in ascending key order
/// reproduces `find`'s emission order *including multiplicity*: a
/// self-loop graph edge occurs in both adjacency lists, is emitted
/// twice by `find`, and yields two keys differing only in the side bit.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchKey(pub Vec<u64>);

/// One match: variable → element bindings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Binding {
    /// Vertex variable bindings.
    pub vertices: HashMap<String, VertexId>,
    /// Edge variable bindings.
    pub edges: HashMap<String, EdgeId>,
}

/// A declarative subgraph pattern.
#[derive(Clone, Debug, Default)]
pub struct Pattern {
    vertices: Vec<PatternVertex>,
    edges: Vec<PatternEdge>,
    valid_at: Option<Timestamp>,
    distinct_vertices: bool,
}

impl Pattern {
    /// An empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern vertex; returns its index for edge construction.
    pub fn vertex(
        &mut self,
        var: impl Into<String>,
        labels: impl IntoIterator<Item = impl Into<Label>>,
    ) -> usize {
        self.vertices.push(PatternVertex {
            var: var.into(),
            labels: labels.into_iter().map(Into::into).collect(),
            preds: Vec::new(),
            pushed: Vec::new(),
        });
        self.vertices.len() - 1
    }

    /// Adds a property predicate to pattern vertex `idx`.
    pub fn vertex_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.vertices[idx].preds.push(pred);
        self
    }

    /// Adds a *pushed-down* predicate to pattern vertex `idx`: enforced
    /// during matching but invisible to the planner's selectivity
    /// ordering, so the result is an order-preserving pruned subsequence
    /// of the matches without the predicate.
    pub fn vertex_pushed_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.vertices[idx].pushed.push(pred);
        self
    }

    /// Adds a pattern edge; returns its index.
    pub fn edge(
        &mut self,
        var: Option<&str>,
        from: usize,
        to: usize,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        direction: Direction,
    ) -> usize {
        assert!(from < self.vertices.len() && to < self.vertices.len());
        self.edges.push(PatternEdge {
            var: var.map(str::to_owned),
            from,
            to,
            labels: labels.into_iter().map(Into::into).collect(),
            preds: Vec::new(),
            pushed: Vec::new(),
            direction,
        });
        self.edges.len() - 1
    }

    /// Adds a property predicate to pattern edge `idx`.
    pub fn edge_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.edges[idx].preds.push(pred);
        self
    }

    /// Adds a *pushed-down* predicate to pattern edge `idx` (see
    /// [`Self::vertex_pushed_pred`]).
    pub fn edge_pushed_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.edges[idx].pushed.push(pred);
        self
    }

    /// Restricts matches to elements valid at `t` (ρ-aware matching).
    pub fn valid_at(&mut self, t: Timestamp) -> &mut Self {
        self.valid_at = Some(t);
        self
    }

    /// Requires all vertex variables to bind distinct vertices
    /// (isomorphic matching).
    pub fn distinct_vertices(&mut self, on: bool) -> &mut Self {
        self.distinct_vertices = on;
        self
    }

    /// Number of pattern vertices.
    pub fn vertex_len(&self) -> usize {
        self.vertices.len()
    }

    fn vertex_ok(&self, pv: &PatternVertex, v: &VertexData) -> bool {
        if let Some(t) = self.valid_at {
            if !v.validity.contains(t) {
                return false;
            }
        }
        pv.labels.iter().all(|l| v.has_label(l.as_str()))
            && pv.preds.iter().all(|p| p.holds(&v.props))
            && pv.pushed.iter().all(|p| p.holds(&v.props))
    }

    fn edge_ok(&self, pe: &PatternEdge, e: &EdgeData) -> bool {
        if let Some(t) = self.valid_at {
            if !e.validity.contains(t) {
                return false;
            }
        }
        pe.labels.iter().all(|l| e.has_label(l.as_str()))
            && pe.preds.iter().all(|p| p.holds(&e.props))
            && pe.pushed.iter().all(|p| p.holds(&e.props))
    }

    /// Finds all matches of the pattern in `g`, visiting each via
    /// `on_match`. Return `false` from the callback to stop early.
    pub fn find(&self, g: &TemporalGraph, mut on_match: impl FnMut(&Binding) -> bool) {
        if self.vertices.is_empty() {
            return;
        }
        // Order vertices: seed with the most label/pred-constrained one,
        // then repeatedly add the vertex most connected to the chosen set.
        let order = self.plan_order();
        let mut vbind: Vec<Option<VertexId>> = vec![None; self.vertices.len()];
        let mut ebind: Vec<Option<EdgeId>> = vec![None; self.edges.len()];
        self.backtrack(g, &order, 0, &mut vbind, &mut ebind, &mut on_match);
    }

    /// Collects all matches (convenience over [`Self::find`]).
    pub fn find_all(&self, g: &TemporalGraph) -> Vec<Binding> {
        let mut out = Vec::new();
        self.find(g, |b| {
            out.push(b.clone());
            true
        });
        out
    }

    fn selectivity(&self, idx: usize) -> usize {
        self.vertices[idx].labels.len() * 2 + self.vertices[idx].preds.len() * 3
    }

    fn plan_order(&self) -> Vec<usize> {
        let n = self.vertices.len();
        let mut order = Vec::with_capacity(n);
        let mut chosen = vec![false; n];
        // seed: most selective vertex
        let seed = (0..n)
            .max_by_key(|&i| self.selectivity(i))
            .expect("non-empty");
        order.push(seed);
        chosen[seed] = true;
        while order.len() < n {
            // prefer connected-to-chosen vertices, tie-break on selectivity
            let next = (0..n)
                .filter(|&i| !chosen[i])
                .max_by_key(|&i| {
                    let connected = self
                        .edges
                        .iter()
                        .any(|e| (e.from == i && chosen[e.to]) || (e.to == i && chosen[e.from]));
                    (connected as usize, self.selectivity(i))
                })
                .expect("remaining vertex exists");
            order.push(next);
            chosen[next] = true;
        }
        order
    }

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        &self,
        g: &TemporalGraph,
        order: &[usize],
        depth: usize,
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        on_match: &mut impl FnMut(&Binding) -> bool,
    ) -> bool {
        if depth == order.len() {
            // all vertices bound; all edges were bound along the way
            let binding = self.to_binding(vbind, ebind);
            return on_match(&binding);
        }
        let pv_idx = order[depth];
        let pv = &self.vertices[pv_idx];

        // candidate vertices: through an already-bound neighbour when
        // possible, else full scan
        let anchor = self.edges.iter().enumerate().find(|(ei, e)| {
            ebind[*ei].is_none()
                && ((e.from == pv_idx && vbind[e.to].is_some())
                    || (e.to == pv_idx && vbind[e.from].is_some()))
        });

        let candidates: Vec<VertexId> = match anchor {
            Some((_, e)) => {
                let (bound_idx, from_side) = if e.from == pv_idx {
                    (e.to, false)
                } else {
                    (e.from, true)
                };
                let bound_v = vbind[bound_idx].expect("anchor bound");
                // direction as seen from the bound vertex
                let dir = match (e.direction, from_side) {
                    (Direction::Any, _) => Direction::Any,
                    (Direction::Out, true) => Direction::Out, // bound is `from`
                    (Direction::Out, false) => Direction::In, // bound is `to`
                    (Direction::In, true) => Direction::In,
                    (Direction::In, false) => Direction::Out,
                };
                let mut cs: Vec<VertexId> = match dir {
                    Direction::Out => g.neighbors_out(bound_v).map(|(_, v)| v).collect(),
                    Direction::In => g.neighbors_in(bound_v).map(|(_, v)| v).collect(),
                    Direction::Any => g.neighbors(bound_v).map(|(_, v)| v).collect(),
                };
                cs.sort_unstable();
                cs.dedup();
                cs
            }
            // unanchored: seed from the label index when the pattern
            // vertex is labelled, else the full vertex scan
            None => match pv.labels.first() {
                Some(l) => g.vertex_ids_with_label(l.as_str()),
                None => g.vertex_ids().collect(),
            },
        };

        for cand in candidates {
            let Ok(vdata) = g.vertex(cand) else { continue };
            if !self.vertex_ok(pv, vdata) {
                continue;
            }
            if self.distinct_vertices && vbind.iter().flatten().any(|&b| b == cand) {
                continue;
            }
            vbind[pv_idx] = Some(cand);
            // bind every pattern edge whose endpoints are now both bound
            if self.bind_edges(g, vbind, ebind, pv_idx, |vb, eb| {
                self.backtrack(g, order, depth + 1, vb, eb, on_match)
            }) {
                vbind[pv_idx] = None;
            } else {
                vbind[pv_idx] = None;
                return false; // stop requested
            }
        }
        true
    }

    /// Binds all unbound pattern edges with both endpoints bound,
    /// enumerating graph-edge choices; calls `cont` for each complete
    /// assignment. Returns `false` if `cont` requested stop.
    fn bind_edges(
        &self,
        g: &TemporalGraph,
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        _just_bound: usize,
        mut cont: impl FnMut(&mut Vec<Option<VertexId>>, &mut Vec<Option<EdgeId>>) -> bool,
    ) -> bool {
        let pending: Vec<usize> = (0..self.edges.len())
            .filter(|&ei| {
                ebind[ei].is_none()
                    && vbind[self.edges[ei].from].is_some()
                    && vbind[self.edges[ei].to].is_some()
            })
            .collect();
        self.bind_edges_rec(g, &pending, 0, vbind, ebind, &mut cont)
    }

    fn bind_edges_rec(
        &self,
        g: &TemporalGraph,
        pending: &[usize],
        k: usize,
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        cont: &mut impl FnMut(&mut Vec<Option<VertexId>>, &mut Vec<Option<EdgeId>>) -> bool,
    ) -> bool {
        if k == pending.len() {
            return cont(vbind, ebind);
        }
        let ei = pending[k];
        let pe = &self.edges[ei];
        let from_v = vbind[pe.from].expect("bound");
        let to_v = vbind[pe.to].expect("bound");

        // enumerate graph edges between from_v and to_v honouring direction
        let candidates: Vec<EdgeId> = g
            .incident_edges(from_v)
            .filter(|e| {
                let fwd = e.src == from_v && e.dst == to_v;
                let bwd = e.src == to_v && e.dst == from_v;
                match pe.direction {
                    Direction::Out => fwd,
                    Direction::In => bwd,
                    Direction::Any => fwd || bwd,
                }
            })
            .filter(|e| self.edge_ok(pe, e))
            .map(|e| e.id)
            .collect();

        for ce in candidates {
            // Cypher semantics: edges are used at most once per match
            if ebind.iter().flatten().any(|&b| b == ce) {
                continue;
            }
            ebind[ei] = Some(ce);
            let keep_going = self.bind_edges_rec(g, pending, k + 1, vbind, ebind, cont);
            ebind[ei] = None;
            if !keep_going {
                return false;
            }
        }
        true
    }

    // ---- keyed matching (incremental-maintenance support) -------------

    /// All matches, keyed by [`MatchKey`]: iterating the returned map in
    /// key order visits exactly the bindings [`Self::find`] emits, in
    /// the same order and with the same multiplicity (each self-loop
    /// occurrence gets its own key).
    pub fn find_keyed(&self, g: &TemporalGraph) -> BTreeMap<MatchKey, Binding> {
        let mut out = BTreeMap::new();
        self.collect_keyed(
            g,
            &vec![None; self.vertices.len()],
            &vec![None; self.edges.len()],
            &mut out,
        );
        out
    }

    /// Collects (into `out`) every match whose assignment binds vertex
    /// `v` at one or more pattern-vertex positions. Search cost radiates
    /// from `v` rather than scanning the graph; results already present
    /// in `out` are kept as-is (keys are unique per assignment).
    pub fn find_keyed_with_vertex(
        &self,
        g: &TemporalGraph,
        v: VertexId,
        out: &mut BTreeMap<MatchKey, Binding>,
    ) {
        let epin = vec![None; self.edges.len()];
        for i in 0..self.vertices.len() {
            let mut vpin = vec![None; self.vertices.len()];
            vpin[i] = Some(v);
            self.collect_keyed(g, &vpin, &epin, out);
        }
    }

    /// Collects (into `out`) every match whose assignment binds graph
    /// edge `id` at one or more pattern-edge slots (both orientations
    /// for [`Direction::Any`] slots).
    pub fn find_keyed_with_edge(
        &self,
        g: &TemporalGraph,
        id: EdgeId,
        out: &mut BTreeMap<MatchKey, Binding>,
    ) {
        let Ok(e) = g.edge(id) else { return };
        for (ei, pe) in self.edges.iter().enumerate() {
            // candidate (from, to) vertex assignments for this slot
            let mut orients: Vec<(VertexId, VertexId)> = Vec::new();
            match pe.direction {
                Direction::Out => orients.push((e.src, e.dst)),
                Direction::In => orients.push((e.dst, e.src)),
                Direction::Any => {
                    orients.push((e.src, e.dst));
                    if e.src != e.dst {
                        orients.push((e.dst, e.src));
                    }
                }
            }
            for (fv, tv) in orients {
                if pe.from == pe.to && fv != tv {
                    continue; // pattern self-loop slot needs a graph self-loop
                }
                let mut vpin = vec![None; self.vertices.len()];
                vpin[pe.from] = Some(fv);
                vpin[pe.to] = Some(tv);
                let mut epin = vec![None; self.edges.len()];
                epin[ei] = Some(id);
                self.collect_keyed(g, &vpin, &epin, out);
            }
        }
    }

    /// Shared engine behind the keyed entry points: enumerates all
    /// assignments honouring the pins, computes each one's canonical
    /// key(s) post-hoc and inserts into `out` (insert-if-absent, so
    /// overlapping pinned searches dedupe naturally).
    fn collect_keyed(
        &self,
        g: &TemporalGraph,
        vpin: &[Option<VertexId>],
        epin: &[Option<EdgeId>],
        out: &mut BTreeMap<MatchKey, Binding>,
    ) {
        if self.vertices.is_empty() {
            return;
        }
        let canon_order = self.plan_order();
        let canon_slots = self.canonical_slots(&canon_order);
        let pinned: Vec<bool> = vpin.iter().map(Option::is_some).collect();
        let order = self.plan_order_pinned(&pinned);
        let mut vbind: Vec<Option<VertexId>> = vec![None; self.vertices.len()];
        let mut ebind: Vec<Option<EdgeId>> = vec![None; self.edges.len()];
        self.enumerate_pinned(
            g,
            &order,
            0,
            vpin,
            epin,
            &mut vbind,
            &mut ebind,
            &mut |vb, eb| {
                for key in self.canonical_keys(g, &canon_order, &canon_slots, vb, eb) {
                    out.entry(key).or_insert_with(|| self.to_binding(vb, eb));
                }
            },
        );
    }

    /// Per-depth pattern-edge slots of the canonical order: slot `ei`
    /// belongs to the depth at which its later endpoint is bound —
    /// exactly when [`Self::bind_edges`] picks it up during `find`.
    fn canonical_slots(&self, order: &[usize]) -> Vec<Vec<usize>> {
        let mut pos = vec![0usize; self.vertices.len()];
        for (d, &vi) in order.iter().enumerate() {
            pos[vi] = d;
        }
        let mut slots = vec![Vec::new(); order.len()];
        for (ei, pe) in self.edges.iter().enumerate() {
            slots[pos[pe.from].max(pos[pe.to])].push(ei);
        }
        slots
    }

    /// Computes the canonical key(s) of a complete assignment. One key
    /// normally; 2^k keys when k slots bind graph self-loops (one per
    /// adjacency-occurrence combination, mirroring `find`'s emissions).
    fn canonical_keys(
        &self,
        g: &TemporalGraph,
        order: &[usize],
        slots: &[Vec<usize>],
        vbind: &[Option<VertexId>],
        ebind: &[Option<EdgeId>],
    ) -> Vec<MatchKey> {
        let mut keys: Vec<Vec<u64>> = vec![Vec::with_capacity(order.len() + self.edges.len())];
        for (d, &vi) in order.iter().enumerate() {
            let v = vbind[vi].expect("complete assignment");
            for k in &mut keys {
                k.push(v.index() as u64);
            }
            for &ei in &slots[d] {
                let id = ebind[ei].expect("complete assignment");
                let Ok(e) = g.edge(id) else { continue };
                let from_v = vbind[self.edges[ei].from].expect("bound");
                let occ0 = id.index() as u64;
                let occ1 = (1u64 << 63) | occ0;
                if e.src == e.dst {
                    let drained = std::mem::take(&mut keys);
                    for k in drained {
                        let mut k2 = k.clone();
                        let mut k1 = k;
                        k1.push(occ0);
                        k2.push(occ1);
                        keys.push(k1);
                        keys.push(k2);
                    }
                } else {
                    let occ = if e.src == from_v { occ0 } else { occ1 };
                    for k in &mut keys {
                        k.push(occ);
                    }
                }
            }
        }
        keys.into_iter().map(MatchKey).collect()
    }

    /// [`Self::plan_order`] variant that starts from the pinned
    /// positions so search cost radiates outward from the seed element.
    fn plan_order_pinned(&self, pinned: &[bool]) -> Vec<usize> {
        let n = self.vertices.len();
        if !pinned.iter().any(|&p| p) {
            return self.plan_order();
        }
        let mut order: Vec<usize> = (0..n).filter(|&i| pinned[i]).collect();
        let mut chosen = vec![false; n];
        for &i in &order {
            chosen[i] = true;
        }
        while order.len() < n {
            let next = (0..n)
                .filter(|&i| !chosen[i])
                .max_by_key(|&i| {
                    let connected = self
                        .edges
                        .iter()
                        .any(|e| (e.from == i && chosen[e.to]) || (e.to == i && chosen[e.from]));
                    (connected as usize, self.selectivity(i))
                })
                .expect("remaining vertex exists");
            order.push(next);
            chosen[next] = true;
        }
        order
    }

    /// Pin-aware re-implementation of [`Self::backtrack`]: same
    /// candidate and constraint semantics, but pinned positions/slots
    /// restrict to the pinned element, and emission order is free (keys
    /// are computed post-hoc, so only the match *set* matters here).
    #[allow(clippy::too_many_arguments)]
    fn enumerate_pinned(
        &self,
        g: &TemporalGraph,
        order: &[usize],
        depth: usize,
        vpin: &[Option<VertexId>],
        epin: &[Option<EdgeId>],
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        emit: &mut impl FnMut(&[Option<VertexId>], &[Option<EdgeId>]),
    ) {
        if depth == order.len() {
            emit(vbind, ebind);
            return;
        }
        let pv_idx = order[depth];
        let pv = &self.vertices[pv_idx];

        let candidates: Vec<VertexId> = if let Some(pin) = vpin[pv_idx] {
            vec![pin]
        } else {
            let anchor = self.edges.iter().enumerate().find(|(ei, e)| {
                ebind[*ei].is_none()
                    && ((e.from == pv_idx && vbind[e.to].is_some())
                        || (e.to == pv_idx && vbind[e.from].is_some()))
            });
            match anchor {
                Some((_, e)) => {
                    let (bound_idx, from_side) = if e.from == pv_idx {
                        (e.to, false)
                    } else {
                        (e.from, true)
                    };
                    let bound_v = vbind[bound_idx].expect("anchor bound");
                    let dir = match (e.direction, from_side) {
                        (Direction::Any, _) => Direction::Any,
                        (Direction::Out, true) => Direction::Out,
                        (Direction::Out, false) => Direction::In,
                        (Direction::In, true) => Direction::In,
                        (Direction::In, false) => Direction::Out,
                    };
                    let mut cs: Vec<VertexId> = match dir {
                        Direction::Out => g.neighbors_out(bound_v).map(|(_, v)| v).collect(),
                        Direction::In => g.neighbors_in(bound_v).map(|(_, v)| v).collect(),
                        Direction::Any => g.neighbors(bound_v).map(|(_, v)| v).collect(),
                    };
                    cs.sort_unstable();
                    cs.dedup();
                    cs
                }
                None => match pv.labels.first() {
                    Some(l) => g.vertex_ids_with_label(l.as_str()),
                    None => g.vertex_ids().collect(),
                },
            }
        };

        for cand in candidates {
            let Ok(vdata) = g.vertex(cand) else { continue };
            if !self.vertex_ok(pv, vdata) {
                continue;
            }
            if self.distinct_vertices && vbind.iter().flatten().any(|&b| b == cand) {
                continue;
            }
            vbind[pv_idx] = Some(cand);
            let pending: Vec<usize> = (0..self.edges.len())
                .filter(|&ei| {
                    ebind[ei].is_none()
                        && vbind[self.edges[ei].from].is_some()
                        && vbind[self.edges[ei].to].is_some()
                })
                .collect();
            self.bind_pinned(g, order, depth, &pending, 0, vpin, epin, vbind, ebind, emit);
            vbind[pv_idx] = None;
        }
    }

    /// Pin-aware twin of [`Self::bind_edges_rec`]. Candidates are
    /// deduped (a self-loop shows up in both adjacency lists); the
    /// occurrence multiplicity is restored by [`Self::canonical_keys`].
    #[allow(clippy::too_many_arguments)]
    fn bind_pinned(
        &self,
        g: &TemporalGraph,
        order: &[usize],
        depth: usize,
        pending: &[usize],
        k: usize,
        vpin: &[Option<VertexId>],
        epin: &[Option<EdgeId>],
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        emit: &mut impl FnMut(&[Option<VertexId>], &[Option<EdgeId>]),
    ) {
        if k == pending.len() {
            self.enumerate_pinned(g, order, depth + 1, vpin, epin, vbind, ebind, emit);
            return;
        }
        let ei = pending[k];
        let pe = &self.edges[ei];
        let from_v = vbind[pe.from].expect("bound");
        let to_v = vbind[pe.to].expect("bound");

        let mut candidates: Vec<EdgeId> = match epin[ei] {
            Some(pin) => vec![pin],
            None => g.incident_edges(from_v).map(|e| e.id).collect(),
        };
        candidates.sort_unstable();
        candidates.dedup();

        for ce in candidates {
            let Ok(e) = g.edge(ce) else { continue };
            let fwd = e.src == from_v && e.dst == to_v;
            let bwd = e.src == to_v && e.dst == from_v;
            let dir_ok = match pe.direction {
                Direction::Out => fwd,
                Direction::In => bwd,
                Direction::Any => fwd || bwd,
            };
            if !dir_ok || !self.edge_ok(pe, e) {
                continue;
            }
            if ebind.iter().flatten().any(|&b| b == ce) {
                continue;
            }
            ebind[ei] = Some(ce);
            self.bind_pinned(
                g,
                order,
                depth,
                pending,
                k + 1,
                vpin,
                epin,
                vbind,
                ebind,
                emit,
            );
            ebind[ei] = None;
        }
    }

    fn to_binding(&self, vbind: &[Option<VertexId>], ebind: &[Option<EdgeId>]) -> Binding {
        let mut b = Binding::default();
        for (pv, bound) in self.vertices.iter().zip(vbind) {
            if let Some(v) = bound {
                b.vertices.insert(pv.var.clone(), *v);
            }
        }
        for (pe, bound) in self.edges.iter().zip(ebind) {
            if let (Some(var), Some(e)) = (&pe.var, bound) {
                b.edges.insert(var.clone(), *e);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{props, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// user1 -USES-> card1 -TX{amount}-> m1/m2 ; user2 -USES-> card2 -TX-> m1
    fn fraud_graph() -> (TemporalGraph, HashMap<&'static str, VertexId>) {
        let mut g = TemporalGraph::new();
        let u1 = g.add_vertex(["User"], props! {"name" => "user1"});
        let u2 = g.add_vertex(["User"], props! {"name" => "user2"});
        let c1 = g.add_vertex(["CreditCard"], props! {"num" => "c1"});
        let c2 = g.add_vertex(["CreditCard"], props! {"num" => "c2"});
        let m1 = g.add_vertex(["Merchant"], props! {"name" => "m1"});
        let m2 = g.add_vertex(["Merchant"], props! {"name" => "m2"});
        g.add_edge(u1, c1, ["USES"], props! {}).unwrap();
        g.add_edge(u2, c2, ["USES"], props! {}).unwrap();
        g.add_edge(c1, m1, ["TX"], props! {"amount" => 1500.0})
            .unwrap();
        g.add_edge(c1, m2, ["TX"], props! {"amount" => 2000.0})
            .unwrap();
        g.add_edge(c2, m1, ["TX"], props! {"amount" => 30.0})
            .unwrap();
        let mut ids = HashMap::new();
        ids.insert("u1", u1);
        ids.insert("u2", u2);
        ids.insert("c1", c1);
        ids.insert("c2", c2);
        ids.insert("m1", m1);
        ids.insert("m2", m2);
        (g, ids)
    }

    #[test]
    fn single_vertex_pattern() {
        let (g, _) = fraud_graph();
        let mut p = Pattern::new();
        p.vertex("u", ["User"]);
        assert_eq!(p.find_all(&g).len(), 2);
        let mut p = Pattern::new();
        p.vertex("x", ["Nothing"]);
        assert!(p.find_all(&g).is_empty());
    }

    #[test]
    fn listing1_style_high_amount_tx() {
        // MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX WHERE t.amount>1000]->(m:Merchant)
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        let c = p.vertex("c", ["CreditCard"]);
        let m = p.vertex("m", ["Merchant"]);
        p.edge(None, u, c, ["USES"], Direction::Out);
        let tx = p.edge(Some("t"), c, m, ["TX"], Direction::Out);
        p.edge_pred(tx, PropPredicate::new("amount", CmpOp::Gt, 1000.0));
        let matches = p.find_all(&g);
        assert_eq!(
            matches.len(),
            2,
            "two high-amount transactions, both by user1"
        );
        for b in &matches {
            assert_eq!(b.vertices["u"], ids["u1"]);
            assert!(b.edges.contains_key("t"));
        }
    }

    #[test]
    fn vertex_predicate() {
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        p.vertex_pred(u, PropPredicate::new("name", CmpOp::Eq, "user2"));
        let matches = p.find_all(&g);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].vertices["u"], ids["u2"]);
    }

    #[test]
    fn direction_constraints() {
        let (g, ids) = fraud_graph();
        // merchants reached FROM cards: (m)<-[:TX]-(c)
        let mut p = Pattern::new();
        let m = p.vertex("m", ["Merchant"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(None, m, c, ["TX"], Direction::In);
        let ms: Vec<VertexId> = p.find_all(&g).iter().map(|b| b.vertices["m"]).collect();
        assert_eq!(ms.len(), 3);
        assert!(ms.contains(&ids["m1"]) && ms.contains(&ids["m2"]));
        // wrong direction yields nothing
        let mut p = Pattern::new();
        let m = p.vertex("m", ["Merchant"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(None, m, c, ["TX"], Direction::Out);
        assert!(p.find_all(&g).is_empty());
        // Any matches regardless
        let mut p = Pattern::new();
        let m = p.vertex("m", ["Merchant"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(None, m, c, ["TX"], Direction::Any);
        assert_eq!(p.find_all(&g).len(), 3);
    }

    #[test]
    fn edge_uniqueness_cypher_semantics() {
        // pattern (a)-[e1]->(b), (a)-[e2]->(c): e1 != e2 enforced, so a card
        // with two TX edges yields exactly the 2 ordered pairs
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let c = p.vertex("c", ["CreditCard"]);
        let m1 = p.vertex("m1", ["Merchant"]);
        let m2 = p.vertex("m2", ["Merchant"]);
        p.edge(Some("t1"), c, m1, ["TX"], Direction::Out);
        p.edge(Some("t2"), c, m2, ["TX"], Direction::Out);
        let matches = p.find_all(&g);
        // only card1 has two TX edges; ordered pairs (m1,m2) and (m2,m1)
        assert_eq!(matches.len(), 2);
        for b in &matches {
            assert_eq!(b.vertices["c"], ids["c1"]);
            assert_ne!(b.edges["t1"], b.edges["t2"]);
        }
    }

    #[test]
    fn distinct_vertices_flag() {
        let (g, _) = fraud_graph();
        // (a:Merchant), (b:Merchant) without edges: homomorphic gives 4
        let mut p = Pattern::new();
        p.vertex("a", ["Merchant"]);
        p.vertex("b", ["Merchant"]);
        assert_eq!(p.find_all(&g).len(), 4);
        p.distinct_vertices(true);
        assert_eq!(p.find_all(&g).len(), 2);
    }

    #[test]
    fn temporal_pattern_matching() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(["N"], props! {}, Interval::new(ts(0), ts(100)));
        let b = g.add_vertex(["N"], props! {});
        g.add_edge_valid(a, b, ["E"], props! {}, Interval::new(ts(0), ts(50)))
            .unwrap();
        let mut p = Pattern::new();
        let x = p.vertex("x", ["N"]);
        let y = p.vertex("y", ["N"]);
        p.edge(None, x, y, ["E"], Direction::Out);
        p.valid_at(ts(25));
        assert_eq!(p.find_all(&g).len(), 1);
        p.valid_at(ts(75));
        assert!(p.find_all(&g).is_empty(), "edge expired at t=50");
    }

    #[test]
    fn early_stop() {
        let (g, _) = fraud_graph();
        let mut p = Pattern::new();
        p.vertex("u", ["User"]);
        let mut count = 0;
        p.find(&g, |_| {
            count += 1;
            false // stop after first
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn multi_hop_path_pattern() {
        // (u:User)-[:USES]->(c)-[:TX]->(m:Merchant {name=m1})
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        let c = p.vertex("c", ["CreditCard"]);
        let m = p.vertex("m", ["Merchant"]);
        p.vertex_pred(m, PropPredicate::new("name", CmpOp::Eq, "m1"));
        p.edge(None, u, c, ["USES"], Direction::Out);
        p.edge(None, c, m, ["TX"], Direction::Out);
        let matches = p.find_all(&g);
        let users: Vec<VertexId> = matches.iter().map(|b| b.vertices["u"]).collect();
        assert_eq!(users.len(), 2, "both users transact with m1");
        assert!(users.contains(&ids["u1"]) && users.contains(&ids["u2"]));
    }

    #[test]
    fn pushed_preds_prune_without_reordering() {
        let (g, _) = fraud_graph();
        let build = |pushed: bool| {
            let mut p = Pattern::new();
            let u = p.vertex("u", ["User"]);
            let c = p.vertex("c", ["CreditCard"]);
            let m = p.vertex("m", ["Merchant"]);
            p.edge(None, u, c, ["USES"], Direction::Out);
            let tx = p.edge(Some("t"), c, m, ["TX"], Direction::Out);
            if pushed {
                p.edge_pushed_pred(tx, PropPredicate::new("amount", CmpOp::Gt, 1000.0));
                p.vertex_pushed_pred(m, PropPredicate::new("name", CmpOp::Eq, "m1"));
            }
            p
        };
        let all = build(false).find_all(&g);
        let pruned = build(true).find_all(&g);
        assert_eq!(pruned.len(), 1, "only user1's 1500.0 TX to m1 survives");
        // the pruned result is a subsequence of the un-pushed bindings,
        // in the same relative order
        let mut cursor = 0;
        for b in &pruned {
            let pos = all[cursor..]
                .iter()
                .position(|a| a == b)
                .expect("pruned binding present in full enumeration");
            cursor += pos + 1;
        }
    }

    /// Keyed enumeration must replay `find`'s emission sequence exactly
    /// — same bindings, same order, same multiplicity — when iterated
    /// in ascending key order.
    fn assert_keyed_matches_find(p: &Pattern, g: &TemporalGraph) {
        let sequential = p.find_all(g);
        let keyed: Vec<Binding> = p.find_keyed(g).into_values().collect();
        assert_eq!(
            sequential, keyed,
            "keyed map in key order must equal find() emission order"
        );
    }

    #[test]
    fn keyed_equals_find_on_fraud_patterns() {
        let (g, _) = fraud_graph();
        // multi-hop with edge var + preds
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        let c = p.vertex("c", ["CreditCard"]);
        let m = p.vertex("m", ["Merchant"]);
        p.edge(None, u, c, ["USES"], Direction::Out);
        let tx = p.edge(Some("t"), c, m, ["TX"], Direction::Out);
        p.edge_pred(tx, PropPredicate::new("amount", CmpOp::Gt, 10.0));
        assert_keyed_matches_find(&p, &g);
        // Any direction
        let mut p = Pattern::new();
        let m = p.vertex("m", ["Merchant"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(Some("t"), m, c, ["TX"], Direction::Any);
        assert_keyed_matches_find(&p, &g);
        // unlabeled full-scan seed + two slots sharing a vertex
        let mut p = Pattern::new();
        let c = p.vertex("c", [] as [&str; 0]);
        let m1 = p.vertex("m1", ["Merchant"]);
        let m2 = p.vertex("m2", ["Merchant"]);
        p.edge(Some("t1"), c, m1, ["TX"], Direction::Out);
        p.edge(Some("t2"), c, m2, ["TX"], Direction::Out);
        assert_keyed_matches_find(&p, &g);
    }

    #[test]
    fn keyed_self_loops_and_parallel_edges() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge(a, a, ["E"], props! {}).unwrap(); // self-loop
        g.add_edge(a, b, ["E"], props! {}).unwrap();
        g.add_edge(a, b, ["E"], props! {}).unwrap(); // parallel
        g.add_edge(b, a, ["E"], props! {}).unwrap();
        for dir in [Direction::Out, Direction::In, Direction::Any] {
            let mut p = Pattern::new();
            let x = p.vertex("x", ["N"]);
            let y = p.vertex("y", ["N"]);
            p.edge(Some("e"), x, y, ["E"], dir);
            assert_keyed_matches_find(&p, &g);
        }
        // the homomorphic self-loop match is emitted twice by find and
        // must occupy two keys in the map
        let mut p = Pattern::new();
        let x = p.vertex("x", ["N"]);
        let y = p.vertex("y", ["N"]);
        p.edge(Some("e"), x, y, ["E"], Direction::Out);
        let loops = p
            .find_all(&g)
            .iter()
            .filter(|m| m.vertices["x"] == a && m.vertices["y"] == a)
            .count();
        assert_eq!(loops, 2, "self-loop emitted once per adjacency occurrence");
    }

    /// Seeded (pinned) search over the new elements of a growth step
    /// must discover exactly the matches that appeared.
    #[test]
    fn seeded_search_covers_exactly_the_new_matches() {
        let build_pattern = |dir| {
            let mut p = Pattern::new();
            let u = p.vertex("u", ["User"]);
            let c = p.vertex("c", ["CreditCard"]);
            let m = p.vertex("m", [] as [&str; 0]);
            p.edge(Some("s"), u, c, ["USES"], Direction::Out);
            p.edge(Some("t"), c, m, ["TX"], dir);
            p
        };
        for dir in [Direction::Out, Direction::Any, Direction::In] {
            let p = build_pattern(dir);
            let (mut g, ids) = fraud_graph();
            let before = p.find_keyed(&g);
            // growth step: one new card wired to an existing user, one
            // new merchant, three new edges incl. one into existing m1
            let v0 = g.vertex_capacity();
            let e0 = g.edge_capacity();
            let c3 = g.add_vertex(["CreditCard"], props! {"num" => "c3"});
            let m3 = g.add_vertex(["Merchant"], props! {"name" => "m3"});
            g.add_edge(ids["u2"], c3, ["USES"], props! {}).unwrap();
            g.add_edge(c3, m3, ["TX"], props! {"amount" => 7.0})
                .unwrap();
            g.add_edge(c3, ids["m1"], ["TX"], props! {"amount" => 8.0})
                .unwrap();
            // reversed TX so the In/Any shapes also gain matches
            g.add_edge(m3, c3, ["TX"], props! {"amount" => 9.0})
                .unwrap();
            let after = p.find_keyed(&g);

            let mut grown = before.clone();
            for vi in v0..g.vertex_capacity() {
                p.find_keyed_with_vertex(&g, VertexId::from(vi), &mut grown);
            }
            for ei in e0..g.edge_capacity() {
                p.find_keyed_with_edge(&g, EdgeId::from(ei), &mut grown);
            }
            assert_eq!(
                grown, after,
                "old matches + seeded discoveries == full re-enumeration ({dir:?})"
            );
            // sanity: growth actually added matches, and none vanished
            assert!(after.len() > before.len());
            assert!(before.keys().all(|k| after.contains_key(k)));
        }
    }

    #[test]
    fn cmp_op_eval() {
        use CmpOp::*;
        assert!(Eq.eval(&Value::Int(1), &Value::Float(1.0)));
        assert!(Ne.eval(&Value::Int(1), &Value::Int(2)));
        assert!(Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(Ge.eval(&Value::Float(2.0), &Value::Int(2)));
        assert!(!Eq.eval(&Value::Null, &Value::Null), "null never matches");
        assert!(!Gt.eval(&Value::Null, &Value::Int(0)));
    }
}
