//! Subgraph pattern matching (Table 2, row Q1 — graph side; the
//! machinery behind the paper's Listing 1 fraud query).
//!
//! A [`Pattern`] is a small graph of variables with label and property
//! constraints. Matching follows Cypher semantics: *edge-isomorphic*
//! (each graph edge binds at most one pattern edge per match) with vertex
//! repetition allowed unless [`Pattern::distinct_vertices`] is set.
//! Matching is backtracking search seeded from the most selective
//! pattern vertex, extending along pattern edges through adjacency lists.

use crate::graph::{EdgeData, TemporalGraph, VertexData};
use hygraph_types::{EdgeId, Label, Timestamp, Value, VertexId};
use std::collections::HashMap;

/// Comparison operator for property predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` with SQL-ish null semantics (null never
    /// matches).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() || rhs.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => lhs.sql_eq(rhs).unwrap_or(false),
            CmpOp::Ne => lhs.sql_eq(rhs).map(|b| !b).unwrap_or(false),
            CmpOp::Lt => lhs.total_cmp(rhs).is_lt(),
            CmpOp::Le => lhs.total_cmp(rhs).is_le(),
            CmpOp::Gt => lhs.total_cmp(rhs).is_gt(),
            CmpOp::Ge => lhs.total_cmp(rhs).is_ge(),
        }
    }
}

/// A static-property predicate `element.key op value`.
#[derive(Clone, Debug, PartialEq)]
pub struct PropPredicate {
    /// Property key to read.
    pub key: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

impl PropPredicate {
    /// Builds a predicate.
    pub fn new(key: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Self {
            key: key.into(),
            op,
            value: value.into(),
        }
    }

    fn holds(&self, props: &hygraph_types::PropertyMap) -> bool {
        props
            .static_value(&self.key)
            .is_some_and(|v| self.op.eval(v, &self.value))
    }
}

/// Direction constraint of a pattern edge relative to its `from` vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `(from)-[]->(to)`
    Out,
    /// `(from)<-[]-(to)`
    In,
    /// `(from)-[]-(to)`
    Any,
}

/// A pattern vertex: a variable with optional label and property
/// constraints.
#[derive(Clone, Debug)]
pub struct PatternVertex {
    /// Variable name the match binds.
    pub var: String,
    /// Required labels (all must be present).
    pub labels: Vec<Label>,
    /// Static property predicates.
    pub preds: Vec<PropPredicate>,
    /// Predicates pushed down from a query-level filter. Enforced during
    /// matching exactly like `preds`, but excluded from the selectivity
    /// estimate, so pushing a predicate never changes the enumeration
    /// order — the surviving bindings are an order-preserving subsequence
    /// of the un-pushed pattern's bindings.
    pub pushed: Vec<PropPredicate>,
}

/// A pattern edge between two pattern vertices (referenced by index).
#[derive(Clone, Debug)]
pub struct PatternEdge {
    /// Optional variable name binding the matched edge.
    pub var: Option<String>,
    /// Index of the source pattern vertex.
    pub from: usize,
    /// Index of the target pattern vertex.
    pub to: usize,
    /// Required labels (all must be present).
    pub labels: Vec<Label>,
    /// Static property predicates.
    pub preds: Vec<PropPredicate>,
    /// Pushed-down filter predicates (see [`PatternVertex::pushed`]).
    pub pushed: Vec<PropPredicate>,
    /// Direction constraint.
    pub direction: Direction,
}

/// One match: variable → element bindings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Binding {
    /// Vertex variable bindings.
    pub vertices: HashMap<String, VertexId>,
    /// Edge variable bindings.
    pub edges: HashMap<String, EdgeId>,
}

/// A declarative subgraph pattern.
#[derive(Clone, Debug, Default)]
pub struct Pattern {
    vertices: Vec<PatternVertex>,
    edges: Vec<PatternEdge>,
    valid_at: Option<Timestamp>,
    distinct_vertices: bool,
}

impl Pattern {
    /// An empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern vertex; returns its index for edge construction.
    pub fn vertex(
        &mut self,
        var: impl Into<String>,
        labels: impl IntoIterator<Item = impl Into<Label>>,
    ) -> usize {
        self.vertices.push(PatternVertex {
            var: var.into(),
            labels: labels.into_iter().map(Into::into).collect(),
            preds: Vec::new(),
            pushed: Vec::new(),
        });
        self.vertices.len() - 1
    }

    /// Adds a property predicate to pattern vertex `idx`.
    pub fn vertex_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.vertices[idx].preds.push(pred);
        self
    }

    /// Adds a *pushed-down* predicate to pattern vertex `idx`: enforced
    /// during matching but invisible to the planner's selectivity
    /// ordering, so the result is an order-preserving pruned subsequence
    /// of the matches without the predicate.
    pub fn vertex_pushed_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.vertices[idx].pushed.push(pred);
        self
    }

    /// Adds a pattern edge; returns its index.
    pub fn edge(
        &mut self,
        var: Option<&str>,
        from: usize,
        to: usize,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        direction: Direction,
    ) -> usize {
        assert!(from < self.vertices.len() && to < self.vertices.len());
        self.edges.push(PatternEdge {
            var: var.map(str::to_owned),
            from,
            to,
            labels: labels.into_iter().map(Into::into).collect(),
            preds: Vec::new(),
            pushed: Vec::new(),
            direction,
        });
        self.edges.len() - 1
    }

    /// Adds a property predicate to pattern edge `idx`.
    pub fn edge_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.edges[idx].preds.push(pred);
        self
    }

    /// Adds a *pushed-down* predicate to pattern edge `idx` (see
    /// [`Self::vertex_pushed_pred`]).
    pub fn edge_pushed_pred(&mut self, idx: usize, pred: PropPredicate) -> &mut Self {
        self.edges[idx].pushed.push(pred);
        self
    }

    /// Restricts matches to elements valid at `t` (ρ-aware matching).
    pub fn valid_at(&mut self, t: Timestamp) -> &mut Self {
        self.valid_at = Some(t);
        self
    }

    /// Requires all vertex variables to bind distinct vertices
    /// (isomorphic matching).
    pub fn distinct_vertices(&mut self, on: bool) -> &mut Self {
        self.distinct_vertices = on;
        self
    }

    /// Number of pattern vertices.
    pub fn vertex_len(&self) -> usize {
        self.vertices.len()
    }

    fn vertex_ok(&self, pv: &PatternVertex, v: &VertexData) -> bool {
        if let Some(t) = self.valid_at {
            if !v.validity.contains(t) {
                return false;
            }
        }
        pv.labels.iter().all(|l| v.has_label(l.as_str()))
            && pv.preds.iter().all(|p| p.holds(&v.props))
            && pv.pushed.iter().all(|p| p.holds(&v.props))
    }

    fn edge_ok(&self, pe: &PatternEdge, e: &EdgeData) -> bool {
        if let Some(t) = self.valid_at {
            if !e.validity.contains(t) {
                return false;
            }
        }
        pe.labels.iter().all(|l| e.has_label(l.as_str()))
            && pe.preds.iter().all(|p| p.holds(&e.props))
            && pe.pushed.iter().all(|p| p.holds(&e.props))
    }

    /// Finds all matches of the pattern in `g`, visiting each via
    /// `on_match`. Return `false` from the callback to stop early.
    pub fn find(&self, g: &TemporalGraph, mut on_match: impl FnMut(&Binding) -> bool) {
        if self.vertices.is_empty() {
            return;
        }
        // Order vertices: seed with the most label/pred-constrained one,
        // then repeatedly add the vertex most connected to the chosen set.
        let order = self.plan_order();
        let mut vbind: Vec<Option<VertexId>> = vec![None; self.vertices.len()];
        let mut ebind: Vec<Option<EdgeId>> = vec![None; self.edges.len()];
        self.backtrack(g, &order, 0, &mut vbind, &mut ebind, &mut on_match);
    }

    /// Collects all matches (convenience over [`Self::find`]).
    pub fn find_all(&self, g: &TemporalGraph) -> Vec<Binding> {
        let mut out = Vec::new();
        self.find(g, |b| {
            out.push(b.clone());
            true
        });
        out
    }

    fn selectivity(&self, idx: usize) -> usize {
        self.vertices[idx].labels.len() * 2 + self.vertices[idx].preds.len() * 3
    }

    fn plan_order(&self) -> Vec<usize> {
        let n = self.vertices.len();
        let mut order = Vec::with_capacity(n);
        let mut chosen = vec![false; n];
        // seed: most selective vertex
        let seed = (0..n)
            .max_by_key(|&i| self.selectivity(i))
            .expect("non-empty");
        order.push(seed);
        chosen[seed] = true;
        while order.len() < n {
            // prefer connected-to-chosen vertices, tie-break on selectivity
            let next = (0..n)
                .filter(|&i| !chosen[i])
                .max_by_key(|&i| {
                    let connected = self
                        .edges
                        .iter()
                        .any(|e| (e.from == i && chosen[e.to]) || (e.to == i && chosen[e.from]));
                    (connected as usize, self.selectivity(i))
                })
                .expect("remaining vertex exists");
            order.push(next);
            chosen[next] = true;
        }
        order
    }

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        &self,
        g: &TemporalGraph,
        order: &[usize],
        depth: usize,
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        on_match: &mut impl FnMut(&Binding) -> bool,
    ) -> bool {
        if depth == order.len() {
            // all vertices bound; all edges were bound along the way
            let binding = self.to_binding(vbind, ebind);
            return on_match(&binding);
        }
        let pv_idx = order[depth];
        let pv = &self.vertices[pv_idx];

        // candidate vertices: through an already-bound neighbour when
        // possible, else full scan
        let anchor = self.edges.iter().enumerate().find(|(ei, e)| {
            ebind[*ei].is_none()
                && ((e.from == pv_idx && vbind[e.to].is_some())
                    || (e.to == pv_idx && vbind[e.from].is_some()))
        });

        let candidates: Vec<VertexId> = match anchor {
            Some((_, e)) => {
                let (bound_idx, from_side) = if e.from == pv_idx {
                    (e.to, false)
                } else {
                    (e.from, true)
                };
                let bound_v = vbind[bound_idx].expect("anchor bound");
                // direction as seen from the bound vertex
                let dir = match (e.direction, from_side) {
                    (Direction::Any, _) => Direction::Any,
                    (Direction::Out, true) => Direction::Out, // bound is `from`
                    (Direction::Out, false) => Direction::In, // bound is `to`
                    (Direction::In, true) => Direction::In,
                    (Direction::In, false) => Direction::Out,
                };
                let mut cs: Vec<VertexId> = match dir {
                    Direction::Out => g.neighbors_out(bound_v).map(|(_, v)| v).collect(),
                    Direction::In => g.neighbors_in(bound_v).map(|(_, v)| v).collect(),
                    Direction::Any => g.neighbors(bound_v).map(|(_, v)| v).collect(),
                };
                cs.sort_unstable();
                cs.dedup();
                cs
            }
            // unanchored: seed from the label index when the pattern
            // vertex is labelled, else the full vertex scan
            None => match pv.labels.first() {
                Some(l) => g.vertex_ids_with_label(l.as_str()),
                None => g.vertex_ids().collect(),
            },
        };

        for cand in candidates {
            let Ok(vdata) = g.vertex(cand) else { continue };
            if !self.vertex_ok(pv, vdata) {
                continue;
            }
            if self.distinct_vertices && vbind.iter().flatten().any(|&b| b == cand) {
                continue;
            }
            vbind[pv_idx] = Some(cand);
            // bind every pattern edge whose endpoints are now both bound
            if self.bind_edges(g, vbind, ebind, pv_idx, |vb, eb| {
                self.backtrack(g, order, depth + 1, vb, eb, on_match)
            }) {
                vbind[pv_idx] = None;
            } else {
                vbind[pv_idx] = None;
                return false; // stop requested
            }
        }
        true
    }

    /// Binds all unbound pattern edges with both endpoints bound,
    /// enumerating graph-edge choices; calls `cont` for each complete
    /// assignment. Returns `false` if `cont` requested stop.
    fn bind_edges(
        &self,
        g: &TemporalGraph,
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        _just_bound: usize,
        mut cont: impl FnMut(&mut Vec<Option<VertexId>>, &mut Vec<Option<EdgeId>>) -> bool,
    ) -> bool {
        let pending: Vec<usize> = (0..self.edges.len())
            .filter(|&ei| {
                ebind[ei].is_none()
                    && vbind[self.edges[ei].from].is_some()
                    && vbind[self.edges[ei].to].is_some()
            })
            .collect();
        self.bind_edges_rec(g, &pending, 0, vbind, ebind, &mut cont)
    }

    fn bind_edges_rec(
        &self,
        g: &TemporalGraph,
        pending: &[usize],
        k: usize,
        vbind: &mut Vec<Option<VertexId>>,
        ebind: &mut Vec<Option<EdgeId>>,
        cont: &mut impl FnMut(&mut Vec<Option<VertexId>>, &mut Vec<Option<EdgeId>>) -> bool,
    ) -> bool {
        if k == pending.len() {
            return cont(vbind, ebind);
        }
        let ei = pending[k];
        let pe = &self.edges[ei];
        let from_v = vbind[pe.from].expect("bound");
        let to_v = vbind[pe.to].expect("bound");

        // enumerate graph edges between from_v and to_v honouring direction
        let candidates: Vec<EdgeId> = g
            .incident_edges(from_v)
            .filter(|e| {
                let fwd = e.src == from_v && e.dst == to_v;
                let bwd = e.src == to_v && e.dst == from_v;
                match pe.direction {
                    Direction::Out => fwd,
                    Direction::In => bwd,
                    Direction::Any => fwd || bwd,
                }
            })
            .filter(|e| self.edge_ok(pe, e))
            .map(|e| e.id)
            .collect();

        for ce in candidates {
            // Cypher semantics: edges are used at most once per match
            if ebind.iter().flatten().any(|&b| b == ce) {
                continue;
            }
            ebind[ei] = Some(ce);
            let keep_going = self.bind_edges_rec(g, pending, k + 1, vbind, ebind, cont);
            ebind[ei] = None;
            if !keep_going {
                return false;
            }
        }
        true
    }

    fn to_binding(&self, vbind: &[Option<VertexId>], ebind: &[Option<EdgeId>]) -> Binding {
        let mut b = Binding::default();
        for (pv, bound) in self.vertices.iter().zip(vbind) {
            if let Some(v) = bound {
                b.vertices.insert(pv.var.clone(), *v);
            }
        }
        for (pe, bound) in self.edges.iter().zip(ebind) {
            if let (Some(var), Some(e)) = (&pe.var, bound) {
                b.edges.insert(var.clone(), *e);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{props, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// user1 -USES-> card1 -TX{amount}-> m1/m2 ; user2 -USES-> card2 -TX-> m1
    fn fraud_graph() -> (TemporalGraph, HashMap<&'static str, VertexId>) {
        let mut g = TemporalGraph::new();
        let u1 = g.add_vertex(["User"], props! {"name" => "user1"});
        let u2 = g.add_vertex(["User"], props! {"name" => "user2"});
        let c1 = g.add_vertex(["CreditCard"], props! {"num" => "c1"});
        let c2 = g.add_vertex(["CreditCard"], props! {"num" => "c2"});
        let m1 = g.add_vertex(["Merchant"], props! {"name" => "m1"});
        let m2 = g.add_vertex(["Merchant"], props! {"name" => "m2"});
        g.add_edge(u1, c1, ["USES"], props! {}).unwrap();
        g.add_edge(u2, c2, ["USES"], props! {}).unwrap();
        g.add_edge(c1, m1, ["TX"], props! {"amount" => 1500.0})
            .unwrap();
        g.add_edge(c1, m2, ["TX"], props! {"amount" => 2000.0})
            .unwrap();
        g.add_edge(c2, m1, ["TX"], props! {"amount" => 30.0})
            .unwrap();
        let mut ids = HashMap::new();
        ids.insert("u1", u1);
        ids.insert("u2", u2);
        ids.insert("c1", c1);
        ids.insert("c2", c2);
        ids.insert("m1", m1);
        ids.insert("m2", m2);
        (g, ids)
    }

    #[test]
    fn single_vertex_pattern() {
        let (g, _) = fraud_graph();
        let mut p = Pattern::new();
        p.vertex("u", ["User"]);
        assert_eq!(p.find_all(&g).len(), 2);
        let mut p = Pattern::new();
        p.vertex("x", ["Nothing"]);
        assert!(p.find_all(&g).is_empty());
    }

    #[test]
    fn listing1_style_high_amount_tx() {
        // MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX WHERE t.amount>1000]->(m:Merchant)
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        let c = p.vertex("c", ["CreditCard"]);
        let m = p.vertex("m", ["Merchant"]);
        p.edge(None, u, c, ["USES"], Direction::Out);
        let tx = p.edge(Some("t"), c, m, ["TX"], Direction::Out);
        p.edge_pred(tx, PropPredicate::new("amount", CmpOp::Gt, 1000.0));
        let matches = p.find_all(&g);
        assert_eq!(
            matches.len(),
            2,
            "two high-amount transactions, both by user1"
        );
        for b in &matches {
            assert_eq!(b.vertices["u"], ids["u1"]);
            assert!(b.edges.contains_key("t"));
        }
    }

    #[test]
    fn vertex_predicate() {
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        p.vertex_pred(u, PropPredicate::new("name", CmpOp::Eq, "user2"));
        let matches = p.find_all(&g);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].vertices["u"], ids["u2"]);
    }

    #[test]
    fn direction_constraints() {
        let (g, ids) = fraud_graph();
        // merchants reached FROM cards: (m)<-[:TX]-(c)
        let mut p = Pattern::new();
        let m = p.vertex("m", ["Merchant"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(None, m, c, ["TX"], Direction::In);
        let ms: Vec<VertexId> = p.find_all(&g).iter().map(|b| b.vertices["m"]).collect();
        assert_eq!(ms.len(), 3);
        assert!(ms.contains(&ids["m1"]) && ms.contains(&ids["m2"]));
        // wrong direction yields nothing
        let mut p = Pattern::new();
        let m = p.vertex("m", ["Merchant"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(None, m, c, ["TX"], Direction::Out);
        assert!(p.find_all(&g).is_empty());
        // Any matches regardless
        let mut p = Pattern::new();
        let m = p.vertex("m", ["Merchant"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(None, m, c, ["TX"], Direction::Any);
        assert_eq!(p.find_all(&g).len(), 3);
    }

    #[test]
    fn edge_uniqueness_cypher_semantics() {
        // pattern (a)-[e1]->(b), (a)-[e2]->(c): e1 != e2 enforced, so a card
        // with two TX edges yields exactly the 2 ordered pairs
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let c = p.vertex("c", ["CreditCard"]);
        let m1 = p.vertex("m1", ["Merchant"]);
        let m2 = p.vertex("m2", ["Merchant"]);
        p.edge(Some("t1"), c, m1, ["TX"], Direction::Out);
        p.edge(Some("t2"), c, m2, ["TX"], Direction::Out);
        let matches = p.find_all(&g);
        // only card1 has two TX edges; ordered pairs (m1,m2) and (m2,m1)
        assert_eq!(matches.len(), 2);
        for b in &matches {
            assert_eq!(b.vertices["c"], ids["c1"]);
            assert_ne!(b.edges["t1"], b.edges["t2"]);
        }
    }

    #[test]
    fn distinct_vertices_flag() {
        let (g, _) = fraud_graph();
        // (a:Merchant), (b:Merchant) without edges: homomorphic gives 4
        let mut p = Pattern::new();
        p.vertex("a", ["Merchant"]);
        p.vertex("b", ["Merchant"]);
        assert_eq!(p.find_all(&g).len(), 4);
        p.distinct_vertices(true);
        assert_eq!(p.find_all(&g).len(), 2);
    }

    #[test]
    fn temporal_pattern_matching() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(["N"], props! {}, Interval::new(ts(0), ts(100)));
        let b = g.add_vertex(["N"], props! {});
        g.add_edge_valid(a, b, ["E"], props! {}, Interval::new(ts(0), ts(50)))
            .unwrap();
        let mut p = Pattern::new();
        let x = p.vertex("x", ["N"]);
        let y = p.vertex("y", ["N"]);
        p.edge(None, x, y, ["E"], Direction::Out);
        p.valid_at(ts(25));
        assert_eq!(p.find_all(&g).len(), 1);
        p.valid_at(ts(75));
        assert!(p.find_all(&g).is_empty(), "edge expired at t=50");
    }

    #[test]
    fn early_stop() {
        let (g, _) = fraud_graph();
        let mut p = Pattern::new();
        p.vertex("u", ["User"]);
        let mut count = 0;
        p.find(&g, |_| {
            count += 1;
            false // stop after first
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn multi_hop_path_pattern() {
        // (u:User)-[:USES]->(c)-[:TX]->(m:Merchant {name=m1})
        let (g, ids) = fraud_graph();
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        let c = p.vertex("c", ["CreditCard"]);
        let m = p.vertex("m", ["Merchant"]);
        p.vertex_pred(m, PropPredicate::new("name", CmpOp::Eq, "m1"));
        p.edge(None, u, c, ["USES"], Direction::Out);
        p.edge(None, c, m, ["TX"], Direction::Out);
        let matches = p.find_all(&g);
        let users: Vec<VertexId> = matches.iter().map(|b| b.vertices["u"]).collect();
        assert_eq!(users.len(), 2, "both users transact with m1");
        assert!(users.contains(&ids["u1"]) && users.contains(&ids["u2"]));
    }

    #[test]
    fn pushed_preds_prune_without_reordering() {
        let (g, _) = fraud_graph();
        let build = |pushed: bool| {
            let mut p = Pattern::new();
            let u = p.vertex("u", ["User"]);
            let c = p.vertex("c", ["CreditCard"]);
            let m = p.vertex("m", ["Merchant"]);
            p.edge(None, u, c, ["USES"], Direction::Out);
            let tx = p.edge(Some("t"), c, m, ["TX"], Direction::Out);
            if pushed {
                p.edge_pushed_pred(tx, PropPredicate::new("amount", CmpOp::Gt, 1000.0));
                p.vertex_pushed_pred(m, PropPredicate::new("name", CmpOp::Eq, "m1"));
            }
            p
        };
        let all = build(false).find_all(&g);
        let pruned = build(true).find_all(&g);
        assert_eq!(pruned.len(), 1, "only user1's 1500.0 TX to m1 survives");
        // the pruned result is a subsequence of the un-pushed bindings,
        // in the same relative order
        let mut cursor = 0;
        for b in &pruned {
            let pos = all[cursor..]
                .iter()
                .position(|a| a == b)
                .expect("pruned binding present in full enumeration");
            cursor += pos + 1;
        }
    }

    #[test]
    fn cmp_op_eval() {
        use CmpOp::*;
        assert!(Eq.eval(&Value::Int(1), &Value::Float(1.0)));
        assert!(Ne.eval(&Value::Int(1), &Value::Int(2)));
        assert!(Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(Ge.eval(&Value::Float(2.0), &Value::Int(2)));
        assert!(!Eq.eval(&Value::Null, &Value::Null), "null never matches");
        assert!(!Gt.eval(&Value::Null, &Value::Int(0)));
    }
}
