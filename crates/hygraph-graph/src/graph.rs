//! The temporal property graph store.
//!
//! Dense-id storage: vertices and edges live in `Vec`s indexed by their
//! ids, with per-vertex out/in adjacency lists. Every element carries a
//! label set (λ), a property map (φ) and a validity interval (ρ).
//! Structural deletion is modelled two ways, matching TPG practice:
//!
//! * [`TemporalGraph::close_vertex`] / [`TemporalGraph::close_edge`] end
//!   an element's validity at a given instant but keep its history — the
//!   normal temporal-graph update (R3: "structural updates without
//!   compromising integrity");
//! * [`TemporalGraph::remove_vertex`] / [`TemporalGraph::remove_edge`]
//!   tombstone the element entirely (physical delete).

use crate::store::{SnapAdj, SnapSlab};
use hygraph_types::pmap::{SnapMap, SnapshotImpl};
use hygraph_types::{
    EdgeId, HyGraphError, Interval, Label, PropertyMap, Result, Timestamp, VertexId,
};

/// Stored data of one vertex.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexData {
    /// The vertex id (stable, dense).
    pub id: VertexId,
    /// Label set λ(v).
    pub labels: Vec<Label>,
    /// Property map φ(v, ·).
    pub props: PropertyMap,
    /// Validity interval ρ(v).
    pub validity: Interval,
}

impl VertexData {
    /// Whether the vertex carries `label`.
    pub fn has_label(&self, label: &str) -> bool {
        self.labels.iter().any(|l| l.as_str() == label)
    }
}

/// Stored data of one edge.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeData {
    /// The edge id (stable, dense).
    pub id: EdgeId,
    /// Source vertex.
    pub src: VertexId,
    /// Target vertex.
    pub dst: VertexId,
    /// Label set λ(e).
    pub labels: Vec<Label>,
    /// Property map φ(e, ·).
    pub props: PropertyMap,
    /// Validity interval ρ(e).
    pub validity: Interval,
}

impl EdgeData {
    /// Whether the edge carries `label`.
    pub fn has_label(&self, label: &str) -> bool {
        self.labels.iter().any(|l| l.as_str() == label)
    }

    /// The endpoint opposite to `v` (useful for undirected traversal).
    pub fn other(&self, v: VertexId) -> VertexId {
        if self.src == v {
            self.dst
        } else {
            self.src
        }
    }
}

/// A directed temporal property graph.
///
/// Interior collections are dual-mode ([`SnapshotImpl`], chosen at
/// construction): the default persistent tries make `clone` O(1) and
/// mutation O(log n) path copies, so snapshot publication in the
/// sharded engine costs O(batch) per commit even while readers pin old
/// epochs; the `cow` mode keeps the legacy deep-copy-on-shared-write
/// vectors as a rollback path. Both modes present identical semantics
/// and identical (ascending-id) iteration order.
#[derive(Clone, Debug)]
pub struct TemporalGraph {
    pub(crate) vertices: SnapSlab<VertexData>,
    pub(crate) edges: SnapSlab<EdgeData>,
    pub(crate) out_adj: SnapAdj,
    pub(crate) in_adj: SnapAdj,
    // label -> vertices carrying it (kept in insertion order; tombstoned
    // entries are pruned on removal). Accelerates label-seeded pattern
    // matching and HyQL candidate generation.
    pub(crate) vertex_label_index: SnapMap<Label, Vec<VertexId>>,
    pub(crate) live_vertices: usize,
    pub(crate) live_edges: usize,
}

impl Default for TemporalGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl TemporalGraph {
    /// An empty graph in the process-configured snapshot mode.
    pub fn new() -> Self {
        Self::new_with_impl(SnapshotImpl::configured())
    }

    /// An empty graph with an explicit snapshot implementation (tests
    /// and decoders pin the mode; everything else uses [`Self::new`]).
    pub fn new_with_impl(mode: SnapshotImpl) -> Self {
        Self {
            vertices: SnapSlab::new_with(mode),
            edges: SnapSlab::new_with(mode),
            out_adj: SnapAdj::new_with(mode),
            in_adj: SnapAdj::new_with(mode),
            vertex_label_index: SnapMap::new_with(mode),
            live_vertices: 0,
            live_edges: 0,
        }
    }

    /// An empty graph with reserved capacity (meaningful in `cow` mode;
    /// the persistent tries allocate per node and ignore the hint).
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        let mode = SnapshotImpl::configured();
        Self {
            vertices: SnapSlab::with_capacity(mode, vertices),
            edges: SnapSlab::with_capacity(mode, edges),
            out_adj: SnapAdj::with_capacity(mode, vertices),
            in_adj: SnapAdj::with_capacity(mode, vertices),
            vertex_label_index: SnapMap::new_with(mode),
            live_vertices: 0,
            live_edges: 0,
        }
    }

    /// The snapshot implementation this graph's storage was built in.
    pub fn snapshot_impl(&self) -> SnapshotImpl {
        self.vertices.mode()
    }

    // ---- construction ------------------------------------------------

    /// Adds a vertex valid over all of time.
    pub fn add_vertex(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> VertexId {
        self.add_vertex_valid(labels, props, Interval::ALL)
    }

    /// Adds a vertex valid from `from` onwards (ρ initialised to
    /// ⟨from, max(T)⟩ per the paper).
    pub fn add_vertex_from(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
        from: Timestamp,
    ) -> VertexId {
        self.add_vertex_valid(labels, props, Interval::from(from))
    }

    /// Adds a vertex with an explicit validity interval.
    pub fn add_vertex_valid(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
        validity: Interval,
    ) -> VertexId {
        let id = VertexId::from(self.vertices.slots());
        let labels: Vec<Label> = labels.into_iter().map(Into::into).collect();
        for l in &labels {
            if !self.vertex_label_index.contains_key(l) {
                self.vertex_label_index.insert(l.clone(), Vec::new());
            }
            self.vertex_label_index
                .get_mut(l)
                .expect("ensured above")
                .push(id);
        }
        self.vertices.push_slot(Some(VertexData {
            id,
            labels,
            props,
            validity,
        }));
        self.out_adj.push_empty();
        self.in_adj.push_empty();
        self.live_vertices += 1;
        id
    }

    /// Adds an edge valid over all of time.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        self.add_edge_valid(src, dst, labels, props, Interval::ALL)
    }

    /// Adds an edge valid from `from` onwards.
    pub fn add_edge_from(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
        from: Timestamp,
    ) -> Result<EdgeId> {
        self.add_edge_valid(src, dst, labels, props, Interval::from(from))
    }

    /// Adds an edge with an explicit validity interval. Both endpoints
    /// must exist (temporal integrity is checked lazily by
    /// [`Self::validate`], since endpoints may legitimately be created
    /// with broader validity later in a bulk load).
    pub fn add_edge_valid(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
        validity: Interval,
    ) -> Result<EdgeId> {
        self.vertex(src)?;
        self.vertex(dst)?;
        let id = EdgeId::from(self.edges.slots());
        self.edges.push_slot(Some(EdgeData {
            id,
            src,
            dst,
            labels: labels.into_iter().map(Into::into).collect(),
            props,
            validity,
        }));
        self.out_adj.add(src.index(), id);
        self.in_adj.add(dst.index(), id);
        self.live_edges += 1;
        Ok(id)
    }

    // ---- lookup -------------------------------------------------------

    /// The data of vertex `v`.
    pub fn vertex(&self, v: VertexId) -> Result<&VertexData> {
        self.vertices
            .get(v.index())
            .ok_or(HyGraphError::VertexNotFound(v))
    }

    /// Mutable access to vertex `v`.
    pub fn vertex_mut(&mut self, v: VertexId) -> Result<&mut VertexData> {
        self.vertices
            .get_mut(v.index())
            .ok_or(HyGraphError::VertexNotFound(v))
    }

    /// The data of edge `e`.
    pub fn edge(&self, e: EdgeId) -> Result<&EdgeData> {
        self.edges
            .get(e.index())
            .ok_or(HyGraphError::EdgeNotFound(e))
    }

    /// Mutable access to edge `e`.
    pub fn edge_mut(&mut self, e: EdgeId) -> Result<&mut EdgeData> {
        self.edges
            .get_mut(e.index())
            .ok_or(HyGraphError::EdgeNotFound(e))
    }

    /// Whether vertex `v` exists (not tombstoned).
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices.get(v.index()).is_some()
    }

    /// Whether edge `e` exists (not tombstoned).
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some()
    }

    /// Number of live vertices.
    pub fn vertex_count(&self) -> usize {
        self.live_vertices
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound over all vertex indices ever allocated (for dense
    /// per-vertex arrays in algorithms).
    pub fn vertex_capacity(&self) -> usize {
        self.vertices.slots()
    }

    /// Upper bound over all edge indices ever allocated (mirror of
    /// [`Self::vertex_capacity`]; lets change observers diff id ranges
    /// across a mutation batch).
    pub fn edge_capacity(&self) -> usize {
        self.edges.slots()
    }

    // ---- iteration ----------------------------------------------------

    /// Iterates all live vertices (ascending id order in both modes).
    pub fn vertices(&self) -> impl Iterator<Item = &VertexData> {
        self.vertices.iter_live()
    }

    /// Iterates all live edges (ascending id order in both modes).
    pub fn edges(&self) -> impl Iterator<Item = &EdgeData> {
        self.edges.iter_live()
    }

    /// Iterates ids of all live vertices.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices().map(|v| v.id)
    }

    /// Iterates ids of all live edges.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges().map(|e| e.id)
    }

    /// Live vertices carrying `label`, served from the label index in
    /// O(matches) rather than a full vertex scan.
    pub fn vertices_with_label<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = &'a VertexData> + 'a {
        self.vertex_label_index
            .get(&Label::new(label))
            .into_iter()
            .flatten()
            .filter_map(|&v| self.vertices.get(v.index()))
    }

    /// Ids of live vertices carrying `label` (index-backed).
    pub fn vertex_ids_with_label(&self, label: &str) -> Vec<VertexId> {
        self.vertices_with_label(label).map(|v| v.id).collect()
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = &EdgeData> {
        self.out_adj
            .edge_ids(v.index())
            .filter_map(|e| self.edges.get(e.index()))
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = &EdgeData> {
        self.in_adj
            .edge_ids(v.index())
            .filter_map(|e| self.edges.get(e.index()))
    }

    /// All incident edges of `v` (out then in; self-loops appear twice).
    pub fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = &EdgeData> {
        self.out_edges(v).chain(self.in_edges(v))
    }

    /// Out-neighbours of `v` as `(edge, neighbour)` pairs.
    pub fn neighbors_out(&self, v: VertexId) -> impl Iterator<Item = (&EdgeData, VertexId)> {
        self.out_edges(v).map(|e| (e, e.dst))
    }

    /// In-neighbours of `v` as `(edge, neighbour)` pairs.
    pub fn neighbors_in(&self, v: VertexId) -> impl Iterator<Item = (&EdgeData, VertexId)> {
        self.in_edges(v).map(|e| (e, e.src))
    }

    /// Undirected neighbours of `v` as `(edge, neighbour)` pairs.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (&EdgeData, VertexId)> {
        self.incident_edges(v).map(move |e| (e, e.other(v)))
    }

    /// Out-degree of `v` (live edges only).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges(v).count()
    }

    /// In-degree of `v` (live edges only).
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges(v).count()
    }

    /// Total degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    // ---- temporal updates ----------------------------------------------

    /// Ends vertex `v`'s validity at `t` and closes all its incident
    /// still-open edges at the same instant (temporal cascade).
    pub fn close_vertex(&mut self, v: VertexId, t: Timestamp) -> Result<()> {
        let incident: Vec<EdgeId> = self
            .incident_edges(v)
            .filter(|e| e.validity.contains(t) || e.validity.start >= t)
            .map(|e| e.id)
            .collect();
        for e in incident {
            self.close_edge(e, t)?;
        }
        let data = self.vertex_mut(v)?;
        data.validity = data.validity.closed_at(t);
        Ok(())
    }

    /// Ends edge `e`'s validity at `t`.
    pub fn close_edge(&mut self, e: EdgeId, t: Timestamp) -> Result<()> {
        let data = self.edge_mut(e)?;
        data.validity = data.validity.closed_at(t);
        Ok(())
    }

    /// Physically removes edge `e` (tombstone).
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<EdgeData> {
        let data = self
            .edges
            .take(e.index())
            .ok_or(HyGraphError::EdgeNotFound(e))?;
        self.out_adj.remove(data.src.index(), e);
        self.in_adj.remove(data.dst.index(), e);
        self.live_edges -= 1;
        Ok(data)
    }

    /// Physically removes vertex `v` and all incident edges.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<VertexData> {
        self.vertex(v)?;
        let incident: Vec<EdgeId> = self.incident_edges(v).map(|e| e.id).collect();
        for e in incident {
            // self-loops appear twice in `incident`; the second removal is a no-op
            let _ = self.remove_edge(e);
        }
        let data = self.vertices.take(v.index()).expect("checked above");
        for l in &data.labels {
            if let Some(list) = self.vertex_label_index.get_mut(l) {
                list.retain(|&x| x != v);
            }
        }
        self.live_vertices -= 1;
        Ok(data)
    }

    // ---- validation (R2 temporal integrity) -----------------------------

    /// Checks temporal integrity: every edge's validity must be contained
    /// in both endpoints' validity (an edge cannot outlive its vertices).
    pub fn validate(&self) -> Result<()> {
        for e in self.edges() {
            let sv = self.vertex(e.src)?;
            let dv = self.vertex(e.dst)?;
            if !sv.validity.contains_interval(&e.validity) {
                return Err(HyGraphError::TemporalIntegrity(format!(
                    "edge {} validity {} exceeds source vertex {} validity {}",
                    e.id, e.validity, e.src, sv.validity
                )));
            }
            if !dv.validity.contains_interval(&e.validity) {
                return Err(HyGraphError::TemporalIntegrity(format!(
                    "edge {} validity {} exceeds target vertex {} validity {}",
                    e.id, e.validity, e.dst, dv.validity
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn triangle() -> (TemporalGraph, [VertexId; 3], [EdgeId; 3]) {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["Node"], props! {"name" => "a"});
        let b = g.add_vertex(["Node"], props! {"name" => "b"});
        let c = g.add_vertex(["Node"], props! {"name" => "c"});
        let e0 = g.add_edge(a, b, ["LINK"], props! {}).unwrap();
        let e1 = g.add_edge(b, c, ["LINK"], props! {}).unwrap();
        let e2 = g.add_edge(c, a, ["LINK"], props! {}).unwrap();
        (g, [a, b, c], [e0, e1, e2])
    }

    #[test]
    fn construction_and_counts() {
        let (g, [a, b, c], _) = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.degree(b), 2);
        assert!(g.contains_vertex(c));
        assert!(!g.contains_vertex(VertexId::new(99)));
    }

    #[test]
    fn edge_requires_endpoints() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["X"], props! {});
        let err = g
            .add_edge(a, VertexId::new(7), ["E"], props! {})
            .unwrap_err();
        assert_eq!(err, HyGraphError::VertexNotFound(VertexId::new(7)));
    }

    #[test]
    fn adjacency_iteration() {
        let (g, [a, b, _c], [e0, _, e2]) = triangle();
        let out: Vec<VertexId> = g.neighbors_out(a).map(|(_, v)| v).collect();
        assert_eq!(out, vec![b]);
        let all: Vec<EdgeId> = g.incident_edges(a).map(|e| e.id).collect();
        assert_eq!(all, vec![e0, e2]);
        let undirected: Vec<VertexId> = g.neighbors(a).map(|(_, v)| v).collect();
        assert_eq!(undirected.len(), 2);
    }

    #[test]
    fn label_filter_and_props() {
        let mut g = TemporalGraph::new();
        g.add_vertex(["User", "Person"], props! {"name" => "u1"});
        g.add_vertex(["Merchant"], props! {"name" => "m1"});
        assert_eq!(g.vertices_with_label("User").count(), 1);
        assert_eq!(g.vertices_with_label("Person").count(), 1);
        assert_eq!(g.vertices_with_label("Ghost").count(), 0);
        let u = g.vertices_with_label("User").next().unwrap();
        assert_eq!(u.props.static_value("name").unwrap().as_str(), Some("u1"));
    }

    #[test]
    fn close_vertex_cascades_to_edges() {
        let (mut g, [a, _, _], [e0, _, e2]) = triangle();
        g.close_vertex(a, ts(100)).unwrap();
        assert!(!g.vertex(a).unwrap().validity.contains(ts(100)));
        assert!(g.vertex(a).unwrap().validity.contains(ts(99)));
        // both incident edges closed
        assert!(!g.edge(e0).unwrap().validity.contains(ts(100)));
        assert!(!g.edge(e2).unwrap().validity.contains(ts(100)));
        // elements still exist (history preserved)
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn remove_vertex_tombstones() {
        let (mut g, [a, b, _], _) = triangle();
        let removed = g.remove_vertex(a).unwrap();
        assert_eq!(removed.id, a);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1, "two incident edges removed");
        assert!(g.vertex(a).is_err());
        assert_eq!(g.degree(b), 1);
        // ids remain stable for survivors
        assert!(g.contains_vertex(b));
    }

    #[test]
    fn remove_vertex_with_self_loop() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["X"], props! {});
        g.add_edge(a, a, ["SELF"], props! {}).unwrap();
        g.remove_vertex(a).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn validity_windows() {
        let mut g = TemporalGraph::new();
        let v = g.add_vertex_from(["Company"], props! {}, ts(1000));
        assert!(!g.vertex(v).unwrap().validity.contains(ts(999)));
        assert!(g.vertex(v).unwrap().validity.contains(ts(1_000_000)));
    }

    #[test]
    fn validate_temporal_integrity() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(["X"], props! {}, Interval::new(ts(0), ts(100)));
        let b = g.add_vertex(["X"], props! {});
        // edge valid beyond a's lifetime
        g.add_edge_valid(a, b, ["E"], props! {}, Interval::new(ts(50), ts(200)))
            .unwrap();
        assert!(matches!(
            g.validate().unwrap_err(),
            HyGraphError::TemporalIntegrity(_)
        ));
        let mut ok = TemporalGraph::new();
        let a = ok.add_vertex_valid(["X"], props! {}, Interval::new(ts(0), ts(100)));
        let b = ok.add_vertex(["X"], props! {});
        ok.add_edge_valid(a, b, ["E"], props! {}, Interval::new(ts(10), ts(90)))
            .unwrap();
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn mutation_through_vertex_mut() {
        let (mut g, [a, _, _], _) = triangle();
        g.vertex_mut(a).unwrap().props.set("flag", true);
        assert_eq!(
            g.vertex(a)
                .unwrap()
                .props
                .static_value("flag")
                .unwrap()
                .as_bool(),
            Some(true)
        );
    }

    #[test]
    fn edge_other_endpoint() {
        let (g, [a, b, _], [e0, _, _]) = triangle();
        let e = g.edge(e0).unwrap();
        assert_eq!(e.other(a), b);
        assert_eq!(e.other(b), a);
    }
}
