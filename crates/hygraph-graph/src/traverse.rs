//! Traversal and reachability (Table 2, row Q3 — graph side).
//!
//! Static BFS/DFS/Dijkstra plus *temporal reachability*: time-respecting
//! paths in the sense of Wu et al. (PVLDB 2014), where consecutive edges
//! must be traversed at non-decreasing times within each edge's validity.

use crate::graph::TemporalGraph;
use hygraph_types::{EdgeId, Interval, Timestamp, VertexId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Edge direction to follow during traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Follow {
    /// Only outgoing edges.
    Out,
    /// Only incoming edges.
    In,
    /// Both directions (undirected view).
    Both,
}

fn next_hops<'a>(
    g: &'a TemporalGraph,
    v: VertexId,
    follow: Follow,
) -> Box<dyn Iterator<Item = (&'a crate::graph::EdgeData, VertexId)> + 'a> {
    match follow {
        Follow::Out => Box::new(g.neighbors_out(v)),
        Follow::In => Box::new(g.neighbors_in(v)),
        Follow::Both => Box::new(g.neighbors(v)),
    }
}

/// Breadth-first search from `start`; returns hop distances for every
/// reached vertex.
pub fn bfs(g: &TemporalGraph, start: VertexId, follow: Follow) -> HashMap<VertexId, usize> {
    let mut dist = HashMap::new();
    if !g.contains_vertex(start) {
        return dist;
    }
    dist.insert(start, 0);
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        for (_, n) in next_hops(g, v, follow) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(n) {
                e.insert(d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Depth-first pre-order from `start`.
pub fn dfs_order(g: &TemporalGraph, start: VertexId, follow: Follow) -> Vec<VertexId> {
    let mut seen = HashMap::new();
    let mut order = Vec::new();
    if !g.contains_vertex(start) {
        return order;
    }
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if seen.insert(v, ()).is_some() {
            continue;
        }
        order.push(v);
        // push in reverse so lower-id neighbours are visited first
        let mut hop: Vec<VertexId> = next_hops(g, v, follow).map(|(_, n)| n).collect();
        hop.sort_unstable();
        for n in hop.into_iter().rev() {
            if !seen.contains_key(&n) {
                stack.push(n);
            }
        }
    }
    order
}

/// Whether `target` is reachable from `start`.
pub fn reachable(g: &TemporalGraph, start: VertexId, target: VertexId, follow: Follow) -> bool {
    if start == target {
        return g.contains_vertex(start);
    }
    bfs(g, start, follow).contains_key(&target)
}

/// Vertices within `k` hops of `start` (excluding `start` itself when
/// `k > 0`; always including it in the returned map with distance 0).
pub fn k_hop(
    g: &TemporalGraph,
    start: VertexId,
    k: usize,
    follow: Follow,
) -> HashMap<VertexId, usize> {
    let mut dist = HashMap::new();
    if !g.contains_vertex(start) {
        return dist;
    }
    dist.insert(start, 0);
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d == k {
            continue;
        }
        for (_, n) in next_hops(g, v, follow) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(n) {
                e.insert(d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Shortest weighted path from `start` to every reachable vertex, with
/// edge weights from `weight` (must be non-negative; edges yielding
/// `None` are skipped). Returns `(cost, predecessor-edge)` per vertex.
pub fn dijkstra(
    g: &TemporalGraph,
    start: VertexId,
    follow: Follow,
    mut weight: impl FnMut(&crate::graph::EdgeData) -> Option<f64>,
) -> HashMap<VertexId, (f64, Option<EdgeId>)> {
    let mut best: HashMap<VertexId, (f64, Option<EdgeId>)> = HashMap::new();
    if !g.contains_vertex(start) {
        return best;
    }
    // f64 keys via ordered bits; costs are non-negative
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    best.insert(start, (0.0, None));
    heap.push(Reverse((0u64, start)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits);
        if best.get(&v).is_none_or(|&(bd, _)| d > bd) {
            continue;
        }
        for (e, n) in next_hops(g, v, follow) {
            let Some(w) = weight(e) else { continue };
            debug_assert!(w >= 0.0, "dijkstra requires non-negative weights");
            let nd = d + w;
            if best.get(&n).is_none_or(|&(bd, _)| nd < bd) {
                best.insert(n, (nd, Some(e.id)));
                heap.push(Reverse((nd.to_bits(), n)));
            }
        }
    }
    best
}

/// Reconstructs the vertex path to `target` from a [`dijkstra`] result.
pub fn path_to(
    g: &TemporalGraph,
    result: &HashMap<VertexId, (f64, Option<EdgeId>)>,
    target: VertexId,
) -> Option<Vec<VertexId>> {
    let mut path = vec![target];
    let mut cur = target;
    loop {
        let &(_, pred) = result.get(&cur)?;
        match pred {
            None => break,
            Some(e) => {
                let edge = g.edge(e).ok()?;
                cur = if edge.dst == cur { edge.src } else { edge.dst };
                path.push(cur);
            }
        }
    }
    path.reverse();
    Some(path)
}

/// Earliest-arrival temporal reachability: starting at `start` no earlier
/// than `window.start`, following outgoing edges whose validity contains
/// the traversal instant, with non-decreasing traversal times bounded by
/// `window.end`. An edge is traversed at `max(arrival_at_src,
/// edge.validity.start)` and must satisfy `traversal < edge.validity.end`.
///
/// Returns the earliest arrival time at every temporally reachable vertex.
pub fn temporal_reachability(
    g: &TemporalGraph,
    start: VertexId,
    window: &Interval,
) -> HashMap<VertexId, Timestamp> {
    let mut arrival: HashMap<VertexId, Timestamp> = HashMap::new();
    if !g.contains_vertex(start) {
        return arrival;
    }
    arrival.insert(start, window.start);
    // Dijkstra-like on arrival times
    let mut heap: BinaryHeap<Reverse<(Timestamp, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((window.start, start)));
    while let Some(Reverse((at, v))) = heap.pop() {
        if arrival.get(&v).is_some_and(|&best| at > best) {
            continue;
        }
        for (e, n) in g.neighbors_out(v) {
            // traverse as early as possible but not before arriving
            let depart = if e.validity.start > at {
                e.validity.start
            } else {
                at
            };
            if depart >= e.validity.end || depart >= window.end {
                continue;
            }
            if arrival.get(&n).is_none_or(|&best| depart < best) {
                arrival.insert(n, depart);
                heap.push(Reverse((depart, n)));
            }
        }
    }
    arrival
}

/// Earliest-arrival (foremost) temporal path reconstruction: like
/// [`temporal_reachability`], but also records predecessor edges so the
/// actual time-respecting path to `target` can be returned.
///
/// Returns `(arrival_time, path)` where the path lists
/// `(edge, traversal_time)` hops from `start` to `target`, or `None`
/// when `target` is not temporally reachable inside `window`.
pub fn temporal_path(
    g: &TemporalGraph,
    start: VertexId,
    target: VertexId,
    window: &Interval,
) -> Option<(Timestamp, Vec<(EdgeId, Timestamp)>)> {
    if !g.contains_vertex(start) {
        return None;
    }
    let mut arrival: HashMap<VertexId, Timestamp> = HashMap::new();
    let mut pred: HashMap<VertexId, (VertexId, EdgeId, Timestamp)> = HashMap::new();
    arrival.insert(start, window.start);
    let mut heap: BinaryHeap<Reverse<(Timestamp, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((window.start, start)));
    while let Some(Reverse((at, v))) = heap.pop() {
        if arrival.get(&v).is_some_and(|&best| at > best) {
            continue;
        }
        if v == target {
            break; // earliest arrival fixed
        }
        for (e, n) in g.neighbors_out(v) {
            let depart = if e.validity.start > at {
                e.validity.start
            } else {
                at
            };
            if depart >= e.validity.end || depart >= window.end {
                continue;
            }
            if arrival.get(&n).is_none_or(|&best| depart < best) {
                arrival.insert(n, depart);
                pred.insert(n, (v, e.id, depart));
                heap.push(Reverse((depart, n)));
            }
        }
    }
    let &arr = arrival.get(&target)?;
    // backtrack
    let mut path = Vec::new();
    let mut cur = target;
    while cur != start {
        let &(prev, edge, t) = pred.get(&cur)?;
        path.push((edge, t));
        cur = prev;
    }
    path.reverse();
    Some((arr, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Path a -> b -> c -> d plus shortcut a -> d (weight 10).
    fn weighted_path() -> (TemporalGraph, [VertexId; 4]) {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let d = g.add_vertex(["N"], props! {});
        g.add_edge(a, b, ["E"], props! {"w" => 1.0}).unwrap();
        g.add_edge(b, c, ["E"], props! {"w" => 1.0}).unwrap();
        g.add_edge(c, d, ["E"], props! {"w" => 1.0}).unwrap();
        g.add_edge(a, d, ["E"], props! {"w" => 10.0}).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn bfs_distances() {
        let (g, [a, b, c, d]) = weighted_path();
        let dist = bfs(&g, a, Follow::Out);
        assert_eq!(dist[&a], 0);
        assert_eq!(dist[&b], 1);
        assert_eq!(dist[&c], 2);
        assert_eq!(dist[&d], 1, "shortcut wins in hops");
        // reverse direction finds nothing from a
        let dist = bfs(&g, a, Follow::In);
        assert_eq!(dist.len(), 1);
        // undirected reaches everything from c
        let dist = bfs(&g, c, Follow::Both);
        assert_eq!(dist.len(), 4);
    }

    #[test]
    fn bfs_missing_start() {
        let (g, _) = weighted_path();
        assert!(bfs(&g, VertexId::new(99), Follow::Out).is_empty());
    }

    #[test]
    fn dfs_preorder_deterministic() {
        let (g, [a, b, c, d]) = weighted_path();
        let order = dfs_order(&g, a, Follow::Out);
        assert_eq!(order, vec![a, b, c, d], "lower-id neighbours first");
    }

    #[test]
    fn reachability() {
        let (g, [a, _, _, d]) = weighted_path();
        assert!(reachable(&g, a, d, Follow::Out));
        assert!(!reachable(&g, d, a, Follow::Out));
        assert!(reachable(&g, d, a, Follow::Both));
        assert!(reachable(&g, a, a, Follow::Out));
        assert!(!reachable(&g, VertexId::new(99), a, Follow::Out));
    }

    #[test]
    fn k_hop_bounded() {
        let (g, [a, b, c, d]) = weighted_path();
        let one = k_hop(&g, a, 1, Follow::Out);
        assert_eq!(one.len(), 3); // a, b, d
        assert!(one.contains_key(&b) && one.contains_key(&d));
        assert!(!one.contains_key(&c));
        let zero = k_hop(&g, a, 0, Follow::Out);
        assert_eq!(zero.len(), 1);
    }

    #[test]
    fn dijkstra_prefers_cheap_path() {
        let (g, [a, _, _, d]) = weighted_path();
        let res = dijkstra(&g, a, Follow::Out, |e| {
            e.props.static_value("w").and_then(|v| v.as_f64())
        });
        let (cost, _) = res[&d];
        assert_eq!(cost, 3.0, "a->b->c->d beats the weight-10 shortcut");
        let path = path_to(&g, &res, d).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], a);
        assert_eq!(path[3], d);
    }

    #[test]
    fn dijkstra_skips_none_weights() {
        let (g, [a, b, _, d]) = weighted_path();
        // only the heavy shortcut is usable
        let res = dijkstra(&g, a, Follow::Out, |e| {
            let w = e.props.static_value("w").and_then(|v| v.as_f64())?;
            (w > 5.0).then_some(w)
        });
        assert_eq!(res[&d].0, 10.0);
        assert!(!res.contains_key(&b));
    }

    #[test]
    fn temporal_reachability_respects_time() {
        // a -[valid 0..10]-> b -[valid 20..30]-> c : reachable (wait at b)
        // a -[valid 0..10]-> d via edge valid 0..5 only when departing early
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let d = g.add_vertex(["N"], props! {});
        g.add_edge_valid(a, b, ["E"], props! {}, Interval::new(ts(0), ts(10)))
            .unwrap();
        g.add_edge_valid(b, c, ["E"], props! {}, Interval::new(ts(20), ts(30)))
            .unwrap();
        // c -> d valid only BEFORE we can arrive at c: not time-respecting
        g.add_edge_valid(c, d, ["E"], props! {}, Interval::new(ts(0), ts(15)))
            .unwrap();
        let arr = temporal_reachability(&g, a, &Interval::new(ts(0), ts(100)));
        assert_eq!(arr[&a], ts(0));
        assert_eq!(arr[&b], ts(0), "depart immediately");
        assert_eq!(arr[&c], ts(20), "wait at b until the edge opens");
        assert!(!arr.contains_key(&d), "edge to d expired before arrival");
    }

    #[test]
    fn temporal_path_reconstruction() {
        // a -> b (valid 0..10), b -> c (valid 20..30); direct a -> c via a
        // late slow edge (valid 50..60)
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        let c = g.add_vertex(["N"], props! {});
        let e1 = g
            .add_edge_valid(a, b, ["E"], props! {}, Interval::new(ts(0), ts(10)))
            .unwrap();
        let e2 = g
            .add_edge_valid(b, c, ["E"], props! {}, Interval::new(ts(20), ts(30)))
            .unwrap();
        let _late = g
            .add_edge_valid(a, c, ["E"], props! {}, Interval::new(ts(50), ts(60)))
            .unwrap();
        let (arr, path) = temporal_path(&g, a, c, &Interval::new(ts(0), ts(100))).unwrap();
        assert_eq!(arr, ts(20), "waiting path beats the late direct edge");
        assert_eq!(
            path,
            vec![(e1, ts(0)), (e2, ts(20))],
            "hops with traversal times"
        );
        // unreachable target
        let d = g.add_vertex(["N"], props! {});
        assert!(temporal_path(&g, a, d, &Interval::new(ts(0), ts(100))).is_none());
        // start == target: empty path
        let (arr, path) = temporal_path(&g, a, a, &Interval::new(ts(5), ts(100))).unwrap();
        assert_eq!(arr, ts(5));
        assert!(path.is_empty());
    }

    #[test]
    fn temporal_reachability_window_bounds() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["N"], props! {});
        let b = g.add_vertex(["N"], props! {});
        g.add_edge_valid(a, b, ["E"], props! {}, Interval::new(ts(50), ts(60)))
            .unwrap();
        // window ends before the edge opens
        let arr = temporal_reachability(&g, a, &Interval::new(ts(0), ts(40)));
        assert!(!arr.contains_key(&b));
        // window starts after the edge closed
        let arr = temporal_reachability(&g, a, &Interval::new(ts(70), ts(100)));
        assert!(!arr.contains_key(&b));
        // window covers it
        let arr = temporal_reachability(&g, a, &Interval::new(ts(0), ts(100)));
        assert_eq!(arr[&b], ts(50));
    }
}
