//! Exact binary state codec for [`TemporalGraph`].
//!
//! Serialises the *physical* representation — vertex and edge slot
//! vectors including tombstones left by `remove_vertex`/`remove_edge` —
//! so ids survive a round-trip unchanged and the decoded graph is
//! indistinguishable from the original (same ids, same iteration order,
//! same adjacency order). Derived state (adjacency lists, the label
//! index, live counters) is rebuilt, not stored: both are maintained in
//! ascending id order by construction, so a rebuild in id order
//! reproduces them exactly.
//!
//! This codec is the topology layer of the durable checkpoint format
//! used by `hygraph-persist`; framing, versioning and checksums are the
//! caller's concern.

use crate::graph::{EdgeData, TemporalGraph, VertexData};
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{EdgeId, Result, VertexId};

/// Encodes the full graph state into `w`.
pub fn encode_graph(g: &TemporalGraph, w: &mut ByteWriter) {
    w.len_of(g.vertices.slots());
    for i in 0..g.vertices.slots() {
        match g.vertices.get(i) {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                w.labels(&v.labels);
                w.property_map(&v.props);
                w.interval(&v.validity);
            }
        }
    }
    w.len_of(g.edges.slots());
    for i in 0..g.edges.slots() {
        match g.edges.get(i) {
            None => w.bool(false),
            Some(e) => {
                w.bool(true);
                w.u64(e.src.raw());
                w.u64(e.dst.raw());
                w.labels(&e.labels);
                w.property_map(&e.props);
                w.interval(&e.validity);
            }
        }
    }
}

/// Decodes a graph previously written by [`encode_graph`].
pub fn decode_graph(r: &mut ByteReader<'_>) -> Result<TemporalGraph> {
    let mut g = TemporalGraph::new();
    let vertex_slots = r.len_of()?;
    for i in 0..vertex_slots {
        let id = VertexId::from(i);
        g.out_adj.push_empty();
        g.in_adj.push_empty();
        if !r.bool()? {
            g.vertices.push_slot(None);
            continue;
        }
        let labels = r.labels()?;
        let props = r.property_map()?;
        let validity = r.interval()?;
        for l in &labels {
            if !g.vertex_label_index.contains_key(l) {
                g.vertex_label_index.insert(l.clone(), Vec::new());
            }
            g.vertex_label_index
                .get_mut(l)
                .expect("ensured above")
                .push(id);
        }
        g.vertices.push_slot(Some(VertexData {
            id,
            labels,
            props,
            validity,
        }));
        g.live_vertices += 1;
    }
    let edge_slots = r.len_of()?;
    for i in 0..edge_slots {
        let id = EdgeId::from(i);
        if !r.bool()? {
            g.edges.push_slot(None);
            continue;
        }
        let src = VertexId::new(r.u64()?);
        let dst = VertexId::new(r.u64()?);
        let labels = r.labels()?;
        let props = r.property_map()?;
        let validity = r.interval()?;
        // endpoints must be live vertex slots, else adjacency rebuild
        // would index out of bounds or attach to a tombstone
        g.vertex(src)?;
        g.vertex(dst)?;
        g.out_adj.add(src.index(), id);
        g.in_adj.add(dst.index(), id);
        g.edges.push_slot(Some(EdgeData {
            id,
            src,
            dst,
            labels,
            props,
            validity,
        }));
        g.live_edges += 1;
    }
    Ok(g)
}

/// Convenience: encodes into a fresh byte vector.
pub fn graph_to_bytes(g: &TemporalGraph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_graph(g, &mut w);
    w.into_bytes()
}

/// Convenience: decodes a graph from a standalone byte slice, requiring
/// the slice to be fully consumed.
pub fn graph_from_bytes(bytes: &[u8]) -> Result<TemporalGraph> {
    let mut r = ByteReader::new(bytes);
    let g = decode_graph(&mut r)?;
    r.expect_exhausted()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{props, Interval, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn sample() -> TemporalGraph {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(
            ["Station", "Hub"],
            props! {"name" => "a", "capacity" => 30i64},
            Interval::new(ts(0), ts(1_000)),
        );
        let b = g.add_vertex(["Station"], props! {"lat" => 52.52});
        let c = g.add_vertex(["Depot"], props! {});
        g.add_edge_valid(
            a,
            b,
            ["TRIP"],
            props! {"trips" => 7i64},
            Interval::new(ts(0), ts(500)),
        )
        .unwrap();
        g.add_edge(b, c, ["TRIP"], props! {}).unwrap();
        g.add_edge(c, a, ["SERVICE"], props! {"w" => 0.5}).unwrap();
        g
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let bytes = graph_to_bytes(&g);
        let back = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.vertices() {
            let bv = back.vertex(v.id).unwrap();
            assert_eq!(bv.labels, v.labels);
            assert_eq!(bv.props, v.props);
            assert_eq!(bv.validity, v.validity);
        }
        for e in g.edges() {
            let be = back.edge(e.id).unwrap();
            assert_eq!((be.src, be.dst), (e.src, e.dst));
            assert_eq!(be.props, e.props);
        }
        // canonical: re-encoding is byte-identical
        assert_eq!(graph_to_bytes(&back), bytes);
    }

    #[test]
    fn roundtrip_preserves_tombstones_and_ids() {
        let mut g = sample();
        let doomed = g.vertex_ids().nth(1).unwrap();
        g.remove_vertex(doomed).unwrap();
        let bytes = graph_to_bytes(&g);
        let back = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert!(!back.contains_vertex(doomed), "tombstone survives");
        // new ids keep allocating after the hole, exactly like the original
        let mut g2 = g.clone();
        let mut b2 = back;
        let id_a = g2.add_vertex(["New"], props! {});
        let id_b = b2.add_vertex(["New"], props! {});
        assert_eq!(id_a, id_b);
        // adjacency orders agree
        for v in g.vertices() {
            let got: Vec<_> = b2.out_edges(v.id).map(|e| e.id).collect();
            let want: Vec<_> = g.out_edges(v.id).map(|e| e.id).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn label_index_rebuilt() {
        let g = sample();
        let back = graph_from_bytes(&graph_to_bytes(&g)).unwrap();
        assert_eq!(
            back.vertex_ids_with_label("Station"),
            g.vertex_ids_with_label("Station")
        );
    }

    #[test]
    fn corrupt_bytes_error() {
        let g = sample();
        let mut bytes = graph_to_bytes(&g);
        // flip a byte in the middle
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        // either a decode error or (rarely) a changed-but-valid graph;
        // must never panic
        let _ = graph_from_bytes(&bytes);
        let truncated = &graph_to_bytes(&g)[..5];
        assert!(graph_from_bytes(truncated).is_err());
        // edge referencing a missing vertex
        let mut w = ByteWriter::new();
        w.len_of(0); // no vertices
        w.len_of(1);
        w.bool(true);
        w.u64(0);
        w.u64(0);
        w.labels(&[]);
        w.property_map(&Default::default());
        w.interval(&Interval::ALL);
        assert!(graph_from_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = TemporalGraph::new();
        let back = graph_from_bytes(&graph_to_bytes(&g)).unwrap();
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }
}
