//! Dual-mode interior storage for [`TemporalGraph`](crate::TemporalGraph).
//!
//! Each commit-path collection exists in two modes, selected per store
//! at construction by [`SnapshotImpl`] (see `hygraph-types::pmap`):
//!
//! * **Dense** — the legacy layout (`Arc<Vec<…>>` + `make_mut`): the
//!   first write after a snapshot is pinned deep-copies the whole
//!   vector. Kept as the `cow` rollback path.
//! * **Pmap** — persistent tries keyed by dense id: writes path-copy
//!   O(log n) nodes no matter how many snapshots are pinned.
//!
//! Both modes iterate in ascending id order (dense index order on one
//! side, identity-hash trie order on the other), so canonical encodings
//! and adjacency orders are byte-identical across modes.

use hygraph_types::pmap::{PMap, PSet, SnapshotImpl};
use hygraph_types::EdgeId;
use std::fmt;
use std::sync::Arc;

/// Chains two iterator shapes behind one `impl Iterator` return type.
pub(crate) enum EitherIter<A, B> {
    A(A),
    B(B),
}

impl<A, B, T> Iterator for EitherIter<A, B>
where
    A: Iterator<Item = T>,
    B: Iterator<Item = T>,
{
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::A(it) => it.next(),
            EitherIter::B(it) => it.next(),
        }
    }
}

/// A dense-id slot store (vertex or edge table): ids are allocated
/// sequentially, removal tombstones the slot, and the slot count only
/// grows. The Pmap mode stores only live slots (absent key = tombstone)
/// plus the allocation high-water mark.
pub(crate) enum SnapSlab<T> {
    Dense(Arc<Vec<Option<T>>>),
    Pmap { map: PMap<u64, T>, slots: u64 },
}

impl<T: Clone> SnapSlab<T> {
    pub(crate) fn new_with(mode: SnapshotImpl) -> Self {
        Self::with_capacity(mode, 0)
    }

    pub(crate) fn with_capacity(mode: SnapshotImpl, cap: usize) -> Self {
        match mode {
            SnapshotImpl::Cow => SnapSlab::Dense(Arc::new(Vec::with_capacity(cap))),
            SnapshotImpl::Pmap => SnapSlab::Pmap {
                map: PMap::new(),
                slots: 0,
            },
        }
    }

    pub(crate) fn mode(&self) -> SnapshotImpl {
        match self {
            SnapSlab::Dense(_) => SnapshotImpl::Cow,
            SnapSlab::Pmap { .. } => SnapshotImpl::Pmap,
        }
    }

    /// Total slots ever allocated (live + tombstoned) — the next id.
    pub(crate) fn slots(&self) -> usize {
        match self {
            SnapSlab::Dense(v) => v.len(),
            SnapSlab::Pmap { slots, .. } => *slots as usize,
        }
    }

    /// Number of live (non-tombstoned) slots.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        match self {
            SnapSlab::Dense(v) => v.iter().filter(|s| s.is_some()).count(),
            SnapSlab::Pmap { map, .. } => map.len(),
        }
    }

    /// Appends the next slot (decode path appends tombstones verbatim;
    /// the construction path always appends `Some`). Returns its index.
    pub(crate) fn push_slot(&mut self, value: Option<T>) -> usize {
        match self {
            SnapSlab::Dense(v) => {
                let idx = v.len();
                Arc::make_mut(v).push(value);
                idx
            }
            SnapSlab::Pmap { map, slots } => {
                let idx = *slots;
                if let Some(value) = value {
                    map.insert(idx, value);
                }
                *slots += 1;
                idx as usize
            }
        }
    }

    pub(crate) fn get(&self, idx: usize) -> Option<&T> {
        match self {
            SnapSlab::Dense(v) => v.get(idx).and_then(Option::as_ref),
            SnapSlab::Pmap { map, .. } => map.get(&(idx as u64)),
        }
    }

    /// Mutable slot access; a miss (out of range or tombstone) copies
    /// nothing in either mode.
    pub(crate) fn get_mut(&mut self, idx: usize) -> Option<&mut T> {
        self.get(idx)?;
        match self {
            SnapSlab::Dense(v) => Arc::make_mut(v).get_mut(idx).and_then(Option::as_mut),
            SnapSlab::Pmap { map, .. } => map.get_mut(&(idx as u64)),
        }
    }

    /// Tombstones a slot, returning its value; a miss copies nothing.
    pub(crate) fn take(&mut self, idx: usize) -> Option<T> {
        self.get(idx)?;
        match self {
            SnapSlab::Dense(v) => Arc::make_mut(v).get_mut(idx).and_then(Option::take),
            SnapSlab::Pmap { map, .. } => map.remove(&(idx as u64)),
        }
    }

    /// Live slots in ascending id order.
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = &T> {
        match self {
            SnapSlab::Dense(v) => EitherIter::A(v.iter().filter_map(Option::as_ref)),
            SnapSlab::Pmap { map, .. } => EitherIter::B(map.values()),
        }
    }
}

impl<T: Clone> Clone for SnapSlab<T> {
    fn clone(&self) -> Self {
        match self {
            SnapSlab::Dense(v) => SnapSlab::Dense(Arc::clone(v)),
            SnapSlab::Pmap { map, slots } => SnapSlab::Pmap {
                map: map.clone(),
                slots: *slots,
            },
        }
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for SnapSlab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter_live()).finish()
    }
}

/// Per-vertex adjacency (out or in). Lists are maintained in ascending
/// edge-id order by construction — edges allocate monotonically and
/// removal preserves order — so the Pmap mode's `PSet` (which iterates
/// ascending id) reproduces the dense `Vec` order exactly.
pub(crate) enum SnapAdj {
    Dense(Arc<Vec<Vec<EdgeId>>>),
    Pmap(PMap<u64, PSet<EdgeId>>),
}

impl SnapAdj {
    pub(crate) fn new_with(mode: SnapshotImpl) -> Self {
        Self::with_capacity(mode, 0)
    }

    pub(crate) fn with_capacity(mode: SnapshotImpl, cap: usize) -> Self {
        match mode {
            SnapshotImpl::Cow => SnapAdj::Dense(Arc::new(Vec::with_capacity(cap))),
            SnapshotImpl::Pmap => SnapAdj::Pmap(PMap::new()),
        }
    }

    /// Registers a newly allocated vertex slot (its adjacency starts
    /// empty; in Pmap mode absence *is* empty, so nothing is stored).
    pub(crate) fn push_empty(&mut self) {
        if let SnapAdj::Dense(v) = self {
            Arc::make_mut(v).push(Vec::new());
        }
    }

    /// Appends an incident edge to vertex `v`'s list. Callers only ever
    /// append freshly allocated (maximal) edge ids, preserving ascending
    /// order in both modes.
    pub(crate) fn add(&mut self, v: usize, e: EdgeId) {
        match self {
            SnapAdj::Dense(adj) => Arc::make_mut(adj)[v].push(e),
            SnapAdj::Pmap(adj) => {
                let key = v as u64;
                if adj.get(&key).is_none() {
                    adj.insert(key, PSet::new());
                }
                adj.get_mut(&key).expect("inserted above").insert(e);
            }
        }
    }

    /// Drops edge `e` from vertex `v`'s list (edge removal). An empty
    /// Pmap entry is removed entirely so the trie stays canonical.
    pub(crate) fn remove(&mut self, v: usize, e: EdgeId) {
        match self {
            SnapAdj::Dense(adj) => Arc::make_mut(adj)[v].retain(|&x| x != e),
            SnapAdj::Pmap(adj) => {
                let key = v as u64;
                let emptied = match adj.get_mut(&key) {
                    Some(set) => {
                        set.remove(&e);
                        set.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    adj.remove(&key);
                }
            }
        }
    }

    /// Vertex `v`'s incident edge ids in ascending id order; an unknown
    /// vertex yields an empty iterator.
    pub(crate) fn edge_ids(&self, v: usize) -> impl Iterator<Item = EdgeId> + '_ {
        match self {
            SnapAdj::Dense(adj) => EitherIter::A(adj.get(v).into_iter().flatten().copied()),
            SnapAdj::Pmap(adj) => EitherIter::B(
                adj.get(&(v as u64))
                    .into_iter()
                    .flat_map(|set| set.iter().copied()),
            ),
        }
    }
}

impl Clone for SnapAdj {
    fn clone(&self) -> Self {
        match self {
            SnapAdj::Dense(v) => SnapAdj::Dense(Arc::clone(v)),
            SnapAdj::Pmap(m) => SnapAdj::Pmap(m.clone()),
        }
    }
}

impl fmt::Debug for SnapAdj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapAdj::Dense(v) => f.debug_list().entries(v.iter()).finish(),
            SnapAdj::Pmap(m) => f.debug_map().entries(m.iter()).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_modes(f: impl Fn(SnapshotImpl)) {
        f(SnapshotImpl::Cow);
        f(SnapshotImpl::Pmap);
    }

    #[test]
    fn slab_alloc_take_and_iteration_order() {
        both_modes(|mode| {
            let mut s: SnapSlab<u32> = SnapSlab::new_with(mode);
            assert_eq!(s.push_slot(Some(10)), 0);
            assert_eq!(s.push_slot(None), 1);
            assert_eq!(s.push_slot(Some(30)), 2);
            assert_eq!(s.slots(), 3);
            assert_eq!(s.live(), 2);
            assert_eq!(s.get(0), Some(&10));
            assert_eq!(s.get(1), None);
            assert_eq!(s.take(2), Some(30));
            assert_eq!(s.take(2), None);
            assert_eq!(s.slots(), 3, "tombstoning keeps the high-water mark");
            *s.get_mut(0).unwrap() = 11;
            let live: Vec<u32> = s.iter_live().copied().collect();
            assert_eq!(live, vec![11]);
        });
    }

    #[test]
    fn adj_add_remove_and_order() {
        both_modes(|mode| {
            let mut a = SnapAdj::new_with(mode);
            a.push_empty();
            a.push_empty();
            a.add(0, EdgeId::new(0));
            a.add(0, EdgeId::new(3));
            a.add(1, EdgeId::new(5));
            let ids: Vec<u64> = a.edge_ids(0).map(|e| e.raw()).collect();
            assert_eq!(ids, vec![0, 3]);
            a.remove(0, EdgeId::new(0));
            let ids: Vec<u64> = a.edge_ids(0).map(|e| e.raw()).collect();
            assert_eq!(ids, vec![3]);
            assert_eq!(a.edge_ids(99).count(), 0);
        });
    }

    #[test]
    fn modes_produce_identical_views() {
        let mut d = SnapAdj::new_with(SnapshotImpl::Cow);
        let mut p = SnapAdj::new_with(SnapshotImpl::Pmap);
        for adj in [&mut d, &mut p] {
            for _ in 0..4 {
                adj.push_empty();
            }
            for e in 0..12u64 {
                adj.add((e % 4) as usize, EdgeId::new(e));
            }
            adj.remove(2, EdgeId::new(6));
        }
        for v in 0..4 {
            let dv: Vec<_> = d.edge_ids(v).collect();
            let pv: Vec<_> = p.edge_ids(v).collect();
            assert_eq!(dv, pv);
        }
    }
}
