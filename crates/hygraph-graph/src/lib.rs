//! Temporal property graph (TPG) substrate for HyGraph.
//!
//! Implements the graph half of the HyGraph model: a labeled property
//! graph in which every vertex and edge carries a validity interval
//! (the TPG semantics of Rost et al., VLDB J. 2022), plus the graph
//! column of the paper's Table 2 operator taxonomy:
//!
//! | Table 2 row | module |
//! |---|---|
//! | Q1 subgraph matching | [`pattern`] |
//! | Q2 graph aggregation | [`aggregate`] |
//! | Q3 reachability | [`traverse`] |
//! | Q4 snapshot | [`snapshot`] |
//! | D communities | [`algorithms::community`] |
//! | PM subgraph/motif | [`algorithms::motifs`] |
//! | E vertex/edge/path/graph embeddings | consumed by `hygraph-analytics` |
//! | C1/C2 labels & connectivity features | [`algorithms::metrics`] |

pub mod aggregate;
pub mod algorithms;
pub mod codec;
pub mod graph;
pub mod pattern;
pub mod snapshot;
pub(crate) mod store;
pub mod traverse;

pub use graph::{EdgeData, TemporalGraph, VertexData};
pub use pattern::{Direction, Pattern, PatternEdge, PatternVertex, PropPredicate};
