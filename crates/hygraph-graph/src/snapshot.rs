//! Snapshot retrieval over temporal graphs (Table 2, row Q4 — graph
//! side; Khurana & Deshpande-style snapshot semantics).
//!
//! A *snapshot* at instant `t` is the static graph of all elements valid
//! at `t`; a *slice* over an interval keeps everything whose validity
//! overlaps it. Both produce new [`TemporalGraph`]s with **the same
//! element ids** as the source, so results of algorithms on the snapshot
//! can be joined back to the full graph (and across snapshots — needed by
//! `metricEvolution`).

use crate::graph::TemporalGraph;
use hygraph_types::{Interval, Timestamp, VertexId};

/// The static graph of elements valid at instant `t`. Ids are preserved;
/// validity intervals are carried over unchanged.
pub fn snapshot(g: &TemporalGraph, t: Timestamp) -> TemporalGraph {
    filtered(g, |iv| iv.contains(t))
}

/// The temporal graph restricted to elements whose validity overlaps
/// `window`.
pub fn slice(g: &TemporalGraph, window: &Interval) -> TemporalGraph {
    filtered(g, |iv| iv.overlaps(window))
}

fn filtered(g: &TemporalGraph, keep: impl Fn(&Interval) -> bool) -> TemporalGraph {
    let mut out = TemporalGraph::with_capacity(g.vertex_count(), g.edge_count());
    // Rebuild with identical ids: allocate tombstoned gaps by inserting
    // placeholder vertices and removing them afterwards would be wasteful;
    // instead we exploit that ids are dense and insertion order defines
    // ids, re-adding every slot in order and tombstoning the dropped ones.
    let cap = g.vertex_capacity();
    let mut dropped: Vec<VertexId> = Vec::new();
    for idx in 0..cap {
        let vid = VertexId::from(idx);
        match g.vertex(vid) {
            Ok(v) if keep(&v.validity) => {
                let nid = out.add_vertex_valid(v.labels.clone(), v.props.clone(), v.validity);
                debug_assert_eq!(nid, vid);
            }
            _ => {
                // placeholder to keep ids aligned, tombstoned below
                let nid = out.add_vertex_valid(
                    Vec::<hygraph_types::Label>::new(),
                    Default::default(),
                    Interval::ALL,
                );
                debug_assert_eq!(nid, vid);
                dropped.push(vid);
            }
        }
    }
    for e in g.edges() {
        if keep(&e.validity) && out.contains_vertex(e.src) && out.contains_vertex(e.dst) {
            // endpoints may be placeholders that will be dropped: check
            let src_dropped = dropped.binary_search(&e.src).is_ok();
            let dst_dropped = dropped.binary_search(&e.dst).is_ok();
            if !src_dropped && !dst_dropped {
                out.add_edge_valid(e.src, e.dst, e.labels.clone(), e.props.clone(), e.validity)
                    .expect("endpoints exist");
            }
        }
    }
    for vid in dropped {
        let _ = out.remove_vertex(vid);
    }
    out
}

/// Snapshots at each of `instants`, returned in input order.
pub fn snapshots(g: &TemporalGraph, instants: &[Timestamp]) -> Vec<TemporalGraph> {
    instants.iter().map(|&t| snapshot(g, t)).collect()
}

/// The ordered set of instants at which the graph's structure changes
/// (validity starts and ends of vertices and edges) within `window` —
/// the natural sampling points for evolution analysis.
pub fn change_points(g: &TemporalGraph, window: &Interval) -> Vec<Timestamp> {
    let mut pts = Vec::new();
    let mut push = |t: Timestamp| {
        if window.contains(t) {
            pts.push(t);
        }
    };
    for v in g.vertices() {
        push(v.validity.start);
        push(v.validity.end);
    }
    for e in g.edges() {
        push(e.validity.start);
        push(e.validity.end);
    }
    pts.sort_unstable();
    pts.dedup();
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(ts(a), ts(b))
    }

    /// a alive [0,100), b alive [50,200), c alive always;
    /// a->b alive [50,100), b->c alive [60,150), c->a alive [0, 90).
    fn evolving() -> (TemporalGraph, [VertexId; 3]) {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(["N"], props! {"name" => "a"}, iv(0, 100));
        let b = g.add_vertex_valid(["N"], props! {"name" => "b"}, iv(50, 200));
        let c = g.add_vertex(["N"], props! {"name" => "c"});
        g.add_edge_valid(a, b, ["E"], props! {}, iv(50, 100))
            .unwrap();
        g.add_edge_valid(b, c, ["E"], props! {}, iv(60, 150))
            .unwrap();
        g.add_edge_valid(c, a, ["E"], props! {}, iv(0, 90)).unwrap();
        (g, [a, b, c])
    }

    #[test]
    fn snapshot_at_various_instants() {
        let (g, [a, b, c]) = evolving();
        // t=25: only a and c alive, edge c->a alive
        let s = snapshot(&g, ts(25));
        assert!(s.contains_vertex(a));
        assert!(!s.contains_vertex(b));
        assert!(s.contains_vertex(c));
        assert_eq!(s.edge_count(), 1);
        // t=75: everything alive
        let s = snapshot(&g, ts(75));
        assert_eq!(s.vertex_count(), 3);
        assert_eq!(s.edge_count(), 3);
        // t=150: only b (validity ends 200) and c; b->c ended at 150 (exclusive)
        let s = snapshot(&g, ts(150));
        assert_eq!(s.vertex_count(), 2);
        assert_eq!(s.edge_count(), 0);
        // t=1000: only c
        let s = snapshot(&g, ts(1000));
        assert_eq!(s.vertex_count(), 1);
        assert!(s.contains_vertex(c));
    }

    #[test]
    fn snapshot_preserves_ids_and_props() {
        let (g, [a, _, c]) = evolving();
        let s = snapshot(&g, ts(25));
        assert_eq!(
            s.vertex(a)
                .unwrap()
                .props
                .static_value("name")
                .unwrap()
                .as_str(),
            Some("a")
        );
        assert_eq!(s.vertex(c).unwrap().id, c);
    }

    #[test]
    fn snapshot_drops_edges_to_dead_vertices() {
        // edge whose validity outlives an endpoint must not reappear
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(["N"], props! {}, iv(0, 10));
        let b = g.add_vertex(["N"], props! {});
        g.add_edge_valid(a, b, ["E"], props! {}, iv(0, 100))
            .unwrap();
        let s = snapshot(&g, ts(50));
        assert!(!s.contains_vertex(a));
        assert_eq!(s.edge_count(), 0, "edge endpoint dead at t=50");
    }

    #[test]
    fn slice_keeps_overlapping() {
        let (g, [a, b, c]) = evolving();
        let s = slice(&g, &iv(120, 180));
        // a dead (ends 100); b alive; c alive; only edge b->c overlaps [120,150)
        assert!(!s.contains_vertex(a));
        assert!(s.contains_vertex(b));
        assert!(s.contains_vertex(c));
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn change_points_ordered_unique() {
        let (g, _) = evolving();
        let pts = change_points(&g, &iv(0, 1000));
        assert_eq!(
            pts,
            vec![ts(0), ts(50), ts(60), ts(90), ts(100), ts(150), ts(200)]
        );
        let windowed = change_points(&g, &iv(55, 120));
        assert_eq!(windowed, vec![ts(60), ts(90), ts(100)]);
    }

    #[test]
    fn snapshots_bulk() {
        let (g, _) = evolving();
        let snaps = snapshots(&g, &[ts(25), ts(75)]);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].vertex_count(), 2);
        assert_eq!(snaps[1].vertex_count(), 3);
    }

    #[test]
    fn snapshot_of_empty_graph() {
        let g = TemporalGraph::new();
        let s = snapshot(&g, ts(0));
        assert_eq!(s.vertex_count(), 0);
        assert_eq!(s.edge_count(), 0);
    }

    #[test]
    fn snapshot_with_tombstoned_source_ids() {
        let (mut g, [a, _b, c]) = evolving();
        g.remove_vertex(a).unwrap();
        let s = snapshot(&g, ts(75));
        assert!(!s.contains_vertex(a));
        assert!(s.contains_vertex(c));
        assert_eq!(s.vertex(c).unwrap().id, c, "ids preserved across gaps");
    }
}
